//! A real threaded message-passing cluster.
//!
//! `LocalCluster` spawns one OS thread per rank, wired all-to-all with
//! crossbeam channels carrying [`Bytes`] payloads. It exists to prove the
//! distributed code path — pack ghost region, send, receive, unpack — with
//! real concurrency at laptop scale, complementing the virtual-clock
//! simulator in [`crate::sim`] used for Summit-scale studies.

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};

/// A tagged message between ranks.
#[derive(Clone, Debug)]
pub struct Packet {
    /// Sending rank.
    pub src: usize,
    /// User tag (e.g. a box id).
    pub tag: u64,
    /// Payload.
    pub payload: Bytes,
}

/// One rank's communication endpoint.
pub struct RankEndpoint {
    rank: usize,
    nranks: usize,
    senders: Vec<Sender<Packet>>,
    receiver: Receiver<Packet>,
}

impl RankEndpoint {
    /// This endpoint's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total rank count.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// Sends `payload` to `dst` with `tag`. Sending to self is allowed (the
    /// packet is delivered through the same queue).
    pub fn send(&self, dst: usize, tag: u64, payload: Bytes) {
        self.senders[dst]
            .send(Packet {
                src: self.rank,
                tag,
                payload,
            })
            .expect("cluster channel closed");
    }

    /// Blocks until the next packet arrives.
    pub fn recv(&self) -> Packet {
        self.receiver.recv().expect("cluster channel closed")
    }

    /// Receives exactly `n` packets.
    pub fn recv_n(&self, n: usize) -> Vec<Packet> {
        (0..n).map(|_| self.recv()).collect()
    }
}

/// A process-local cluster of rank threads.
pub struct LocalCluster;

impl LocalCluster {
    /// Runs `f` on `nranks` rank threads and returns each rank's result in
    /// rank order. Panics in any rank propagate.
    pub fn run<R, F>(nranks: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(RankEndpoint) -> R + Sync,
    {
        assert!(nranks > 0);
        let mut txs = Vec::with_capacity(nranks);
        let mut rxs = Vec::with_capacity(nranks);
        for _ in 0..nranks {
            let (tx, rx) = unbounded::<Packet>();
            txs.push(tx);
            rxs.push(rx);
        }
        let mut results: Vec<Option<R>> = (0..nranks).map(|_| None).collect();
        crossbeam::thread::scope(|s| {
            let handles: Vec<_> = rxs
                .into_iter()
                .enumerate()
                .map(|(rank, receiver)| {
                    let senders = txs.clone();
                    let f = &f;
                    s.spawn(move |_| {
                        f(RankEndpoint {
                            rank,
                            nranks,
                            senders,
                            receiver,
                        })
                    })
                })
                .collect();
            // Close the original senders so channels die with the ranks.
            drop(txs);
            for (rank, h) in handles.into_iter().enumerate() {
                results[rank] = Some(h.join().expect("rank thread panicked"));
            }
        })
        .expect("cluster scope failed");
        results.into_iter().map(|r| r.unwrap()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_pass_accumulates() {
        // Each rank sends its rank id around a ring; everyone ends with the
        // global sum.
        let n = 5;
        let sums = LocalCluster::run(n, |ep| {
            let mut acc = ep.rank() as u64;
            let mut token = ep.rank() as u64;
            for _ in 0..n - 1 {
                ep.send((ep.rank() + 1) % n, 0, Bytes::copy_from_slice(&token.to_le_bytes()));
                let p = ep.recv();
                token = u64::from_le_bytes(p.payload.as_ref().try_into().unwrap());
                acc += token;
            }
            acc
        });
        let expect: u64 = (0..n as u64).sum();
        assert!(sums.iter().all(|&s| s == expect), "{sums:?}");
    }

    #[test]
    fn tags_and_sources_preserved() {
        let out = LocalCluster::run(2, |ep| {
            if ep.rank() == 0 {
                ep.send(1, 42, Bytes::from_static(b"ghost"));
                0u64
            } else {
                let p = ep.recv();
                assert_eq!(p.src, 0);
                assert_eq!(p.tag, 42);
                assert_eq!(p.payload.as_ref(), b"ghost");
                p.tag
            }
        });
        assert_eq!(out, vec![0, 42]);
    }

    #[test]
    fn all_to_all_delivery() {
        let n = 4;
        let counts = LocalCluster::run(n, |ep| {
            for dst in 0..n {
                if dst != ep.rank() {
                    ep.send(dst, ep.rank() as u64, Bytes::new());
                }
            }
            let pkts = ep.recv_n(n - 1);
            let mut srcs: Vec<usize> = pkts.iter().map(|p| p.src).collect();
            srcs.sort_unstable();
            srcs.len()
        });
        assert!(counts.iter().all(|&c| c == n - 1));
    }
}

impl RankEndpoint {
    /// Binomial-tree all-reduce of one `f64` with a commutative combiner:
    /// every rank returns the combined value. The collective the solver's
    /// `ComputeDt` needs (`ReduceRealMin`), executed over real channels.
    pub fn allreduce_f64(&self, value: f64, combine: impl Fn(f64, f64) -> f64) -> f64 {
        let n = self.nranks();
        let rank = self.rank();
        let mut acc = value;
        // Reduce to rank 0 over a binomial tree.
        let mut step = 1;
        while step < n {
            if rank.is_multiple_of(2 * step) {
                let partner = rank + step;
                if partner < n {
                    // Children may race into the queue in any order; the
                    // combiner is commutative, so arrival order is free.
                    let p = self.recv();
                    acc = combine(
                        acc,
                        f64::from_le_bytes(p.payload.as_ref().try_into().unwrap()),
                    );
                }
            } else if rank % (2 * step) == step {
                self.send(rank - step, u64::MAX, Bytes::copy_from_slice(&acc.to_le_bytes()));
                break;
            }
            step *= 2;
        }
        // Broadcast back down the same tree.
        let mut steps = Vec::new();
        let mut s = 1;
        while s < n {
            steps.push(s);
            s *= 2;
        }
        for &s in steps.iter().rev() {
            if rank.is_multiple_of(2 * s) {
                let partner = rank + s;
                if partner < n {
                    self.send(partner, u64::MAX - 1, Bytes::copy_from_slice(&acc.to_le_bytes()));
                }
            } else if rank % (2 * s) == s {
                let p = self.recv();
                acc = f64::from_le_bytes(p.payload.as_ref().try_into().unwrap());
            }
        }
        acc
    }
}

#[cfg(test)]
mod collective_tests {
    use super::*;

    #[test]
    fn allreduce_min_matches_serial() {
        for n in [1usize, 2, 3, 5, 8, 13] {
            let values: Vec<f64> = (0..n).map(|r| ((r * 7919) % 23) as f64 - 5.0).collect();
            let expect = values.iter().cloned().fold(f64::INFINITY, f64::min);
            let vs = values.clone();
            let out = LocalCluster::run(n, move |ep| {
                ep.allreduce_f64(vs[ep.rank()], f64::min)
            });
            assert!(
                out.iter().all(|&v| v == expect),
                "n = {n}: {out:?} (expected {expect})"
            );
        }
    }

    #[test]
    fn allreduce_sum_matches_serial() {
        let n = 6;
        let out = LocalCluster::run(n, move |ep| {
            ep.allreduce_f64(ep.rank() as f64 + 1.0, |a, b| a + b)
        });
        assert!(out.iter().all(|&v| (v - 21.0).abs() < 1e-12), "{out:?}");
    }
}
