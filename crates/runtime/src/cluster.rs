//! A real threaded message-passing cluster.
//!
//! `LocalCluster` spawns one OS thread per rank, wired all-to-all with
//! crossbeam channels carrying [`Bytes`] payloads. It exists to prove the
//! distributed code path — pack ghost region, send, receive, unpack — with
//! real concurrency at laptop scale, complementing the virtual-clock
//! simulator in [`crate::sim`] used for Summit-scale studies.

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A tagged message between ranks.
#[derive(Clone, Debug)]
pub struct Packet {
    /// Sending rank.
    pub src: usize,
    /// User tag (e.g. a box id).
    pub tag: u64,
    /// Payload.
    pub payload: Bytes,
}

/// The tag namespace the distributed solver uses over [`RankEndpoint`]s.
///
/// A `u64` tag packs `kind | epoch | level | index`, so concurrent traffic
/// classes (halo chunks, full-fab gathers, collective phases) can never
/// match each other, and the per-stage epoch disambiguates packets of
/// successive RK stages even when a fast rank runs one stage ahead
/// (per-sender channel FIFO already makes earliest-arrival matching correct;
/// the epoch is cheap insurance and a debugging aid).
pub mod tags {
    /// Traffic-class discriminant: a same-level halo chunk.
    pub const KIND_HALO: u64 = 1;
    /// Traffic-class discriminant: a full-fab replication gather.
    pub const KIND_GATHER: u64 = 2;
    /// Traffic-class discriminant: a collective phase message.
    pub const KIND_COLL: u64 = 3;

    fn compose(kind: u64, epoch: u64, level: usize, index: usize) -> u64 {
        debug_assert!(index < (1 << 32), "tag index overflows 32 bits");
        (kind << 62) | ((epoch & 0xFFFF) << 40) | (((level as u64) & 0xFF) << 32) | index as u64
    }

    /// Tag for halo chunk `chunk` of `level` during stage-epoch `epoch`.
    pub fn halo(epoch: u64, level: usize, chunk: usize) -> u64 {
        compose(KIND_HALO, epoch, level, chunk)
    }

    /// Tag for the replication gather of patch `patch` of `level` during
    /// stage-epoch `epoch`.
    pub fn gather(epoch: u64, level: usize, patch: usize) -> u64 {
        compose(KIND_GATHER, epoch, level, patch)
    }

    /// Tag for phase `phase` (0 = reduce, 1 = broadcast) of the `seq`-th
    /// collective on an endpoint.
    pub fn collective(seq: u64, phase: u64) -> u64 {
        (KIND_COLL << 62) | ((seq & 0x1FFF_FFFF_FFFF_FFFF) << 1) | (phase & 1)
    }
}

/// Completion handle of a nonblocking receive posted with
/// [`RankEndpoint::irecv`] — the `MPI_Request` analog. Cheap to clone; all
/// clones observe the same completion.
#[derive(Clone)]
pub struct RecvHandle {
    slot: Arc<OnceLock<Bytes>>,
}

impl RecvHandle {
    /// `true` once the matching packet has been delivered.
    pub fn is_ready(&self) -> bool {
        self.slot.get().is_some()
    }

    /// The delivered payload, if the receive has completed ([`Bytes`] clones
    /// are reference-counted slices, not copies).
    pub fn payload(&self) -> Option<Bytes> {
        self.slot.get().cloned()
    }
}

/// A receive posted before its packet arrived: `(src, tag)` to match, and
/// the slot to complete.
struct PostedRecv {
    src: usize,
    tag: u64,
    slot: Arc<OnceLock<Bytes>>,
}

/// MPI-style matching state: receives posted before arrival, and packets
/// that arrived before any matching receive was posted (the *unexpected
/// message queue*). Both are searched in order, so matching is
/// earliest-posted against earliest-arrived — deterministic under the
/// per-sender FIFO the channels guarantee.
#[derive(Default)]
struct MatchState {
    posted: VecDeque<PostedRecv>,
    unexpected: VecDeque<Packet>,
}

/// One rank's communication endpoint.
pub struct RankEndpoint {
    rank: usize,
    nranks: usize,
    senders: Vec<Sender<Packet>>,
    receiver: Receiver<Packet>,
    matcher: Mutex<MatchState>,
    /// Collective sequence counter: all ranks call collectives in the same
    /// order (they are collective), so counters advance in lockstep and the
    /// derived tags agree across ranks.
    coll_seq: AtomicU64,
}

impl RankEndpoint {
    /// This endpoint's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total rank count.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// Sends `payload` to `dst` with `tag`. Sending to self is allowed (the
    /// packet is delivered through the same queue).
    pub fn send(&self, dst: usize, tag: u64, payload: Bytes) {
        self.senders[dst]
            .send(Packet {
                src: self.rank,
                tag,
                payload,
            })
            .expect("cluster channel closed");
    }

    /// Blocks until the next packet arrives, in raw arrival order.
    ///
    /// This bypasses tag matching entirely: a packet consumed here is never
    /// seen by [`RankEndpoint::irecv`]/[`RankEndpoint::recv_matched`]. Do not
    /// mix raw and matched receives on one endpoint.
    pub fn recv(&self) -> Packet {
        self.receiver.recv().expect("cluster channel closed")
    }

    /// Receives exactly `n` packets (raw arrival order; see [`Self::recv`]).
    pub fn recv_n(&self, n: usize) -> Vec<Packet> {
        (0..n).map(|_| self.recv()).collect()
    }

    /// Posts a nonblocking, tag-matched receive for the next packet from
    /// `src` carrying `tag`, returning its completion handle (the
    /// `MPI_Irecv` analog). If a matching packet already sits in the
    /// unexpected-message queue the handle completes immediately.
    pub fn irecv(&self, src: usize, tag: u64) -> RecvHandle {
        let slot = Arc::new(OnceLock::new());
        let mut m = self.matcher.lock().expect("matcher poisoned");
        if let Some(pos) = m
            .unexpected
            .iter()
            .position(|p| p.src == src && p.tag == tag)
        {
            let pkt = m.unexpected.remove(pos).unwrap();
            slot.set(pkt.payload).ok();
        } else {
            m.posted.push_back(PostedRecv {
                src,
                tag,
                slot: slot.clone(),
            });
        }
        RecvHandle { slot }
    }

    /// Delivers `pkt` to the earliest matching posted receive, or queues it
    /// as unexpected. Returns `true` when a posted receive completed.
    fn deliver(m: &mut MatchState, pkt: Packet) -> bool {
        if let Some(pos) = m
            .posted
            .iter()
            .position(|r| r.src == pkt.src && r.tag == pkt.tag)
        {
            let r = m.posted.remove(pos).unwrap();
            r.slot.set(pkt.payload).ok();
            true
        } else {
            m.unexpected.push_back(pkt);
            false
        }
    }

    /// Drains every packet currently buffered in the channel, matching each
    /// against the posted receives (the `MPI_Test`-loop analog the task
    /// graph's progress pump calls). Returns `true` when at least one packet
    /// was drained — completing a posted receive or landing in the
    /// unexpected-message queue.
    pub fn progress(&self) -> bool {
        let mut drained = false;
        let mut m = self.matcher.lock().expect("matcher poisoned");
        while let Ok(pkt) = self.receiver.try_recv() {
            Self::deliver(&mut m, pkt);
            drained = true;
        }
        drained
    }

    /// Blocks until `h` completes and returns its payload.
    ///
    /// Packets for *other* posted receives arriving meanwhile are delivered
    /// or queued as unexpected, never dropped. Only one thread of a rank may
    /// block here at a time (the solver's fenced path and collectives are
    /// single-threaded per rank; the overlapped path never blocks — it polls
    /// through [`Self::progress`]).
    pub fn wait(&self, h: &RecvHandle) -> Bytes {
        loop {
            if let Some(b) = h.payload() {
                return b;
            }
            let pkt = self.receiver.recv().expect("cluster channel closed");
            let mut m = self.matcher.lock().expect("matcher poisoned");
            Self::deliver(&mut m, pkt);
        }
    }

    /// Blocking tag-matched receive: [`Self::irecv`] + [`Self::wait`].
    pub fn recv_matched(&self, src: usize, tag: u64) -> Bytes {
        let h = self.irecv(src, tag);
        self.wait(&h)
    }
}

/// A process-local cluster of rank threads.
pub struct LocalCluster;

impl LocalCluster {
    /// Runs `f` on `nranks` rank threads and returns each rank's result in
    /// rank order. Panics in any rank propagate.
    pub fn run<R, F>(nranks: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(RankEndpoint) -> R + Sync,
    {
        assert!(nranks > 0);
        let mut txs = Vec::with_capacity(nranks);
        let mut rxs = Vec::with_capacity(nranks);
        for _ in 0..nranks {
            let (tx, rx) = unbounded::<Packet>();
            txs.push(tx);
            rxs.push(rx);
        }
        let mut results: Vec<Option<R>> = (0..nranks).map(|_| None).collect();
        crossbeam::thread::scope(|s| {
            let handles: Vec<_> = rxs
                .into_iter()
                .enumerate()
                .map(|(rank, receiver)| {
                    let senders = txs.clone();
                    let f = &f;
                    s.spawn(move |_| {
                        f(RankEndpoint {
                            rank,
                            nranks,
                            senders,
                            receiver,
                            matcher: Mutex::new(MatchState::default()),
                            coll_seq: AtomicU64::new(0),
                        })
                    })
                })
                .collect();
            // Close the original senders so channels die with the ranks.
            drop(txs);
            for (rank, h) in handles.into_iter().enumerate() {
                results[rank] = Some(h.join().expect("rank thread panicked"));
            }
        })
        .expect("cluster scope failed");
        results.into_iter().map(|r| r.unwrap()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_pass_accumulates() {
        // Each rank sends its rank id around a ring; everyone ends with the
        // global sum.
        let n = 5;
        let sums = LocalCluster::run(n, |ep| {
            let mut acc = ep.rank() as u64;
            let mut token = ep.rank() as u64;
            for _ in 0..n - 1 {
                ep.send((ep.rank() + 1) % n, 0, Bytes::copy_from_slice(&token.to_le_bytes()));
                let p = ep.recv();
                token = u64::from_le_bytes(p.payload.as_ref().try_into().unwrap());
                acc += token;
            }
            acc
        });
        let expect: u64 = (0..n as u64).sum();
        assert!(sums.iter().all(|&s| s == expect), "{sums:?}");
    }

    #[test]
    fn tags_and_sources_preserved() {
        let out = LocalCluster::run(2, |ep| {
            if ep.rank() == 0 {
                ep.send(1, 42, Bytes::from_static(b"ghost"));
                0u64
            } else {
                let p = ep.recv();
                assert_eq!(p.src, 0);
                assert_eq!(p.tag, 42);
                assert_eq!(p.payload.as_ref(), b"ghost");
                p.tag
            }
        });
        assert_eq!(out, vec![0, 42]);
    }

    #[test]
    fn all_to_all_delivery() {
        let n = 4;
        let counts = LocalCluster::run(n, |ep| {
            for dst in 0..n {
                if dst != ep.rank() {
                    ep.send(dst, ep.rank() as u64, Bytes::new());
                }
            }
            let pkts = ep.recv_n(n - 1);
            let mut srcs: Vec<usize> = pkts.iter().map(|p| p.src).collect();
            srcs.sort_unstable();
            srcs.len()
        });
        assert!(counts.iter().all(|&c| c == n - 1));
    }
}

impl RankEndpoint {
    /// Binomial-tree all-reduce of one `f64` with a commutative combiner:
    /// every rank returns the combined value. The collective the solver's
    /// `ComputeDt` needs (`ReduceRealMin`), executed over real channels.
    ///
    /// Every receive is tag-matched against the endpoint's collective
    /// sequence counter, so point-to-point traffic interleaved with the
    /// collective (e.g. halo packets from a rank already running ahead) is
    /// parked in the unexpected queue instead of being mis-consumed — the
    /// untagged `recv()` this used to call would have combined a ghost
    /// payload into `dt` (`collective_tests::allreduce_ignores_interleaved_
    /// point_to_point_traffic` regresses this).
    pub fn allreduce_f64(&self, value: f64, combine: impl Fn(f64, f64) -> f64) -> f64 {
        let n = self.nranks();
        let rank = self.rank();
        let seq = self.coll_seq.fetch_add(1, Ordering::Relaxed);
        let reduce_tag = tags::collective(seq, 0);
        let bcast_tag = tags::collective(seq, 1);
        let mut acc = value;
        // Reduce to rank 0 over a binomial tree; each step has a specific
        // partner, so matching on (partner, tag) makes the combine order
        // deterministic.
        let mut step = 1;
        while step < n {
            if rank.is_multiple_of(2 * step) {
                let partner = rank + step;
                if partner < n {
                    let payload = self.recv_matched(partner, reduce_tag);
                    acc = combine(
                        acc,
                        f64::from_le_bytes(payload.as_ref().try_into().unwrap()),
                    );
                }
            } else if rank % (2 * step) == step {
                self.send(rank - step, reduce_tag, Bytes::copy_from_slice(&acc.to_le_bytes()));
                break;
            }
            step *= 2;
        }
        // Broadcast back down the same tree.
        let mut steps = Vec::new();
        let mut s = 1;
        while s < n {
            steps.push(s);
            s *= 2;
        }
        for &s in steps.iter().rev() {
            if rank.is_multiple_of(2 * s) {
                let partner = rank + s;
                if partner < n {
                    self.send(partner, bcast_tag, Bytes::copy_from_slice(&acc.to_le_bytes()));
                }
            } else if rank % (2 * s) == s {
                let payload = self.recv_matched(rank - s, bcast_tag);
                acc = f64::from_le_bytes(payload.as_ref().try_into().unwrap());
            }
        }
        acc
    }
}

#[cfg(test)]
mod collective_tests {
    use super::*;

    #[test]
    fn allreduce_min_matches_serial() {
        for n in [1usize, 2, 3, 5, 8, 13] {
            let values: Vec<f64> = (0..n).map(|r| ((r * 7919) % 23) as f64 - 5.0).collect();
            let expect = values.iter().cloned().fold(f64::INFINITY, f64::min);
            let vs = values.clone();
            let out = LocalCluster::run(n, move |ep| {
                ep.allreduce_f64(vs[ep.rank()], f64::min)
            });
            assert!(
                out.iter().all(|&v| v == expect),
                "n = {n}: {out:?} (expected {expect})"
            );
        }
    }

    #[test]
    fn allreduce_sum_matches_serial() {
        let n = 6;
        let out = LocalCluster::run(n, move |ep| {
            ep.allreduce_f64(ep.rank() as f64 + 1.0, |a, b| a + b)
        });
        assert!(out.iter().all(|&v| (v - 21.0).abs() < 1e-12), "{out:?}");
    }

    /// Regression for the untagged-`recv()` bug: a halo packet already
    /// sitting in the root's channel when the collective starts must land in
    /// the unexpected queue, not be combined into the reduction.
    #[test]
    fn allreduce_ignores_interleaved_point_to_point_traffic() {
        for n in [2usize, 4] {
            let halo_tag = tags::halo(3, 1, 7);
            let out = LocalCluster::run(n, move |ep| {
                if ep.rank() == 1 {
                    // Poison value: if mis-consumed by min(), dt collapses.
                    ep.send(0, halo_tag, Bytes::copy_from_slice(&(-1e30f64).to_le_bytes()));
                    // Give the packet time to arrive before the collective.
                    std::thread::sleep(std::time::Duration::from_millis(20));
                }
                let dt = ep.allreduce_f64(1.0 + ep.rank() as f64, f64::min);
                let halo = (ep.rank() == 0)
                    .then(|| f64::from_le_bytes(ep.recv_matched(1, halo_tag).as_ref().try_into().unwrap()));
                (dt, halo)
            });
            for (r, &(dt, halo)) in out.iter().enumerate() {
                assert_eq!(dt, 1.0, "rank {r} of {n}: halo payload leaked into allreduce");
                if r == 0 {
                    assert_eq!(halo, Some(-1e30));
                }
            }
        }
    }

    /// Back-to-back collectives stay matched via the sequence counter even
    /// when a fast subtree races ahead to the next collective.
    #[test]
    fn consecutive_allreduces_do_not_cross_match() {
        let n = 5;
        let out = LocalCluster::run(n, move |ep| {
            let a = ep.allreduce_f64(ep.rank() as f64, f64::max);
            let b = ep.allreduce_f64(-(ep.rank() as f64), f64::min);
            (a, b)
        });
        assert!(out.iter().all(|&(a, b)| a == 4.0 && b == -4.0), "{out:?}");
    }
}

#[cfg(test)]
mod matched_tests {
    use super::*;

    #[test]
    fn irecv_matches_out_of_order_arrivals() {
        let out = LocalCluster::run(2, |ep| {
            if ep.rank() == 0 {
                // Send in the opposite order of the receiver's posts.
                ep.send(1, 20, Bytes::from_static(b"second"));
                ep.send(1, 10, Bytes::from_static(b"first"));
                Vec::new()
            } else {
                let h10 = ep.irecv(0, 10);
                let h20 = ep.irecv(0, 20);
                vec![ep.wait(&h10), ep.wait(&h20)]
            }
        });
        assert_eq!(out[1][0].as_ref(), b"first");
        assert_eq!(out[1][1].as_ref(), b"second");
    }

    #[test]
    fn unexpected_packets_complete_later_posts_immediately() {
        let out = LocalCluster::run(2, |ep| {
            if ep.rank() == 0 {
                ep.send(1, 99, Bytes::from_static(b"early"));
                true
            } else {
                // Drain the channel into the unexpected queue first.
                while !ep.progress() {
                    std::thread::yield_now();
                }
                let h = ep.irecv(0, 99);
                assert!(h.is_ready(), "unexpected-queue match must be immediate");
                h.payload().unwrap().as_ref() == b"early"
            }
        });
        assert!(out[1]);
    }

    #[test]
    fn duplicate_tags_match_in_arrival_order() {
        let out = LocalCluster::run(2, |ep| {
            if ep.rank() == 0 {
                ep.send(1, 5, Bytes::from_static(b"a"));
                ep.send(1, 5, Bytes::from_static(b"b"));
                Vec::new()
            } else {
                let h1 = ep.irecv(0, 5);
                let h2 = ep.irecv(0, 5);
                vec![ep.wait(&h1), ep.wait(&h2)]
            }
        });
        // Posted order matches arrival order (per-sender FIFO).
        assert_eq!(out[1][0].as_ref(), b"a");
        assert_eq!(out[1][1].as_ref(), b"b");
    }

    #[test]
    fn tag_namespace_kinds_never_collide() {
        let h = tags::halo(1, 2, 3);
        let g = tags::gather(1, 2, 3);
        let c = tags::collective(1, 0);
        assert_ne!(h, g);
        assert_ne!(h, c);
        assert_ne!(g, c);
        assert_ne!(tags::halo(1, 2, 3), tags::halo(2, 2, 3));
        assert_ne!(tags::collective(1, 0), tags::collective(1, 1));
        assert_ne!(tags::collective(1, 0), tags::collective(2, 0));
    }
}
