//! A real threaded message-passing cluster.
//!
//! `LocalCluster` spawns one OS thread per rank, wired all-to-all with
//! crossbeam channels carrying [`Bytes`] payloads. It exists to prove the
//! distributed code path — pack ghost region, send, receive, unpack — with
//! real concurrency at laptop scale, complementing the virtual-clock
//! simulator in [`crate::sim`] used for Summit-scale studies.
//!
//! In *chaos mode* ([`LocalCluster::run_with_chaos`]) the same endpoints run
//! over an adversarial transport (see [`crate::chaos`] and DESIGN.md §4g):
//! every payload is framed with a length + CRC32 header and a per-(src,dst)
//! sequence number, receives grow deadlines with receiver-driven retransmit
//! and exponential backoff, and detected-but-unrepairable faults surface as
//! typed [`CommError`]s instead of hangs. [`CommGroup`]/[`GroupEndpoint`]
//! layer *logical* ranks over the physical endpoints so the solver can
//! re-form a smaller communicator after a rank dies.

use crate::chaos::{decode_frame, encode_frame, ChaosConfig, ChaosRuntime};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::collections::{BTreeSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// A tagged message between ranks.
#[derive(Clone, Debug)]
pub struct Packet {
    /// Sending rank.
    pub src: usize,
    /// User tag (e.g. a box id).
    pub tag: u64,
    /// Payload.
    pub payload: Bytes,
}

/// The tag namespace the distributed solver uses over [`RankEndpoint`]s.
///
/// A `u64` tag packs `kind | epoch | level | index`, so concurrent traffic
/// classes (halo chunks, full-fab gathers, collective phases) can never
/// match each other, and the per-stage epoch disambiguates packets of
/// successive RK stages even when a fast rank runs one stage ahead
/// (per-sender channel FIFO already makes earliest-arrival matching correct;
/// the epoch is cheap insurance and a debugging aid).
///
/// Under chaos recovery the top 4 bits of the 16-bit epoch field carry the
/// communicator *generation* ([`tags::epoch_with_generation`]): after a
/// rollback the survivors bump the generation, so halo/gather packets
/// replayed from before the crash can never tag-match post-recovery
/// receives — stragglers are filtered at decode time by
/// [`tags::generation_of`].
pub mod tags {
    /// Traffic-class discriminant: an owned-data exchange message (chunked
    /// gathers, redistributions, checkpoint payloads — sub-classified by the
    /// `OWNED_*` space carried in the level field's top bits).
    pub const KIND_OWNED: u64 = 0;
    /// Traffic-class discriminant: a same-level halo chunk.
    pub const KIND_HALO: u64 = 1;
    /// Traffic-class discriminant: a full-fab replication gather.
    pub const KIND_GATHER: u64 = 2;
    /// Traffic-class discriminant: a collective phase message.
    pub const KIND_COLL: u64 = 3;

    /// Owned-data sub-space: a coarse→fine state gather chunk (FillPatch or
    /// regrid interpolation source data).
    pub const OWNED_GATHER: u64 = 0;
    /// Owned-data sub-space: a coarse coordinate gather chunk (the
    /// curvilinear interpolator's coordinate `ParallelCopy`).
    pub const OWNED_COORDS: u64 = 1;
    /// Owned-data sub-space: a redistribution payload (average-down values,
    /// old→new mapping `ParallelCopy` chunks, tag-set unions).
    pub const OWNED_REDIST: u64 = 2;
    /// Owned-data sub-space: a checkpoint patch payload replicated to
    /// survivors.
    pub const OWNED_CKPT: u64 = 3;
    /// Owned-data sub-space: a coarse *old-time-level* state gather chunk —
    /// the second gather a subcycled two-level fill performs so fine ranks
    /// can time-interpolate coarse ghosts (docs/ARCHITECTURE.md
    /// §Subcycling). Same chunk enumeration as `OWNED_GATHER`, distinct
    /// space so the two never cross-match within one fill.
    pub const OWNED_GATHER_OLD: u64 = 4;
    /// Owned-data sub-space: a refluxing payload — the fine-side flux-sum
    /// parts a fine-patch owner ships to the coarse-patch owner after its
    /// substeps.
    pub const OWNED_REFLUX: u64 = 5;

    fn compose(kind: u64, epoch: u64, level: usize, index: usize) -> u64 {
        debug_assert!(index < (1 << 32), "tag index overflows 32 bits");
        (kind << 62) | ((epoch & 0xFFFF) << 40) | (((level as u64) & 0xFF) << 32) | index as u64
    }

    /// Tag for owned-data exchange message `index` of `level` in sub-space
    /// `space` (`OWNED_GATHER`/`OWNED_COORDS`/`OWNED_REDIST`/`OWNED_CKPT`/
    /// `OWNED_GATHER_OLD`/`OWNED_REFLUX`) during stage-epoch `epoch`. The
    /// space rides in bits 5–7 of the level field, so levels up to 31 and
    /// eight spaces never collide.
    pub fn owned(space: u64, epoch: u64, level: usize, index: usize) -> u64 {
        debug_assert!(space < 8, "owned tag space overflows 3 bits");
        debug_assert!(level < 32, "owned tag level overflows 5 bits");
        compose(KIND_OWNED, epoch, level | ((space as usize) << 5), index)
    }

    /// Tag for halo chunk `chunk` of `level` during stage-epoch `epoch`.
    pub fn halo(epoch: u64, level: usize, chunk: usize) -> u64 {
        compose(KIND_HALO, epoch, level, chunk)
    }

    /// Tag for the replication gather of patch `patch` of `level` during
    /// stage-epoch `epoch`.
    pub fn gather(epoch: u64, level: usize, patch: usize) -> u64 {
        compose(KIND_GATHER, epoch, level, patch)
    }

    /// Tag for phase `phase` (0 = reduce, 1 = broadcast) of the `seq`-th
    /// collective on an endpoint.
    pub fn collective(seq: u64, phase: u64) -> u64 {
        (KIND_COLL << 62) | ((seq & 0x1FFF_FFFF_FFFF_FFFF) << 1) | (phase & 1)
    }

    /// The traffic-class discriminant of `tag` (`KIND_HALO`, `KIND_GATHER`,
    /// or `KIND_COLL`).
    pub fn kind_of(tag: u64) -> u64 {
        tag >> 62
    }

    /// The communicator generation carried in a halo/gather tag's epoch
    /// field (meaningless for collective tags, whose bit layout differs).
    pub fn generation_of(tag: u64) -> u64 {
        (tag >> 52) & 0xF
    }

    /// Packs communicator generation `gen` into the top 4 bits of the
    /// 16-bit epoch field, above the 12-bit stage epoch `base`.
    ///
    /// Both wrap (`gen` mod 16, `base` mod 4096) — safe at test scale, where
    /// at most a handful of recoveries happen and in-flight traffic never
    /// spans anywhere near 4096 stage epochs.
    pub fn epoch_with_generation(gen: u64, base: u64) -> u64 {
        ((gen & 0xF) << 12) | (base & 0xFFF)
    }
}

/// A detected, unrepairable communication fault (DESIGN.md §4g). Drop,
/// duplication, corruption, and delay faults are repaired inside the
/// transport and never surface; these errors are what escapes to the
/// stepping loop, which answers with checkpoint rollback.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CommError {
    /// A fail-stopped rank was detected in the communicator.
    RankDead {
        /// The physical rank that died.
        rank: usize,
    },
    /// A matched receive exhausted its deadline despite retransmit retries.
    Timeout {
        /// Source rank of the starved receive.
        src: usize,
        /// Tag of the starved receive.
        tag: u64,
        /// Milliseconds waited before giving up.
        waited_ms: u64,
        /// Retransmit retries issued before giving up.
        retries: u32,
    },
    /// The unexpected-message queue hit its bound (a flood of unmatched
    /// tags; see [`RankEndpoint::set_unexpected_cap`]).
    QueueOverflow {
        /// The configured queue bound.
        cap: usize,
    },
    /// A received payload had the wrong length for the decoder consuming it
    /// (a tag collision delivering a foreign packet, or corruption that
    /// slipped past the transport's repair layer). The packet crossed the
    /// wire, so its shape is not a local invariant this rank may assert.
    MalformedPayload {
        /// Source rank of the offending packet.
        src: usize,
        /// Tag under which it was matched.
        tag: u64,
        /// Bytes the decoder needed.
        expected: usize,
        /// Bytes actually received.
        got: usize,
    },
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::RankDead { rank } => write!(f, "rank {rank} is dead"),
            CommError::Timeout {
                src,
                tag,
                waited_ms,
                retries,
            } => write!(
                f,
                "receive from rank {src} tag {tag:#x} timed out after {waited_ms} ms ({retries} retries)"
            ),
            CommError::QueueOverflow { cap } => {
                write!(f, "unexpected-message queue overflowed its bound of {cap}")
            }
            CommError::MalformedPayload {
                src,
                tag,
                expected,
                got,
            } => write!(
                f,
                "payload from rank {src} tag {tag:#x} is {got} bytes, decoder needs {expected}"
            ),
        }
    }
}

impl std::error::Error for CommError {}

/// Completion handle of a nonblocking receive posted with
/// [`RankEndpoint::irecv`] — the `MPI_Request` analog. Cheap to clone; all
/// clones observe the same completion.
#[derive(Clone)]
pub struct RecvHandle {
    slot: Arc<OnceLock<Bytes>>,
    src: usize,
    tag: u64,
}

impl RecvHandle {
    /// `true` once the matching packet has been delivered.
    pub fn is_ready(&self) -> bool {
        self.slot.get().is_some()
    }

    /// The delivered payload, if the receive has completed ([`Bytes`] clones
    /// are reference-counted slices, not copies).
    pub fn payload(&self) -> Option<Bytes> {
        self.slot.get().cloned()
    }

    /// The source rank this receive matches.
    pub fn src(&self) -> usize {
        self.src
    }

    /// The tag this receive matches.
    pub fn tag(&self) -> u64 {
        self.tag
    }
}

/// A receive posted before its packet arrived: `(src, tag)` to match, and
/// the slot to complete.
struct PostedRecv {
    src: usize,
    tag: u64,
    slot: Arc<OnceLock<Bytes>>,
}

/// Per-source duplicate suppressor: the set of transport sequence numbers
/// already accepted from one sender, kept compact as a contiguous prefix
/// plus a sparse out-of-order tail. Retransmits re-deliver pristine frames,
/// so replays are expected traffic; this is what keeps them invisible above
/// the transport.
#[derive(Default)]
struct SeqTracker {
    /// All sequence numbers `< contig` have been accepted.
    contig: u64,
    /// Accepted sequence numbers `>= contig` (out-of-order arrivals).
    sparse: BTreeSet<u64>,
}

impl SeqTracker {
    /// Records `seq`; returns `true` iff it was fresh (first acceptance).
    fn insert(&mut self, seq: u64) -> bool {
        if seq < self.contig || !self.sparse.insert(seq) {
            return false;
        }
        while self.sparse.remove(&self.contig) {
            self.contig += 1;
        }
        true
    }
}

/// Default bound on the unexpected-message queue — far above anything the
/// solver's bounded-outstanding traffic produces, low enough that a runaway
/// flood fails fast instead of exhausting memory.
const DEFAULT_UNEXPECTED_CAP: usize = 16_384;

/// MPI-style matching state: receives posted before arrival, and packets
/// that arrived before any matching receive was posted (the *unexpected
/// message queue*). Both are searched in order, so matching is
/// earliest-posted against earliest-arrived — deterministic under the
/// per-sender FIFO the channels guarantee.
struct MatchState {
    posted: VecDeque<PostedRecv>,
    unexpected: VecDeque<Packet>,
    /// Per-source transport sequence trackers (chaos mode only).
    seen: Vec<SeqTracker>,
    /// Bound on `unexpected`; exceeding it is a typed error.
    cap: usize,
}

impl MatchState {
    fn new(nranks: usize) -> Self {
        MatchState {
            posted: VecDeque::new(),
            unexpected: VecDeque::new(),
            seen: (0..nranks).map(|_| SeqTracker::default()).collect(),
            cap: DEFAULT_UNEXPECTED_CAP,
        }
    }
}

/// One rank's communication endpoint.
pub struct RankEndpoint {
    rank: usize,
    nranks: usize,
    senders: Vec<Sender<Packet>>,
    receiver: Receiver<Packet>,
    matcher: Mutex<MatchState>,
    /// Collective sequence counter: all ranks call collectives in the same
    /// order (they are collective), so counters advance in lockstep and the
    /// derived tags agree across ranks. Never rolled back by recovery — at
    /// recovery entry every survivor has consumed the same collective, so
    /// the counters stay in lockstep through a rollback.
    coll_seq: AtomicU64,
    /// The shared chaos runtime, when this endpoint runs in chaos mode.
    chaos: Option<Arc<ChaosRuntime>>,
    /// Per-destination transport sequence counters (chaos mode framing).
    send_seq: Vec<AtomicU64>,
    /// Current communicator generation; halo/gather packets carrying an
    /// older generation are discarded at decode time (rollback stragglers).
    generation: AtomicU64,
}

impl RankEndpoint {
    /// This endpoint's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total rank count.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// The chaos runtime this endpoint is wired to, if any.
    pub fn chaos(&self) -> Option<&Arc<ChaosRuntime>> {
        self.chaos.as_ref()
    }

    /// Rebinds the bound on the unexpected-message queue (see
    /// [`CommError::QueueOverflow`]).
    pub fn set_unexpected_cap(&self, cap: usize) {
        assert!(cap > 0);
        self.matcher.lock().expect("matcher poisoned").cap = cap;
    }

    /// Sends `payload` to `dst` with `tag`. Sending to self is allowed (the
    /// packet is delivered through the same queue). In chaos mode the
    /// payload is framed (length + CRC32 + sequence number) and routed
    /// through the fault plan; a closed channel (fail-stopped destination)
    /// is not an error — the send vanishes, as on a real fabric.
    pub fn send(&self, dst: usize, tag: u64, payload: Bytes) {
        match &self.chaos {
            None => {
                self.senders[dst]
                    .send(Packet {
                        src: self.rank,
                        tag,
                        payload,
                    })
                    .expect("cluster channel closed");
            }
            Some(ch) => {
                let seq = self.send_seq[dst].fetch_add(1, Ordering::Relaxed);
                let frame = encode_frame(seq, payload.as_ref());
                ch.route(self.rank, dst, tag, seq, frame);
            }
        }
    }

    /// Blocks until the next packet arrives, in raw arrival order.
    ///
    /// This bypasses tag matching entirely: a packet consumed here is never
    /// seen by [`RankEndpoint::irecv`]/[`RankEndpoint::recv_matched`]. Do not
    /// mix raw and matched receives on one endpoint, and do not use this in
    /// chaos mode (frames would arrive undecoded).
    pub fn recv(&self) -> Packet {
        assert!(self.chaos.is_none(), "raw recv() is not frame-aware");
        self.receiver.recv().expect("cluster channel closed")
    }

    /// Receives exactly `n` packets (raw arrival order; see [`Self::recv`]).
    pub fn recv_n(&self, n: usize) -> Vec<Packet> {
        (0..n).map(|_| self.recv()).collect()
    }

    /// Posts a nonblocking, tag-matched receive for the next packet from
    /// `src` carrying `tag`, returning its completion handle (the
    /// `MPI_Irecv` analog). If a matching packet already sits in the
    /// unexpected-message queue the handle completes immediately.
    pub fn irecv(&self, src: usize, tag: u64) -> RecvHandle {
        let slot = Arc::new(OnceLock::new());
        let mut m = self.matcher.lock().expect("matcher poisoned");
        if let Some(pos) = m
            .unexpected
            .iter()
            .position(|p| p.src == src && p.tag == tag)
        {
            let pkt = m.unexpected.remove(pos).unwrap();
            slot.set(pkt.payload).ok();
        } else {
            m.posted.push_back(PostedRecv {
                src,
                tag,
                slot: slot.clone(),
            });
        }
        RecvHandle { slot, src, tag }
    }

    /// Delivers `pkt` to the earliest matching posted receive, or queues it
    /// as unexpected (bounded). Returns `true` when a posted receive
    /// completed.
    fn deliver(m: &mut MatchState, pkt: Packet) -> Result<bool, CommError> {
        if let Some(pos) = m
            .posted
            .iter()
            .position(|r| r.src == pkt.src && r.tag == pkt.tag)
        {
            let r = m.posted.remove(pos).unwrap();
            r.slot.set(pkt.payload).ok();
            Ok(true)
        } else {
            if m.unexpected.len() >= m.cap {
                return Err(CommError::QueueOverflow { cap: m.cap });
            }
            m.unexpected.push_back(pkt);
            Ok(false)
        }
    }

    /// Validates and absorbs one raw packet from the channel. Non-chaos
    /// packets pass straight to the matcher. Chaos-mode frames are decoded
    /// first: damaged frames trigger a link retransmit and vanish; accepted
    /// frames are acknowledged (clearing the sender-side pristine copy),
    /// duplicate-suppressed by sequence number, and generation-filtered
    /// (halo/gather/owned-exchange stragglers from before a rollback are
    /// discarded; only collective tags, whose bit layout differs, are
    /// exempt).
    fn absorb(&self, m: &mut MatchState, pkt: Packet) -> Result<bool, CommError> {
        let Some(ch) = &self.chaos else {
            return Self::deliver(m, pkt);
        };
        match decode_frame(pkt.payload.as_ref()) {
            Err(_) => {
                ch.stats.frame_rejects.fetch_add(1, Ordering::Relaxed);
                ch.retransmit_link(pkt.src, self.rank);
                Ok(false)
            }
            Ok((seq, payload)) => {
                ch.ack(pkt.src, self.rank, seq);
                if !m.seen[pkt.src].insert(seq) {
                    ch.stats.dup_suppressed.fetch_add(1, Ordering::Relaxed);
                    return Ok(false);
                }
                let kind = tags::kind_of(pkt.tag);
                if kind != tags::KIND_COLL
                    && tags::generation_of(pkt.tag) != self.generation.load(Ordering::Relaxed)
                {
                    ch.stats.stale_discards.fetch_add(1, Ordering::Relaxed);
                    return Ok(false);
                }
                Self::deliver(
                    m,
                    Packet {
                        src: pkt.src,
                        tag: pkt.tag,
                        payload,
                    },
                )
            }
        }
    }

    /// Drains every packet currently buffered in the channel, matching each
    /// against the posted receives (the `MPI_Test`-loop analog the task
    /// graph's progress pump calls). Returns `Ok(true)` when at least one
    /// packet was drained — completing a posted receive or landing in the
    /// unexpected-message queue. In chaos mode, due delayed frames are
    /// released first.
    pub fn try_progress(&self) -> Result<bool, CommError> {
        if let Some(ch) = &self.chaos {
            ch.pump_delayed();
        }
        let mut drained = false;
        let mut m = self.matcher.lock().expect("matcher poisoned");
        while let Ok(pkt) = self.receiver.try_recv() {
            self.absorb(&mut m, pkt)?;
            drained = true;
        }
        Ok(drained)
    }

    /// Infallible progress pump (panics on a detected comm fault — the
    /// legacy entry point for non-chaos callers; chaos-aware callers use
    /// [`Self::try_progress`] / [`GroupEndpoint::pump`]).
    pub fn progress(&self) -> bool {
        self.try_progress().expect("communication fault")
    }

    /// Blocks until `h` completes, polling `fault` each iteration so a
    /// fail-stopped peer unblocks this wait with an error instead of a
    /// hang. Chaos mode spins with a deadline and receiver-driven
    /// retransmit + exponential backoff; without chaos this is a plain
    /// blocking receive loop.
    fn wait_inner(
        &self,
        h: &RecvHandle,
        fault: &dyn Fn() -> Option<CommError>,
    ) -> Result<Bytes, CommError> {
        let Some(ch) = &self.chaos else {
            loop {
                if let Some(b) = h.payload() {
                    return Ok(b);
                }
                if let Some(e) = fault() {
                    return Err(e);
                }
                let pkt = self.receiver.recv().expect("cluster channel closed");
                let mut m = self.matcher.lock().expect("matcher poisoned");
                self.absorb(&mut m, pkt)?;
            }
        };
        let cfg = ch.config();
        let start = Instant::now();
        let mut retries = 0u32;
        let mut backoff_ms = cfg.retry_backoff_ms.max(1);
        let mut next_retry_ms = backoff_ms;
        let mut idle_spins = 0u32;
        loop {
            if self.try_progress()? {
                idle_spins = 0;
            }
            if let Some(b) = h.payload() {
                return Ok(b);
            }
            if let Some(e) = fault() {
                return Err(e);
            }
            let waited_ms = start.elapsed().as_millis() as u64;
            if waited_ms >= cfg.wait_timeout_ms {
                return Err(CommError::Timeout {
                    src: h.src,
                    tag: h.tag,
                    waited_ms,
                    retries,
                });
            }
            if waited_ms >= next_retry_ms {
                ch.retransmit_link(h.src, self.rank);
                retries += 1;
                backoff_ms = backoff_ms.saturating_mul(2);
                next_retry_ms = waited_ms + backoff_ms;
            }
            // Spin briefly for latency, then park in short naps: on
            // oversubscribed hosts (CI runs this cluster on a single core)
            // a pure yield loop starves the very compute threads whose
            // messages it is waiting for.
            idle_spins += 1;
            if idle_spins > 256 {
                std::thread::sleep(Duration::from_micros(200));
            } else {
                std::thread::yield_now();
            }
        }
    }

    /// Blocks until `h` completes and returns its payload.
    ///
    /// Packets for *other* posted receives arriving meanwhile are delivered
    /// or queued as unexpected, never dropped. Only one thread of a rank may
    /// block here at a time (the solver's fenced path and collectives are
    /// single-threaded per rank; the overlapped path never blocks — it polls
    /// through [`Self::progress`]).
    pub fn wait(&self, h: &RecvHandle) -> Bytes {
        self.wait_inner(h, &|| None).expect("communication fault")
    }

    /// Blocking tag-matched receive: [`Self::irecv`] + [`Self::wait`].
    pub fn recv_matched(&self, src: usize, tag: u64) -> Bytes {
        let h = self.irecv(src, tag);
        self.wait(&h)
    }

    /// `(src, tag)` of the earliest posted, still-incomplete receive.
    fn first_posted(&self) -> Option<(usize, u64)> {
        let m = self.matcher.lock().expect("matcher poisoned");
        m.posted.front().map(|r| (r.src, r.tag))
    }

    /// Cancels every posted receive, returning how many were abandoned.
    /// Recovery calls this before rollback: posts belonging to the aborted
    /// step must not linger to swallow post-recovery packets.
    pub fn cancel_posted(&self) -> usize {
        let mut m = self.matcher.lock().expect("matcher poisoned");
        let n = m.posted.len();
        m.posted.clear();
        n
    }

    /// Drops queued unexpected halo/gather/owned-exchange packets whose tag
    /// carries a generation other than `generation` (pre-rollback stragglers
    /// that were already matched into the queue). Collective packets are kept —
    /// collective sequence numbers stay in lockstep through recovery, so a
    /// queued collective packet is either still wanted or rots harmlessly
    /// under a never-reused tag. Returns how many packets were purged.
    pub fn purge_stale_unexpected(&self, generation: u64) -> usize {
        let mut m = self.matcher.lock().expect("matcher poisoned");
        let before = m.unexpected.len();
        m.unexpected.retain(|p| {
            let kind = tags::kind_of(p.tag);
            kind == tags::KIND_COLL || tags::generation_of(p.tag) == generation
        });
        let purged = before - m.unexpected.len();
        if let Some(ch) = &self.chaos {
            ch.stats
                .stale_discards
                .fetch_add(purged as u64, Ordering::Relaxed);
        }
        purged
    }
}

/// A process-local cluster of rank threads.
pub struct LocalCluster;

impl LocalCluster {
    /// Runs `f` on `nranks` rank threads and returns each rank's result in
    /// rank order. Panics in any rank propagate.
    pub fn run<R, F>(nranks: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(RankEndpoint) -> R + Sync,
    {
        Self::run_inner(nranks, None, f).0
    }

    /// Runs `f` on `nranks` rank threads over the chaos transport configured
    /// by `cfg`: framed payloads, fault injection per the seeded plan, and
    /// deadline-growing receives. Also returns the shared [`ChaosRuntime`]
    /// so callers can inspect fault counters after the run.
    pub fn run_with_chaos<R, F>(nranks: usize, cfg: ChaosConfig, f: F) -> (Vec<R>, Arc<ChaosRuntime>)
    where
        R: Send,
        F: Fn(RankEndpoint) -> R + Sync,
    {
        let (results, ch) = Self::run_inner(nranks, Some(cfg), f);
        (results, ch.expect("chaos runtime was built"))
    }

    fn run_inner<R, F>(
        nranks: usize,
        chaos_cfg: Option<ChaosConfig>,
        f: F,
    ) -> (Vec<R>, Option<Arc<ChaosRuntime>>)
    where
        R: Send,
        F: Fn(RankEndpoint) -> R + Sync,
    {
        assert!(nranks > 0);
        let mut txs = Vec::with_capacity(nranks);
        let mut rxs = Vec::with_capacity(nranks);
        for _ in 0..nranks {
            let (tx, rx) = unbounded::<Packet>();
            txs.push(tx);
            rxs.push(rx);
        }
        let chaos = chaos_cfg.map(|cfg| Arc::new(ChaosRuntime::new(nranks, cfg, txs.clone())));
        let mut results: Vec<Option<R>> = (0..nranks).map(|_| None).collect();
        crossbeam::thread::scope(|s| {
            let handles: Vec<_> = rxs
                .into_iter()
                .enumerate()
                .map(|(rank, receiver)| {
                    let senders = txs.clone();
                    let f = &f;
                    let chaos = chaos.clone();
                    s.spawn(move |_| {
                        f(RankEndpoint {
                            rank,
                            nranks,
                            senders,
                            receiver,
                            matcher: Mutex::new(MatchState::new(nranks)),
                            coll_seq: AtomicU64::new(0),
                            chaos,
                            send_seq: (0..nranks).map(|_| AtomicU64::new(0)).collect(),
                            generation: AtomicU64::new(0),
                        })
                    })
                })
                .collect();
            // Close the original senders so channels die with the ranks.
            // (In chaos mode the runtime keeps sender clones alive for
            // retransmits; chaos-mode receives never block on channel
            // closure — they spin with deadlines — so that is harmless.)
            drop(txs);
            for (rank, h) in handles.into_iter().enumerate() {
                results[rank] = Some(h.join().expect("rank thread panicked"));
            }
        })
        .expect("cluster scope failed");
        (results.into_iter().map(|r| r.unwrap()).collect(), chaos)
    }
}

// --- Communicator groups (recovery re-forms these without the dead rank) ----

/// An ordered set of physical ranks acting as one logical communicator —
/// the `MPI_Comm` analog recovery shrinks when a rank dies. Logical rank
/// `i` is the `i`-th surviving physical rank.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommGroup {
    members: Vec<usize>,
}

impl CommGroup {
    /// The full group `{0, …, nranks-1}`.
    pub fn full(nranks: usize) -> Self {
        CommGroup {
            members: (0..nranks).collect(),
        }
    }

    /// A group of the given physical ranks (sorted, deduplicated).
    pub fn new(mut members: Vec<usize>) -> Self {
        members.sort_unstable();
        members.dedup();
        assert!(!members.is_empty(), "a communicator group cannot be empty");
        CommGroup { members }
    }

    /// Number of logical ranks.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` for the (impossible) empty group — present for clippy's sake.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// `true` when physical rank `r` belongs to the group.
    pub fn contains(&self, r: usize) -> bool {
        self.members.binary_search(&r).is_ok()
    }

    /// Physical rank of logical rank `logical`.
    pub fn physical(&self, logical: usize) -> usize {
        self.members[logical]
    }

    /// Logical rank of physical rank `r`, if it belongs to the group.
    pub fn logical(&self, r: usize) -> Option<usize> {
        self.members.binary_search(&r).ok()
    }

    /// The member physical ranks, ascending.
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// The group minus any ranks in `dead`.
    pub fn without(&self, dead: &[usize]) -> CommGroup {
        CommGroup::new(
            self.members
                .iter()
                .copied()
                .filter(|r| !dead.contains(r))
                .collect(),
        )
    }
}

/// Stall tracking for [`GroupEndpoint::pump`]: the overlapped executor's
/// progress pump cannot attribute a stall to one link, so it retries all
/// inbound links with exponential backoff and times out like a wait would.
struct PumpState {
    stall_start: Instant,
    next_retry_ms: u64,
    backoff_ms: u64,
    retries: u32,
}

/// A [`RankEndpoint`] viewed through a [`CommGroup`]: all send/recv/
/// collective calls take *logical* ranks and translate to physical ones.
/// Carries the communicator generation that recovery bumps after each
/// rollback (stamped into halo/gather tag epochs via
/// [`tags::epoch_with_generation`]), and polls the chaos runtime's alive
/// flags so a dead group member turns every blocked wait into
/// [`CommError::RankDead`].
pub struct GroupEndpoint<'a> {
    ep: &'a RankEndpoint,
    group: CommGroup,
    generation: u64,
    pump: Mutex<PumpState>,
}

impl<'a> GroupEndpoint<'a> {
    /// Views `ep` through `group` at communicator generation `generation`.
    /// `ep`'s physical rank must be a member. The endpoint's stale-packet
    /// filter is re-armed to this generation.
    pub fn new(ep: &'a RankEndpoint, group: CommGroup, generation: u64) -> Self {
        assert!(
            group.contains(ep.rank()),
            "rank {} is not a member of {:?}",
            ep.rank(),
            group
        );
        ep.generation.store(generation, Ordering::Relaxed);
        GroupEndpoint {
            ep,
            group,
            generation,
            pump: Mutex::new(PumpState {
                stall_start: Instant::now(),
                next_retry_ms: 1,
                backoff_ms: 1,
                retries: 0,
            }),
        }
    }

    /// The trivial view: full group, current generation. What non-chaos
    /// callers (`step_cluster`) use.
    pub fn full(ep: &'a RankEndpoint) -> Self {
        let generation = ep.generation.load(Ordering::Relaxed);
        Self::new(ep, CommGroup::full(ep.nranks()), generation)
    }

    /// Logical rank of this endpoint within the group.
    pub fn rank(&self) -> usize {
        self.group
            .logical(self.ep.rank())
            .expect("endpoint is a member")
    }

    /// Number of logical ranks in the group.
    pub fn nranks(&self) -> usize {
        self.group.len()
    }

    /// The underlying physical rank.
    pub fn physical_rank(&self) -> usize {
        self.ep.rank()
    }

    /// The underlying physical endpoint.
    pub fn endpoint(&self) -> &RankEndpoint {
        self.ep
    }

    /// The group this view translates through.
    pub fn group(&self) -> &CommGroup {
        &self.group
    }

    /// The communicator generation this view stamps into tag epochs.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The first detected fault affecting this group (a dead member), if
    /// any. Polled by every wait loop so failures unblock peers.
    pub fn fault(&self) -> Option<CommError> {
        let ch = self.ep.chaos.as_ref()?;
        ch.first_dead_in(self.group.members())
            .map(|rank| CommError::RankDead { rank })
    }

    /// Sends to *logical* rank `dst`.
    pub fn send(&self, dst: usize, tag: u64, payload: Bytes) {
        self.ep.send(self.group.physical(dst), tag, payload);
    }

    /// Posts a nonblocking receive from *logical* rank `src`.
    pub fn irecv(&self, src: usize, tag: u64) -> RecvHandle {
        self.ep.irecv(self.group.physical(src), tag)
    }

    /// Blocks until `h` completes, surfacing dead-member and timeout faults
    /// as typed errors instead of hanging.
    pub fn wait(&self, h: &RecvHandle) -> Result<Bytes, CommError> {
        self.ep.wait_inner(h, &|| self.fault())
    }

    /// Blocking tag-matched receive from *logical* rank `src`.
    pub fn recv_matched(&self, src: usize, tag: u64) -> Result<Bytes, CommError> {
        let h = self.irecv(src, tag);
        self.wait(&h)
    }

    /// Fault-aware progress pump for the overlapped executor: drains the
    /// channel, checks for dead members, and — when receives are posted but
    /// nothing arrives — retries all inbound links with exponential backoff,
    /// timing out after the configured deadline.
    pub fn pump(&self) -> Result<bool, CommError> {
        let drained = self.ep.try_progress()?;
        if let Some(e) = self.fault() {
            return Err(e);
        }
        let Some(ch) = &self.ep.chaos else {
            return Ok(drained);
        };
        let cfg = ch.config();
        let mut ps = self.pump.lock().expect("pump state poisoned");
        if drained || self.ep.first_posted().is_none() {
            ps.stall_start = Instant::now();
            ps.backoff_ms = cfg.retry_backoff_ms.max(1);
            ps.next_retry_ms = ps.backoff_ms;
            ps.retries = 0;
            return Ok(drained);
        }
        let stalled_ms = ps.stall_start.elapsed().as_millis() as u64;
        if stalled_ms >= cfg.wait_timeout_ms {
            let (src, tag) = self.ep.first_posted().unwrap_or((usize::MAX, 0));
            return Err(CommError::Timeout {
                src,
                tag,
                waited_ms: stalled_ms,
                retries: ps.retries,
            });
        }
        if stalled_ms >= ps.next_retry_ms {
            ch.retransmit_into(self.ep.rank());
            ps.retries += 1;
            ps.backoff_ms = ps.backoff_ms.saturating_mul(2);
            ps.next_retry_ms = stalled_ms + ps.backoff_ms;
        }
        Ok(drained)
    }

    /// Binomial-tree all-reduce over the group's *logical* ranks (root =
    /// logical 0, so the tree survives a crash of physical rank 0 after the
    /// group is re-formed without it). Tag-matched via the endpoint's
    /// collective sequence counter; every receive polls the group fault so
    /// a mid-collective death aborts the reduction instead of hanging it.
    pub fn allreduce_f64(
        &self,
        value: f64,
        combine: impl Fn(f64, f64) -> f64,
    ) -> Result<f64, CommError> {
        let n = self.nranks();
        let rank = self.rank();
        let seq = self.ep.coll_seq.fetch_add(1, Ordering::Relaxed);
        let reduce_tag = tags::collective(seq, 0);
        let bcast_tag = tags::collective(seq, 1);
        let mut acc = value;
        // Reduce to logical rank 0 over a binomial tree; each step has a
        // specific partner, so matching on (partner, tag) makes the combine
        // order deterministic.
        let mut step = 1;
        while step < n {
            if rank.is_multiple_of(2 * step) {
                let partner = rank + step;
                if partner < n {
                    let payload = self.recv_matched(partner, reduce_tag)?;
                    acc = combine(acc, decode_f64(&payload, partner, reduce_tag)?);
                }
            } else if rank % (2 * step) == step {
                self.send(rank - step, reduce_tag, Bytes::copy_from_slice(&acc.to_le_bytes()));
                break;
            }
            step *= 2;
        }
        // Broadcast back down the same tree.
        let mut steps = Vec::new();
        let mut s = 1;
        while s < n {
            steps.push(s);
            s *= 2;
        }
        for &s in steps.iter().rev() {
            if rank.is_multiple_of(2 * s) {
                let partner = rank + s;
                if partner < n {
                    self.send(partner, bcast_tag, Bytes::copy_from_slice(&acc.to_le_bytes()));
                }
            } else if rank % (2 * s) == s {
                let payload = self.recv_matched(rank - s, bcast_tag)?;
                acc = decode_f64(&payload, rank - s, bcast_tag)?;
            }
        }
        Ok(acc)
    }
}

/// Decodes a little-endian `f64` collective payload, mapping a wrong-sized
/// packet to [`CommError::MalformedPayload`] instead of panicking: the bytes
/// arrived from another rank, so their length is an input to validate, not
/// an invariant to assert.
fn decode_f64(payload: &Bytes, src: usize, tag: u64) -> Result<f64, CommError> {
    let bytes: [u8; 8] =
        payload
            .as_ref()
            .try_into()
            .map_err(|_| CommError::MalformedPayload {
                src,
                tag,
                expected: 8,
                got: payload.len(),
            })?;
    Ok(f64::from_le_bytes(bytes))
}

impl RankEndpoint {
    /// Binomial-tree all-reduce of one `f64` with a commutative combiner:
    /// every rank returns the combined value. The collective the solver's
    /// `ComputeDt` needs (`ReduceRealMin`), executed over real channels.
    ///
    /// Every receive is tag-matched against the endpoint's collective
    /// sequence counter, so point-to-point traffic interleaved with the
    /// collective (e.g. halo packets from a rank already running ahead) is
    /// parked in the unexpected queue instead of being mis-consumed — the
    /// untagged `recv()` this used to call would have combined a ghost
    /// payload into `dt` (`collective_tests::allreduce_ignores_interleaved_
    /// point_to_point_traffic` regresses this).
    pub fn allreduce_f64(&self, value: f64, combine: impl Fn(f64, f64) -> f64) -> f64 {
        GroupEndpoint::full(self)
            .allreduce_f64(value, combine)
            .expect("communication fault")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_pass_accumulates() {
        // Each rank sends its rank id around a ring; everyone ends with the
        // global sum.
        let n = 5;
        let sums = LocalCluster::run(n, |ep| {
            let mut acc = ep.rank() as u64;
            let mut token = ep.rank() as u64;
            for _ in 0..n - 1 {
                ep.send((ep.rank() + 1) % n, 0, Bytes::copy_from_slice(&token.to_le_bytes()));
                let p = ep.recv();
                token = u64::from_le_bytes(p.payload.as_ref().try_into().unwrap());
                acc += token;
            }
            acc
        });
        let expect: u64 = (0..n as u64).sum();
        assert!(sums.iter().all(|&s| s == expect), "{sums:?}");
    }

    #[test]
    fn tags_and_sources_preserved() {
        let out = LocalCluster::run(2, |ep| {
            if ep.rank() == 0 {
                ep.send(1, 42, Bytes::from_static(b"ghost"));
                0u64
            } else {
                let p = ep.recv();
                assert_eq!(p.src, 0);
                assert_eq!(p.tag, 42);
                assert_eq!(p.payload.as_ref(), b"ghost");
                p.tag
            }
        });
        assert_eq!(out, vec![0, 42]);
    }

    #[test]
    fn all_to_all_delivery() {
        let n = 4;
        let counts = LocalCluster::run(n, |ep| {
            for dst in 0..n {
                if dst != ep.rank() {
                    ep.send(dst, ep.rank() as u64, Bytes::new());
                }
            }
            let pkts = ep.recv_n(n - 1);
            let mut srcs: Vec<usize> = pkts.iter().map(|p| p.src).collect();
            srcs.sort_unstable();
            srcs.len()
        });
        assert!(counts.iter().all(|&c| c == n - 1));
    }
}

#[cfg(test)]
mod collective_tests {
    use super::*;

    #[test]
    fn allreduce_min_matches_serial() {
        for n in [1usize, 2, 3, 5, 8, 13] {
            let values: Vec<f64> = (0..n).map(|r| ((r * 7919) % 23) as f64 - 5.0).collect();
            let expect = values.iter().cloned().fold(f64::INFINITY, f64::min);
            let vs = values.clone();
            let out = LocalCluster::run(n, move |ep| {
                ep.allreduce_f64(vs[ep.rank()], f64::min)
            });
            assert!(
                out.iter().all(|&v| v == expect),
                "n = {n}: {out:?} (expected {expect})"
            );
        }
    }

    #[test]
    fn allreduce_sum_matches_serial() {
        let n = 6;
        let out = LocalCluster::run(n, move |ep| {
            ep.allreduce_f64(ep.rank() as f64 + 1.0, |a, b| a + b)
        });
        assert!(out.iter().all(|&v| (v - 21.0).abs() < 1e-12), "{out:?}");
    }

    /// Regression for the untagged-`recv()` bug: a halo packet already
    /// sitting in the root's channel when the collective starts must land in
    /// the unexpected queue, not be combined into the reduction.
    #[test]
    fn allreduce_ignores_interleaved_point_to_point_traffic() {
        for n in [2usize, 4] {
            let halo_tag = tags::halo(3, 1, 7);
            let out = LocalCluster::run(n, move |ep| {
                if ep.rank() == 1 {
                    // Poison value: if mis-consumed by min(), dt collapses.
                    ep.send(0, halo_tag, Bytes::copy_from_slice(&(-1e30f64).to_le_bytes()));
                    // Give the packet time to arrive before the collective.
                    std::thread::sleep(std::time::Duration::from_millis(20));
                }
                let dt = ep.allreduce_f64(1.0 + ep.rank() as f64, f64::min);
                let halo = (ep.rank() == 0)
                    .then(|| f64::from_le_bytes(ep.recv_matched(1, halo_tag).as_ref().try_into().unwrap()));
                (dt, halo)
            });
            for (r, &(dt, halo)) in out.iter().enumerate() {
                assert_eq!(dt, 1.0, "rank {r} of {n}: halo payload leaked into allreduce");
                if r == 0 {
                    assert_eq!(halo, Some(-1e30));
                }
            }
        }
    }

    /// Back-to-back collectives stay matched via the sequence counter even
    /// when a fast subtree races ahead to the next collective.
    #[test]
    fn consecutive_allreduces_do_not_cross_match() {
        let n = 5;
        let out = LocalCluster::run(n, move |ep| {
            let a = ep.allreduce_f64(ep.rank() as f64, f64::max);
            let b = ep.allreduce_f64(-(ep.rank() as f64), f64::min);
            (a, b)
        });
        assert!(out.iter().all(|&(a, b)| a == 4.0 && b == -4.0), "{out:?}");
    }
}

#[cfg(test)]
mod matched_tests {
    use super::*;

    #[test]
    fn irecv_matches_out_of_order_arrivals() {
        let out = LocalCluster::run(2, |ep| {
            if ep.rank() == 0 {
                // Send in the opposite order of the receiver's posts.
                ep.send(1, 20, Bytes::from_static(b"second"));
                ep.send(1, 10, Bytes::from_static(b"first"));
                Vec::new()
            } else {
                let h10 = ep.irecv(0, 10);
                let h20 = ep.irecv(0, 20);
                vec![ep.wait(&h10), ep.wait(&h20)]
            }
        });
        assert_eq!(out[1][0].as_ref(), b"first");
        assert_eq!(out[1][1].as_ref(), b"second");
    }

    #[test]
    fn unexpected_packets_complete_later_posts_immediately() {
        let out = LocalCluster::run(2, |ep| {
            if ep.rank() == 0 {
                ep.send(1, 99, Bytes::from_static(b"early"));
                true
            } else {
                // Drain the channel into the unexpected queue first.
                while !ep.progress() {
                    std::thread::yield_now();
                }
                let h = ep.irecv(0, 99);
                assert!(h.is_ready(), "unexpected-queue match must be immediate");
                h.payload().unwrap().as_ref() == b"early"
            }
        });
        assert!(out[1]);
    }

    #[test]
    fn duplicate_tags_match_in_arrival_order() {
        let out = LocalCluster::run(2, |ep| {
            if ep.rank() == 0 {
                ep.send(1, 5, Bytes::from_static(b"a"));
                ep.send(1, 5, Bytes::from_static(b"b"));
                Vec::new()
            } else {
                let h1 = ep.irecv(0, 5);
                let h2 = ep.irecv(0, 5);
                vec![ep.wait(&h1), ep.wait(&h2)]
            }
        });
        // Posted order matches arrival order (per-sender FIFO).
        assert_eq!(out[1][0].as_ref(), b"a");
        assert_eq!(out[1][1].as_ref(), b"b");
    }

    #[test]
    fn tag_namespace_kinds_never_collide() {
        let h = tags::halo(1, 2, 3);
        let g = tags::gather(1, 2, 3);
        let c = tags::collective(1, 0);
        let o = tags::owned(tags::OWNED_GATHER, 1, 2, 3);
        assert_ne!(h, g);
        assert_ne!(h, c);
        assert_ne!(g, c);
        assert_ne!(o, h);
        assert_ne!(o, g);
        assert_ne!(o, c);
        assert_ne!(tags::halo(1, 2, 3), tags::halo(2, 2, 3));
        assert_ne!(tags::collective(1, 0), tags::collective(1, 1));
        assert_ne!(tags::collective(1, 0), tags::collective(2, 0));
    }

    /// The six owned sub-spaces are disjoint tag namespaces at identical
    /// (epoch, level, index) coordinates, carry the generation where the
    /// stale filter expects it, and report `KIND_OWNED`.
    #[test]
    fn owned_tag_spaces_are_disjoint_and_generation_stamped() {
        let spaces = [
            tags::OWNED_GATHER,
            tags::OWNED_COORDS,
            tags::OWNED_REDIST,
            tags::OWNED_CKPT,
            tags::OWNED_GATHER_OLD,
            tags::OWNED_REFLUX,
        ];
        for (a, &sa) in spaces.iter().enumerate() {
            for &sb in &spaces[a + 1..] {
                assert_ne!(tags::owned(sa, 5, 1, 9), tags::owned(sb, 5, 1, 9));
            }
        }
        let e = tags::epoch_with_generation(3, 0x123);
        let t = tags::owned(tags::OWNED_REDIST, e, 2, 7);
        assert_eq!(tags::kind_of(t), tags::KIND_OWNED);
        assert_eq!(tags::generation_of(t), 3);
        assert_ne!(
            tags::owned(tags::OWNED_GATHER, e, 2, 7),
            tags::owned(tags::OWNED_GATHER, e, 3, 7)
        );
    }

    #[test]
    fn generation_epochs_separate_tags_and_roundtrip() {
        let e0 = tags::epoch_with_generation(0, 7);
        let e1 = tags::epoch_with_generation(1, 7);
        assert_ne!(tags::halo(e0, 1, 3), tags::halo(e1, 1, 3));
        assert_eq!(tags::generation_of(tags::halo(e1, 1, 3)), 1);
        assert_eq!(tags::generation_of(tags::gather(e0, 1, 3)), 0);
        assert_eq!(tags::kind_of(tags::halo(e1, 1, 3)), tags::KIND_HALO);
        assert_eq!(tags::kind_of(tags::gather(e1, 1, 3)), tags::KIND_GATHER);
        assert_eq!(tags::kind_of(tags::collective(9, 1)), tags::KIND_COLL);
    }

    /// Satellite regression: flooding a rank with unmatched tags must fail
    /// fast with a typed overflow error, not grow the queue without bound.
    #[test]
    fn unmatched_flood_overflows_with_typed_error() {
        let out = LocalCluster::run(2, |ep| {
            if ep.rank() == 0 {
                for i in 0..64u64 {
                    ep.send(1, 1000 + i, Bytes::new());
                }
                // Wait for the victim's verdict before exiting.
                ep.recv_matched(1, 7);
                Ok(true)
            } else {
                ep.set_unexpected_cap(16);
                let err = loop {
                    match ep.try_progress() {
                        Ok(_) => std::thread::yield_now(),
                        Err(e) => break e,
                    }
                };
                ep.send(0, 7, Bytes::new());
                assert_eq!(err, CommError::QueueOverflow { cap: 16 });
                Err(err)
            }
        });
        assert_eq!(out[1], Err(CommError::QueueOverflow { cap: 16 }));
    }
}

#[cfg(test)]
mod chaos_tests {
    use super::*;
    use crate::chaos::{ChaosConfig, CrashPhase, CrashSpec};

    /// Exchanges a deterministic payload pattern pairwise and returns every
    /// rank's received bytes, for comparing faulty vs fault-free transports.
    fn pairwise_exchange(nranks: usize, cfg: Option<ChaosConfig>) -> Vec<Vec<u8>> {
        let body = |ep: RankEndpoint| {
            let mut got = Vec::new();
            for round in 0..20u64 {
                for dst in 0..ep.nranks() {
                    if dst != ep.rank() {
                        let msg: Vec<u8> =
                            (0..48).map(|i| (i as u64 ^ round ^ ep.rank() as u64) as u8).collect();
                        ep.send(dst, tags::halo(round, 0, ep.rank()), Bytes::from(msg));
                    }
                }
                for src in 0..ep.nranks() {
                    if src != ep.rank() {
                        let b = ep.recv_matched(src, tags::halo(round, 0, src));
                        got.extend_from_slice(b.as_ref());
                    }
                }
            }
            got
        };
        match cfg {
            None => LocalCluster::run(nranks, body),
            Some(c) => LocalCluster::run_with_chaos(nranks, c, body).0,
        }
    }

    /// With all fault probabilities zero, the framed transport is invisible:
    /// the exchange produces byte-identical results to the raw transport.
    #[test]
    fn zero_fault_chaos_transport_is_invisible() {
        let clean = pairwise_exchange(3, None);
        let framed = pairwise_exchange(3, Some(ChaosConfig::default()));
        assert_eq!(clean, framed);
    }

    /// Drop + duplicate + corrupt + delay faults are all repaired by the
    /// transport: payloads arrive intact and in order, and the stats prove
    /// faults were actually injected and repaired.
    #[test]
    fn injected_faults_are_detected_and_repaired() {
        let clean = pairwise_exchange(3, None);
        let cfg = ChaosConfig {
            seed: 0xFA11,
            drop_p: 0.08,
            duplicate_p: 0.08,
            corrupt_p: 0.08,
            delay_p: 0.08,
            delay_ms: 1,
            ..ChaosConfig::default()
        };
        let body = |ep: RankEndpoint| {
            let mut got = Vec::new();
            for round in 0..20u64 {
                for dst in 0..ep.nranks() {
                    if dst != ep.rank() {
                        let msg: Vec<u8> =
                            (0..48).map(|i| (i as u64 ^ round ^ ep.rank() as u64) as u8).collect();
                        ep.send(dst, tags::halo(round, 0, ep.rank()), Bytes::from(msg));
                    }
                }
                for src in 0..ep.nranks() {
                    if src != ep.rank() {
                        let b = ep.recv_matched(src, tags::halo(round, 0, src));
                        got.extend_from_slice(b.as_ref());
                    }
                }
            }
            got
        };
        let (faulty, ch) = LocalCluster::run_with_chaos(3, cfg, body);
        assert_eq!(clean, faulty, "transport repair must be exact");
        assert!(ch.stats.injected() > 0, "plan injected no faults at these rates");
        let [drops, dups, corrupts, delays, retransmits, rejects, suppressed, _] =
            ch.stats.snapshot();
        assert!(drops > 0 && dups > 0 && corrupts > 0 && delays > 0);
        assert!(retransmits > 0, "drops require retransmit repair");
        assert!(rejects >= corrupts, "every corruption must be CRC-rejected");
        assert!(suppressed >= dups, "every duplicate must be suppressed");
    }

    /// A dead group member turns a blocked wait into `RankDead` instead of
    /// a hang, and group collectives route around the hole (including a
    /// dead physical rank 0: logical rank 0 becomes the tree root).
    #[test]
    fn dead_member_unblocks_waits_and_group_collectives_work() {
        let cfg = ChaosConfig::default();
        let (out, _ch) = LocalCluster::run_with_chaos(4, cfg, |ep| {
            let rank = ep.rank();
            if rank == 0 {
                // "Crash" immediately: mark dead and return.
                ep.chaos().unwrap().mark_dead(0);
                return (None, 0.0);
            }
            // Survivors: first observe the death via a wait on rank 0.
            let full = GroupEndpoint::full(&ep);
            let err = full
                .recv_matched(0, tags::halo(0, 0, 0))
                .expect_err("wait on a dead rank must fail");
            assert_eq!(err, CommError::RankDead { rank: 0 });
            // Re-form the group without the dead rank and reduce over it.
            let survivors = CommGroup::full(4).without(&[0]);
            let gep = GroupEndpoint::new(&ep, survivors, 1);
            let sum = gep
                .allreduce_f64(ep.rank() as f64, |a, b| a + b)
                .expect("surviving collective");
            (Some(err), sum)
        });
        for (r, (err, sum)) in out.iter().enumerate().skip(1) {
            assert_eq!(*err, Some(CommError::RankDead { rank: 0 }), "rank {r}");
            assert_eq!(*sum, 6.0, "rank {r}: survivor sum over {{1,2,3}}");
        }
    }

    /// Stale-generation halo packets (pre-rollback stragglers) are filtered
    /// at decode time; same-tag traffic at the new generation still flows.
    #[test]
    fn stale_generation_packets_are_discarded() {
        let cfg = ChaosConfig::default();
        let (out, ch) = LocalCluster::run_with_chaos(2, cfg, |ep| {
            if ep.rank() == 0 {
                // Old-generation packet, then the new-generation one.
                ep.send(1, tags::halo(tags::epoch_with_generation(0, 3), 0, 9), Bytes::from_static(b"old"));
                ep.send(1, tags::halo(tags::epoch_with_generation(1, 3), 0, 9), Bytes::from_static(b"new"));
                Bytes::new()
            } else {
                let gep = GroupEndpoint::new(&ep, CommGroup::full(2), 1);
                gep.recv_matched(0, tags::halo(tags::epoch_with_generation(1, 3), 0, 9))
                    .expect("new-generation packet must arrive")
            }
        });
        assert_eq!(out[1].as_ref(), b"new");
        assert!(
            ch.stats.stale_discards.load(std::sync::atomic::Ordering::Relaxed) >= 1,
            "the old-generation packet must be discarded"
        );
    }

    #[test]
    fn crash_spec_lookup_matches_rank_step_phase() {
        let cfg = ChaosConfig {
            crashes: vec![CrashSpec {
                rank: 2,
                step: 5,
                phase: CrashPhase::AfterDt,
            }],
            ..ChaosConfig::default()
        };
        assert!(cfg.crash_at(2, 5, CrashPhase::AfterDt).is_some());
        assert!(cfg.crash_at(2, 5, CrashPhase::StepStart).is_none());
        assert!(cfg.crash_at(2, 4, CrashPhase::AfterDt).is_none());
        assert!(cfg.crash_at(1, 5, CrashPhase::AfterDt).is_none());
    }

    #[test]
    fn seq_tracker_suppresses_replays_and_compacts() {
        let mut t = SeqTracker::default();
        assert!(t.insert(0));
        assert!(t.insert(2));
        assert!(!t.insert(0), "replay of contiguous prefix");
        assert!(!t.insert(2), "replay of sparse entry");
        assert!(t.insert(1));
        assert_eq!(t.contig, 3, "prefix must compact through the gap fill");
        assert!(!t.insert(1));
        assert!(t.sparse.is_empty());
    }
}
