//! A small dependency-tracking task executor.
//!
//! [`crate::pool`] provides flat fork-join patch loops — every phase of an RK
//! stage (halo execution, boundary fill, kernel sweep, update) runs as its
//! own loop with a hard barrier between phases. This module removes the
//! barrier: work is submitted as *tasks* with explicit predecessor handles,
//! and a pool of workers drains whatever is ready. The fab layer builds one
//! graph per RK stage from its cached communication plans, so a patch's
//! boundary-band sweep waits only for *its own* halo tasks while interior
//! sweeps of every patch start immediately (the comm/compute overlap of
//! task-based AMR runtimes, arXiv:2508.05020, and STREAmS-2,
//! arXiv:2304.05494).
//!
//! Design points:
//!
//! * **Acyclic by construction.** A task's dependencies are handles returned
//!   by earlier `add_task` calls, so a dependency's index is always smaller
//!   than the dependent's — no cycle detection is needed at run time, and
//!   insertion order is a valid topological order.
//! * **Epoch-checked handles.** Every graph draws a process-unique id;
//!   handles remember it and `add_task` panics on a handle minted by a
//!   different graph (the `fabcheck`-style cheap assertion that catches
//!   accidentally-reused handles across stages).
//! * **Panic propagation.** A panicking task aborts the drain; the first
//!   payload is re-thrown from [`TaskGraph::run`] on the caller's thread,
//!   matching the fork-join loops' behaviour under `std::thread::scope`.
//! * **Serial fallback.** With `threads <= 1` the graph runs inline in
//!   insertion order — deterministic, allocation-light, and exactly what the
//!   small test problems want.

use crate::cluster::CommError;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// A recoverable failure of one distributed RK-stage execution — what
/// [`TaskGraph::try_run_with_progress`] returns instead of hanging peers or
/// unwinding through the stepping loop. The chaos stepping loop answers any
/// of these with checkpoint rollback (DESIGN.md §4g).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StageError {
    /// The progress pump detected a communication fault (dead rank,
    /// starved receive, queue overflow).
    Comm(CommError),
    /// A kernel task panicked (e.g. a `fabcheck` NaN trap); the panic was
    /// contained and converted instead of unwinding past blocked peers.
    TaskPanic {
        /// The panic payload, rendered to a string.
        message: String,
    },
    /// The chaos plan scheduled this rank to crash here (fail-stop).
    CrashInjected,
}

impl std::fmt::Display for StageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StageError::Comm(e) => write!(f, "communication fault: {e}"),
            StageError::TaskPanic { message } => write!(f, "kernel task panicked: {message}"),
            StageError::CrashInjected => write!(f, "injected rank crash"),
        }
    }
}

impl std::error::Error for StageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StageError::Comm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CommError> for StageError {
    fn from(e: CommError) -> Self {
        StageError::Comm(e)
    }
}

/// How one graph execution failed, internally: a task panic keeps its
/// original payload (so the infallible runner can rethrow it unchanged),
/// while a pump failure carries the typed stage error.
enum Failure {
    Panic(Box<dyn std::any::Any + Send>),
    Pump(StageError),
}

/// Renders a panic payload the way `std::thread` would.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Mints process-unique graph ids (the handle "epoch").
static NEXT_GRAPH_ID: AtomicU64 = AtomicU64::new(1);

/// An opaque reference to a task previously added to a [`TaskGraph`], used
/// to declare dependencies of later tasks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TaskHandle {
    graph: u64,
    idx: usize,
}

/// A submitted task's boxed closure.
type Job<'env> = Box<dyn FnOnce() + Send + 'env>;

/// An event task's readiness predicate (e.g. "has this posted receive
/// completed?"). Polled by the runner, never by workers.
type EventPred<'env> = Box<dyn FnMut() -> bool + Send + 'env>;

/// What a task does when it becomes ready.
enum Work<'env> {
    /// An ordinary closure, executed once by a worker.
    Job(Job<'env>),
    /// An external event: *finished* (releasing its dependents) when the
    /// predicate first returns true. Costs no worker time.
    Event(EventPred<'env>),
}

/// One submitted task: its work and deduplicated predecessor indices.
struct Task<'env> {
    work: Work<'env>,
    deps: Vec<usize>,
}

/// A dependency graph of `FnOnce` tasks, executed by [`TaskGraph::run`].
///
/// The `'env` lifetime lets tasks borrow from the caller's stack, as with
/// scoped threads: the graph cannot outlive the data its tasks capture.
pub struct TaskGraph<'env> {
    id: u64,
    tasks: Vec<Task<'env>>,
    /// Indices of event tasks (subset of `tasks`).
    events: Vec<usize>,
}

impl<'env> TaskGraph<'env> {
    /// Creates an empty graph with a fresh id.
    pub fn new() -> Self {
        TaskGraph {
            id: NEXT_GRAPH_ID.fetch_add(1, Ordering::Relaxed),
            tasks: Vec::new(),
            events: Vec::new(),
        }
    }

    /// Number of tasks added so far.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// `true` when no task has been added.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Adds a task that may start only after every task in `deps` has
    /// finished, and returns its handle.
    ///
    /// # Panics
    ///
    /// Panics if any handle in `deps` was created by a different graph.
    pub fn add_task<F>(&mut self, deps: &[TaskHandle], f: F) -> TaskHandle
    where
        F: FnOnce() + Send + 'env,
    {
        let mut dep_idx = Vec::with_capacity(deps.len());
        for d in deps {
            assert_eq!(
                d.graph, self.id,
                "TaskHandle belongs to a different TaskGraph (stale handle?)"
            );
            dep_idx.push(d.idx);
        }
        dep_idx.sort_unstable();
        dep_idx.dedup();
        let idx = self.tasks.len();
        self.tasks.push(Task {
            work: Work::Job(Box::new(f)),
            deps: dep_idx,
        });
        TaskHandle {
            graph: self.id,
            idx,
        }
    }

    /// Adds an *event* task — a dependency stand-in for an external
    /// completion (a posted nonblocking receive, an accelerator fence) —
    /// and returns its handle for use as a predecessor of later tasks.
    ///
    /// The event finishes when `ready` first returns true; the runner polls
    /// it between invocations of the progress pump passed to
    /// [`TaskGraph::run_with_progress`] (which is what makes the condition
    /// advance — e.g. `RankEndpoint::progress` matching arrived packets).
    /// Events consume no worker: workers keep draining compute tasks while
    /// the runner waits for the condition.
    pub fn add_event<F>(&mut self, ready: F) -> TaskHandle
    where
        F: FnMut() -> bool + Send + 'env,
    {
        let idx = self.tasks.len();
        self.events.push(idx);
        self.tasks.push(Task {
            work: Work::Event(Box::new(ready)),
            deps: Vec::new(),
        });
        TaskHandle {
            graph: self.id,
            idx,
        }
    }

    /// Executes every task, honouring dependencies, on up to `threads`
    /// workers. Returns when all tasks have finished; re-throws the first
    /// task panic after the workers have stopped.
    ///
    /// # Panics
    ///
    /// Panics if the graph contains event tasks — those only make sense
    /// with a progress pump, so use [`TaskGraph::run_with_progress`].
    pub fn run(self, threads: usize) {
        assert!(
            self.events.is_empty(),
            "graphs with event tasks need run_with_progress (a progress pump)"
        );
        self.run_with_progress(threads, &mut || {});
    }

    /// Executes every task, honouring dependencies, on up to `threads`
    /// workers, with `progress` pumped between event polls — the runner for
    /// graphs whose [`TaskGraph::add_event`] gates depend on external state
    /// (e.g. `RankEndpoint::progress` matching arrived halo packets).
    ///
    /// With `threads <= 1` tasks run inline in insertion order, spinning
    /// `progress` before a blocked event; the caller must therefore insert
    /// every task an event's completion transitively requires on *this* rank
    /// (its own pack/send jobs) before the event. On the threaded path the
    /// calling thread becomes the coordinator: it pumps `progress`, polls
    /// event predicates, and releases dependents the moment an event fires,
    /// while workers keep draining ready compute tasks — no worker ever
    /// blocks on communication.
    pub fn run_with_progress(self, threads: usize, progress: &mut (dyn FnMut() + '_)) {
        match self.run_inner(threads, &mut || {
            progress();
            Ok(())
        }) {
            Ok(()) => {}
            Err(Failure::Panic(p)) => resume_unwind(p),
            Err(Failure::Pump(_)) => unreachable!("infallible pump cannot fail"),
        }
    }

    /// Fault-tolerant runner: like [`TaskGraph::run_with_progress`], but the
    /// pump may fail (a detected communication fault) and task panics are
    /// contained — both are returned as a typed [`StageError`] instead of
    /// hanging peer ranks or unwinding through the stepping loop. On error,
    /// workers stop after their current task and unstarted tasks are
    /// dropped.
    pub fn try_run_with_progress(
        self,
        threads: usize,
        progress: &mut (dyn FnMut() -> Result<(), StageError> + '_),
    ) -> Result<(), StageError> {
        match self.run_inner(threads, progress) {
            Ok(()) => Ok(()),
            Err(Failure::Panic(p)) => Err(StageError::TaskPanic {
                message: panic_message(p.as_ref()),
            }),
            Err(Failure::Pump(e)) => Err(e),
        }
    }

    /// Shared executor behind both runners. Panics are always caught and
    /// returned with their original payload, so the infallible wrapper can
    /// rethrow them unchanged.
    fn run_inner(
        self,
        threads: usize,
        progress: &mut (dyn FnMut() -> Result<(), StageError> + '_),
    ) -> Result<(), Failure> {
        let n = self.tasks.len();
        if n == 0 {
            return Ok(());
        }
        if threads <= 1 || n == 1 {
            // Insertion order is a topological order (deps point backwards).
            // A failure drops the remaining tasks — the fault-tolerant
            // caller rolls the whole stage back anyway.
            for t in self.tasks {
                match t.work {
                    Work::Job(run) => {
                        catch_unwind(AssertUnwindSafe(run)).map_err(Failure::Panic)?;
                    }
                    Work::Event(mut ready) => {
                        while !ready() {
                            progress().map_err(Failure::Pump)?;
                            std::thread::yield_now();
                        }
                    }
                }
            }
            return Ok(());
        }

        // Successor lists and atomic in-degrees drive readiness; a mutexed
        // deque + condvar is the ready queue (the vendored crossbeam stub has
        // no lock-free deque, and patch-sized tasks amortize the lock).
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut indeg = Vec::with_capacity(n);
        for (i, t) in self.tasks.iter().enumerate() {
            indeg.push(AtomicUsize::new(t.deps.len()));
            for &d in &t.deps {
                succs[d].push(i);
            }
        }
        // Split the tasks: compute jobs go to the worker pool, event
        // predicates stay with the coordinator (this thread).
        let mut jobs: Vec<Mutex<Option<Job<'env>>>> = Vec::with_capacity(n);
        let mut pending_events: Vec<(usize, EventPred<'env>)> = Vec::new();
        for (i, t) in self.tasks.into_iter().enumerate() {
            match t.work {
                Work::Job(run) => jobs.push(Mutex::new(Some(run))),
                Work::Event(ready) => {
                    jobs.push(Mutex::new(None));
                    pending_events.push((i, ready));
                }
            }
        }
        let is_event: Vec<bool> = {
            let mut v = vec![false; n];
            for &(i, _) in &pending_events {
                v[i] = true;
            }
            v
        };
        let ready: Mutex<VecDeque<usize>> = Mutex::new(
            (0..n)
                .filter(|&i| !is_event[i] && indeg[i].load(Ordering::Relaxed) == 0)
                .collect(),
        );
        let cv = Condvar::new();
        let finished = AtomicUsize::new(0);
        let aborted = AtomicBool::new(false);
        let panic_slot: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
        let mut pump_err: Option<StageError> = None;

        // Releases task `i`'s dependents and counts it finished (shared by
        // worker job completion and coordinator event completion).
        let finish = |i: usize| {
            for &sx in &succs[i] {
                if indeg[sx].fetch_sub(1, Ordering::AcqRel) == 1 {
                    ready.lock().expect("task queue poisoned").push_back(sx);
                    cv.notify_one();
                }
            }
            if finished.fetch_add(1, Ordering::AcqRel) + 1 == n {
                // Wake idle workers so they observe completion.
                let _q = ready.lock().expect("task queue poisoned");
                cv.notify_all();
            }
        };

        let nworkers = threads.min(n);
        crossbeam::thread::scope(|s| {
            for _ in 0..nworkers {
                s.spawn(|_| loop {
                    let i = {
                        let mut q = ready.lock().expect("task queue poisoned");
                        loop {
                            if aborted.load(Ordering::Acquire)
                                || finished.load(Ordering::Acquire) == n
                            {
                                return;
                            }
                            if let Some(i) = q.pop_front() {
                                break i;
                            }
                            q = cv.wait(q).expect("task queue poisoned");
                        }
                    };
                    let job = jobs[i]
                        .lock()
                        .expect("job slot poisoned")
                        .take()
                        .expect("task scheduled twice");
                    match catch_unwind(AssertUnwindSafe(job)) {
                        Ok(()) => finish(i),
                        Err(payload) => {
                            let mut slot = panic_slot.lock().expect("panic slot poisoned");
                            if slot.is_none() {
                                *slot = Some(payload);
                            }
                            drop(slot);
                            aborted.store(true, Ordering::Release);
                            let _q = ready.lock().expect("task queue poisoned");
                            cv.notify_all();
                            return;
                        }
                    }
                });
            }

            // Coordinator loop: pump progress, fire completed events, nap
            // briefly when nothing moved (events wake only through the pump,
            // so a condvar wait would deadlock against external arrivals).
            while !aborted.load(Ordering::Acquire) && finished.load(Ordering::Acquire) < n {
                if pending_events.is_empty() {
                    // Nothing left to poll; park until the workers finish.
                    let q = ready.lock().expect("task queue poisoned");
                    if finished.load(Ordering::Acquire) < n && !aborted.load(Ordering::Acquire) {
                        let _ = cv
                            .wait_timeout(q, std::time::Duration::from_millis(1))
                            .expect("task queue poisoned");
                    }
                    continue;
                }
                if let Err(e) = progress() {
                    // A detected comm fault: abort the drain and release the
                    // workers (they finish their current task and stop).
                    pump_err = Some(e);
                    aborted.store(true, Ordering::Release);
                    let _q = ready.lock().expect("task queue poisoned");
                    cv.notify_all();
                    break;
                }
                let mut fired = false;
                pending_events.retain_mut(|(i, ready_pred)| {
                    if ready_pred() {
                        finish(*i);
                        fired = true;
                        false
                    } else {
                        true
                    }
                });
                if !fired {
                    std::thread::sleep(std::time::Duration::from_micros(50));
                }
            }
        })
        .expect("task graph scope failed");

        if let Some(p) = panic_slot.into_inner().expect("panic slot poisoned") {
            return Err(Failure::Panic(p));
        }
        if let Some(e) = pump_err {
            return Err(Failure::Pump(e));
        }
        Ok(())
    }
}

impl Default for TaskGraph<'_> {
    fn default() -> Self {
        TaskGraph::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::atomic::AtomicU64 as TestAtomicU64;

    /// Runs `deps[i] -> i` graphs and records the order tasks executed in.
    fn record_order(deps: &[Vec<usize>], threads: usize) -> Vec<usize> {
        let order = Mutex::new(Vec::new());
        let mut g = TaskGraph::new();
        let mut handles: Vec<TaskHandle> = Vec::new();
        for (i, d) in deps.iter().enumerate() {
            let hd: Vec<TaskHandle> = d.iter().map(|&j| handles[j]).collect();
            let order = &order;
            handles.push(g.add_task(&hd, move || {
                order.lock().unwrap().push(i);
            }));
        }
        g.run(threads);
        order.into_inner().unwrap()
    }

    /// Asserts `order` is a permutation of `0..deps.len()` that respects
    /// every dependency.
    fn assert_topological(deps: &[Vec<usize>], order: &[usize]) {
        assert_eq!(order.len(), deps.len(), "not every task ran");
        let mut pos = vec![usize::MAX; deps.len()];
        for (p, &t) in order.iter().enumerate() {
            assert_eq!(pos[t], usize::MAX, "task {t} ran twice");
            pos[t] = p;
        }
        for (i, d) in deps.iter().enumerate() {
            for &j in d {
                assert!(
                    pos[j] < pos[i],
                    "task {i} ran before its dependency {j}: {order:?}"
                );
            }
        }
    }

    #[test]
    fn chain_executes_in_dependency_order() {
        let deps: Vec<Vec<usize>> = (0..64).map(|i| if i == 0 { vec![] } else { vec![i - 1] }).collect();
        for threads in [1, 4] {
            let order = record_order(&deps, threads);
            assert_eq!(order, (0..64).collect::<Vec<_>>());
        }
    }

    #[test]
    fn diamond_dependencies_fence_the_join() {
        // 0 -> {1, 2} -> 3
        let deps = vec![vec![], vec![0], vec![0], vec![1, 2]];
        for threads in [1, 2, 4] {
            let order = record_order(&deps, threads);
            assert_topological(&deps, &order);
            assert_eq!(order[0], 0);
            assert_eq!(order[3], 3);
        }
    }

    #[test]
    fn independent_tasks_all_run() {
        let count = TestAtomicU64::new(0);
        let mut g = TaskGraph::new();
        for _ in 0..100 {
            let count = &count;
            g.add_task(&[], move || {
                count.fetch_add(1, Ordering::Relaxed);
            });
        }
        g.run(8);
        assert_eq!(count.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn duplicate_deps_are_deduplicated() {
        let mut g = TaskGraph::new();
        let a = g.add_task(&[], || {});
        let h = g.add_task(&[a, a, a], || {});
        assert_eq!(h, h);
        assert_eq!(g.len(), 2);
        g.run(2);
    }

    #[test]
    fn empty_graph_is_a_noop() {
        let g = TaskGraph::new();
        assert!(g.is_empty());
        g.run(4);
    }

    #[test]
    fn panic_in_task_propagates_to_caller() {
        for threads in [1, 4] {
            let ran_dependent = TestAtomicU64::new(0);
            let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                let mut g = TaskGraph::new();
                let bad = g.add_task(&[], || panic!("task exploded"));
                let ran = &ran_dependent;
                g.add_task(&[bad], move || {
                    ran.fetch_add(1, Ordering::Relaxed);
                });
                g.run(threads);
            }));
            let payload = result.expect_err("panic must propagate");
            let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
            assert_eq!(msg, "task exploded");
            assert_eq!(
                ran_dependent.load(Ordering::Relaxed),
                0,
                "dependents of a panicked task must not run"
            );
        }
    }

    #[test]
    #[should_panic(expected = "different TaskGraph")]
    fn cross_graph_handle_is_rejected() {
        let mut a = TaskGraph::new();
        let ha = a.add_task(&[], || {});
        let mut b = TaskGraph::new();
        b.add_task(&[ha], || {});
    }

    #[test]
    fn event_gates_release_dependents_when_the_pump_fires() {
        for threads in [1usize, 4] {
            // The "packet" arrives on the third progress pump.
            let pumps = TestAtomicU64::new(0);
            let arrived = AtomicBool::new(false);
            let order = Mutex::new(Vec::new());
            let mut g = TaskGraph::new();
            let ev = g.add_event(|| arrived.load(Ordering::Acquire));
            let order_ref = &order;
            g.add_task(&[ev], move || order_ref.lock().unwrap().push("boundary"));
            g.add_task(&[], move || order_ref.lock().unwrap().push("interior"));
            g.run_with_progress(threads, &mut || {
                if pumps.fetch_add(1, Ordering::Relaxed) + 1 >= 3 {
                    arrived.store(true, Ordering::Release);
                }
            });
            let order = order.into_inner().unwrap();
            assert_eq!(order.len(), 2, "threads={threads}: {order:?}");
            assert!(pumps.load(Ordering::Relaxed) >= 3);
            assert!(order.contains(&"boundary") && order.contains(&"interior"));
        }
    }

    #[test]
    fn immediately_ready_events_cost_nothing() {
        for threads in [1usize, 2] {
            let ran = TestAtomicU64::new(0);
            let mut g = TaskGraph::new();
            let ev = g.add_event(|| true);
            let ran_ref = &ran;
            g.add_task(&[ev], move || {
                ran_ref.fetch_add(1, Ordering::Relaxed);
            });
            g.run_with_progress(threads, &mut || {});
            assert_eq!(ran.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn compute_tasks_drain_while_an_event_is_pending() {
        // 32 independent compute tasks plus one event that only fires after
        // every compute task ran: if workers blocked on the event, this
        // would deadlock.
        let done = TestAtomicU64::new(0);
        let mut g = TaskGraph::new();
        for _ in 0..32 {
            let done = &done;
            g.add_task(&[], move || {
                done.fetch_add(1, Ordering::Relaxed);
            });
        }
        let done_ref = &done;
        let ev = g.add_event(move || done_ref.load(Ordering::Relaxed) == 32);
        let done_ref = &done;
        g.add_task(&[ev], move || {
            done_ref.fetch_add(100, Ordering::Relaxed);
        });
        g.run_with_progress(4, &mut || {});
        assert_eq!(done.load(Ordering::Relaxed), 132);
    }

    #[test]
    #[should_panic(expected = "run_with_progress")]
    fn plain_run_rejects_event_graphs() {
        let mut g = TaskGraph::new();
        g.add_event(|| true);
        g.run(2);
    }

    #[test]
    fn try_run_converts_task_panics_to_stage_errors() {
        for threads in [1usize, 4] {
            let ran_dependent = TestAtomicU64::new(0);
            let mut g = TaskGraph::new();
            let bad = g.add_task(&[], || panic!("NaN detected in stage kernel"));
            let ran = &ran_dependent;
            g.add_task(&[bad], move || {
                ran.fetch_add(1, Ordering::Relaxed);
            });
            let err = g
                .try_run_with_progress(threads, &mut || Ok(()))
                .expect_err("panic must become a stage error");
            assert_eq!(
                err,
                StageError::TaskPanic {
                    message: "NaN detected in stage kernel".into()
                },
                "threads={threads}"
            );
            assert_eq!(ran_dependent.load(Ordering::Relaxed), 0);
        }
    }

    #[test]
    fn try_run_surfaces_pump_faults_and_aborts() {
        for threads in [1usize, 4] {
            let fault = StageError::Comm(CommError::RankDead { rank: 2 });
            let released = TestAtomicU64::new(0);
            let mut g = TaskGraph::new();
            // An event that never fires: only the pump fault can end the run.
            let ev = g.add_event(|| false);
            let released_ref = &released;
            g.add_task(&[ev], move || {
                released_ref.fetch_add(1, Ordering::Relaxed);
            });
            let fault_clone = fault.clone();
            let err = g
                .try_run_with_progress(threads, &mut || Err(fault_clone.clone()))
                .expect_err("pump fault must end the run");
            assert_eq!(err, fault, "threads={threads}");
            assert_eq!(
                released.load(Ordering::Relaxed),
                0,
                "tasks gated on the dead event must not run"
            );
        }
    }

    #[test]
    fn try_run_completes_clean_graphs() {
        let done = TestAtomicU64::new(0);
        let mut g = TaskGraph::new();
        for _ in 0..16 {
            let done = &done;
            g.add_task(&[], move || {
                done.fetch_add(1, Ordering::Relaxed);
            });
        }
        g.try_run_with_progress(4, &mut || Ok(())).unwrap();
        assert_eq!(done.load(Ordering::Relaxed), 16);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Random DAGs (deps always point to earlier tasks) execute in
        /// topological order on both the serial and the threaded path.
        #[test]
        fn random_dags_execute_topologically(
            raw in prop::collection::vec(prop::collection::vec(any::<usize>(), 0..4), 1..40),
            threads in prop::sample::select(vec![1usize, 2, 4, 8]),
        ) {
            let deps: Vec<Vec<usize>> = raw
                .iter()
                .enumerate()
                .map(|(i, d)| {
                    if i == 0 {
                        Vec::new()
                    } else {
                        d.iter().map(|&r| r % i).collect()
                    }
                })
                .collect();
            let order = record_order(&deps, threads);
            assert_topological(&deps, &order);
        }
    }
}
