//! A small dependency-tracking task executor.
//!
//! [`crate::pool`] provides flat fork-join patch loops — every phase of an RK
//! stage (halo execution, boundary fill, kernel sweep, update) runs as its
//! own loop with a hard barrier between phases. This module removes the
//! barrier: work is submitted as *tasks* with explicit predecessor handles,
//! and a pool of workers drains whatever is ready. The fab layer builds one
//! graph per RK stage from its cached communication plans, so a patch's
//! boundary-band sweep waits only for *its own* halo tasks while interior
//! sweeps of every patch start immediately (the comm/compute overlap of
//! task-based AMR runtimes, arXiv:2508.05020, and STREAmS-2,
//! arXiv:2304.05494).
//!
//! Design points:
//!
//! * **Acyclic by construction.** A task's dependencies are handles returned
//!   by earlier `add_task` calls, so a dependency's index is always smaller
//!   than the dependent's — no cycle detection is needed at run time, and
//!   insertion order is a valid topological order.
//! * **Epoch-checked handles.** Every graph draws a process-unique id;
//!   handles remember it and `add_task` panics on a handle minted by a
//!   different graph (the `fabcheck`-style cheap assertion that catches
//!   accidentally-reused handles across stages).
//! * **Panic propagation.** A panicking task aborts the drain; the first
//!   payload is re-thrown from [`TaskGraph::run`] on the caller's thread,
//!   matching the fork-join loops' behaviour under `std::thread::scope`.
//! * **Serial fallback.** With `threads <= 1` the graph runs inline in
//!   insertion order — deterministic, allocation-light, and exactly what the
//!   small test problems want.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Mints process-unique graph ids (the handle "epoch").
static NEXT_GRAPH_ID: AtomicU64 = AtomicU64::new(1);

/// An opaque reference to a task previously added to a [`TaskGraph`], used
/// to declare dependencies of later tasks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TaskHandle {
    graph: u64,
    idx: usize,
}

/// A submitted task's boxed closure.
type Job<'env> = Box<dyn FnOnce() + Send + 'env>;

/// One submitted task: its closure and deduplicated predecessor indices.
struct Task<'env> {
    run: Job<'env>,
    deps: Vec<usize>,
}

/// A dependency graph of `FnOnce` tasks, executed by [`TaskGraph::run`].
///
/// The `'env` lifetime lets tasks borrow from the caller's stack, as with
/// scoped threads: the graph cannot outlive the data its tasks capture.
pub struct TaskGraph<'env> {
    id: u64,
    tasks: Vec<Task<'env>>,
}

impl<'env> TaskGraph<'env> {
    /// Creates an empty graph with a fresh id.
    pub fn new() -> Self {
        TaskGraph {
            id: NEXT_GRAPH_ID.fetch_add(1, Ordering::Relaxed),
            tasks: Vec::new(),
        }
    }

    /// Number of tasks added so far.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// `true` when no task has been added.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Adds a task that may start only after every task in `deps` has
    /// finished, and returns its handle.
    ///
    /// # Panics
    ///
    /// Panics if any handle in `deps` was created by a different graph.
    pub fn add_task<F>(&mut self, deps: &[TaskHandle], f: F) -> TaskHandle
    where
        F: FnOnce() + Send + 'env,
    {
        let mut dep_idx = Vec::with_capacity(deps.len());
        for d in deps {
            assert_eq!(
                d.graph, self.id,
                "TaskHandle belongs to a different TaskGraph (stale handle?)"
            );
            dep_idx.push(d.idx);
        }
        dep_idx.sort_unstable();
        dep_idx.dedup();
        let idx = self.tasks.len();
        self.tasks.push(Task {
            run: Box::new(f),
            deps: dep_idx,
        });
        TaskHandle {
            graph: self.id,
            idx,
        }
    }

    /// Executes every task, honouring dependencies, on up to `threads`
    /// workers. Returns when all tasks have finished; re-throws the first
    /// task panic after the workers have stopped.
    pub fn run(self, threads: usize) {
        let n = self.tasks.len();
        if n == 0 {
            return;
        }
        if threads <= 1 || n == 1 {
            // Insertion order is a topological order (deps point backwards),
            // and an unwinding closure propagates naturally.
            for t in self.tasks {
                (t.run)();
            }
            return;
        }

        // Successor lists and atomic in-degrees drive readiness; a mutexed
        // deque + condvar is the ready queue (the vendored crossbeam stub has
        // no lock-free deque, and patch-sized tasks amortize the lock).
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut indeg = Vec::with_capacity(n);
        for (i, t) in self.tasks.iter().enumerate() {
            indeg.push(AtomicUsize::new(t.deps.len()));
            for &d in &t.deps {
                succs[d].push(i);
            }
        }
        let jobs: Vec<Mutex<Option<Job<'env>>>> = self
            .tasks
            .into_iter()
            .map(|t| Mutex::new(Some(t.run)))
            .collect();
        let ready: Mutex<VecDeque<usize>> = Mutex::new(
            (0..n)
                .filter(|&i| indeg[i].load(Ordering::Relaxed) == 0)
                .collect(),
        );
        let cv = Condvar::new();
        let finished = AtomicUsize::new(0);
        let aborted = AtomicBool::new(false);
        let panic_slot: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);

        let nworkers = threads.min(n);
        crossbeam::thread::scope(|s| {
            for _ in 0..nworkers {
                s.spawn(|_| loop {
                    let i = {
                        let mut q = ready.lock().expect("task queue poisoned");
                        loop {
                            if aborted.load(Ordering::Acquire)
                                || finished.load(Ordering::Acquire) == n
                            {
                                return;
                            }
                            if let Some(i) = q.pop_front() {
                                break i;
                            }
                            q = cv.wait(q).expect("task queue poisoned");
                        }
                    };
                    let job = jobs[i]
                        .lock()
                        .expect("job slot poisoned")
                        .take()
                        .expect("task scheduled twice");
                    match catch_unwind(AssertUnwindSafe(job)) {
                        Ok(()) => {
                            for &sx in &succs[i] {
                                if indeg[sx].fetch_sub(1, Ordering::AcqRel) == 1 {
                                    ready.lock().expect("task queue poisoned").push_back(sx);
                                    cv.notify_one();
                                }
                            }
                            if finished.fetch_add(1, Ordering::AcqRel) + 1 == n {
                                // Wake idle workers so they observe completion.
                                let _q = ready.lock().expect("task queue poisoned");
                                cv.notify_all();
                            }
                        }
                        Err(payload) => {
                            let mut slot = panic_slot.lock().expect("panic slot poisoned");
                            if slot.is_none() {
                                *slot = Some(payload);
                            }
                            drop(slot);
                            aborted.store(true, Ordering::Release);
                            let _q = ready.lock().expect("task queue poisoned");
                            cv.notify_all();
                            return;
                        }
                    }
                });
            }
        })
        .expect("task graph scope failed");

        if let Some(p) = panic_slot.into_inner().expect("panic slot poisoned") {
            resume_unwind(p);
        }
    }
}

impl Default for TaskGraph<'_> {
    fn default() -> Self {
        TaskGraph::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::atomic::AtomicU64 as TestAtomicU64;

    /// Runs `deps[i] -> i` graphs and records the order tasks executed in.
    fn record_order(deps: &[Vec<usize>], threads: usize) -> Vec<usize> {
        let order = Mutex::new(Vec::new());
        let mut g = TaskGraph::new();
        let mut handles: Vec<TaskHandle> = Vec::new();
        for (i, d) in deps.iter().enumerate() {
            let hd: Vec<TaskHandle> = d.iter().map(|&j| handles[j]).collect();
            let order = &order;
            handles.push(g.add_task(&hd, move || {
                order.lock().unwrap().push(i);
            }));
        }
        g.run(threads);
        order.into_inner().unwrap()
    }

    /// Asserts `order` is a permutation of `0..deps.len()` that respects
    /// every dependency.
    fn assert_topological(deps: &[Vec<usize>], order: &[usize]) {
        assert_eq!(order.len(), deps.len(), "not every task ran");
        let mut pos = vec![usize::MAX; deps.len()];
        for (p, &t) in order.iter().enumerate() {
            assert_eq!(pos[t], usize::MAX, "task {t} ran twice");
            pos[t] = p;
        }
        for (i, d) in deps.iter().enumerate() {
            for &j in d {
                assert!(
                    pos[j] < pos[i],
                    "task {i} ran before its dependency {j}: {order:?}"
                );
            }
        }
    }

    #[test]
    fn chain_executes_in_dependency_order() {
        let deps: Vec<Vec<usize>> = (0..64).map(|i| if i == 0 { vec![] } else { vec![i - 1] }).collect();
        for threads in [1, 4] {
            let order = record_order(&deps, threads);
            assert_eq!(order, (0..64).collect::<Vec<_>>());
        }
    }

    #[test]
    fn diamond_dependencies_fence_the_join() {
        // 0 -> {1, 2} -> 3
        let deps = vec![vec![], vec![0], vec![0], vec![1, 2]];
        for threads in [1, 2, 4] {
            let order = record_order(&deps, threads);
            assert_topological(&deps, &order);
            assert_eq!(order[0], 0);
            assert_eq!(order[3], 3);
        }
    }

    #[test]
    fn independent_tasks_all_run() {
        let count = TestAtomicU64::new(0);
        let mut g = TaskGraph::new();
        for _ in 0..100 {
            let count = &count;
            g.add_task(&[], move || {
                count.fetch_add(1, Ordering::Relaxed);
            });
        }
        g.run(8);
        assert_eq!(count.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn duplicate_deps_are_deduplicated() {
        let mut g = TaskGraph::new();
        let a = g.add_task(&[], || {});
        let h = g.add_task(&[a, a, a], || {});
        assert_eq!(h, h);
        assert_eq!(g.len(), 2);
        g.run(2);
    }

    #[test]
    fn empty_graph_is_a_noop() {
        let g = TaskGraph::new();
        assert!(g.is_empty());
        g.run(4);
    }

    #[test]
    fn panic_in_task_propagates_to_caller() {
        for threads in [1, 4] {
            let ran_dependent = TestAtomicU64::new(0);
            let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                let mut g = TaskGraph::new();
                let bad = g.add_task(&[], || panic!("task exploded"));
                let ran = &ran_dependent;
                g.add_task(&[bad], move || {
                    ran.fetch_add(1, Ordering::Relaxed);
                });
                g.run(threads);
            }));
            let payload = result.expect_err("panic must propagate");
            let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
            assert_eq!(msg, "task exploded");
            assert_eq!(
                ran_dependent.load(Ordering::Relaxed),
                0,
                "dependents of a panicked task must not run"
            );
        }
    }

    #[test]
    #[should_panic(expected = "different TaskGraph")]
    fn cross_graph_handle_is_rejected() {
        let mut a = TaskGraph::new();
        let ha = a.add_task(&[], || {});
        let mut b = TaskGraph::new();
        b.add_task(&[ha], || {});
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Random DAGs (deps always point to earlier tasks) execute in
        /// topological order on both the serial and the threaded path.
        #[test]
        fn random_dags_execute_topologically(
            raw in prop::collection::vec(prop::collection::vec(any::<usize>(), 0..4), 1..40),
            threads in prop::sample::select(vec![1usize, 2, 4, 8]),
        ) {
            let deps: Vec<Vec<usize>> = raw
                .iter()
                .enumerate()
                .map(|(i, d)| {
                    if i == 0 {
                        Vec::new()
                    } else {
                        d.iter().map(|&r| r % i).collect()
                    }
                })
                .collect();
            let order = record_order(&deps, threads);
            assert_topological(&deps, &order);
        }
    }
}
