//! A small dependency-tracking task executor.
//!
//! [`crate::pool`] provides flat fork-join patch loops — every phase of an RK
//! stage (halo execution, boundary fill, kernel sweep, update) runs as its
//! own loop with a hard barrier between phases. This module removes the
//! barrier: work is submitted as *tasks* with explicit predecessor handles,
//! and a pool of workers drains whatever is ready. The fab layer builds one
//! graph per RK stage from its cached communication plans, so a patch's
//! boundary-band sweep waits only for *its own* halo tasks while interior
//! sweeps of every patch start immediately (the comm/compute overlap of
//! task-based AMR runtimes, arXiv:2508.05020, and STREAmS-2,
//! arXiv:2304.05494).
//!
//! Design points:
//!
//! * **Acyclic by construction.** A task's dependencies are handles returned
//!   by earlier `add_task` calls, so a dependency's index is always smaller
//!   than the dependent's — no cycle detection is needed at run time, and
//!   insertion order is a valid topological order.
//! * **Epoch-checked handles.** Every graph draws a process-unique id;
//!   handles remember it and `add_task` panics on a handle minted by a
//!   different graph (the `fabcheck`-style cheap assertion that catches
//!   accidentally-reused handles across stages).
//! * **Panic propagation.** A panicking task aborts the drain; the first
//!   payload is re-thrown from [`TaskGraph::run`] on the caller's thread,
//!   matching the fork-join loops' behaviour under `std::thread::scope`.
//! * **Serial fallback.** With `threads <= 1` the graph runs inline in
//!   insertion order — deterministic, allocation-light, and exactly what the
//!   small test problems want.

use crate::cluster::CommError;
use crate::taskcheck::{Footprint, ScheduleSpec};
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// How a built [`TaskGraph`] is executed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Schedule {
    /// The production executor: up to `threads` workers drain ready tasks
    /// in queue order (inline serial execution when `threads <= 1`).
    Pool {
        /// Worker count.
        threads: usize,
    },
    /// The adversarial executor: single-threaded, but free to pick *any*
    /// legal topological linearization. Seed 0 is the deterministic
    /// worst-case reverse-priority order (always the highest-index ready
    /// task — the mirror image of insertion order); any other seed drives a
    /// splitmix64 stream of arbitrary legal choices. The invariance suites
    /// use this to prove results are bitwise-identical under any schedule
    /// the dependency edges permit (DESIGN.md §4i).
    Adversarial {
        /// Choice seed (`0` = reverse-priority).
        seed: u64,
    },
}

impl Schedule {
    /// The production pool schedule.
    pub fn pool(threads: usize) -> Schedule {
        Schedule::Pool { threads }
    }

    /// A seeded adversarial schedule (see [`Schedule::Adversarial`]).
    pub fn adversarial(seed: u64) -> Schedule {
        Schedule::Adversarial { seed }
    }
}

/// A recoverable failure of one distributed RK-stage execution — what
/// [`TaskGraph::try_run_with_progress`] returns instead of hanging peers or
/// unwinding through the stepping loop. The chaos stepping loop answers any
/// of these with checkpoint rollback (DESIGN.md §4g).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StageError {
    /// The progress pump detected a communication fault (dead rank,
    /// starved receive, queue overflow).
    Comm(CommError),
    /// A kernel task panicked (e.g. a `fabcheck` NaN trap); the panic was
    /// contained and converted instead of unwinding past blocked peers.
    TaskPanic {
        /// The panic payload, rendered to a string.
        message: String,
    },
    /// The chaos plan scheduled this rank to crash here (fail-stop).
    CrashInjected,
}

impl std::fmt::Display for StageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StageError::Comm(e) => write!(f, "communication fault: {e}"),
            StageError::TaskPanic { message } => write!(f, "kernel task panicked: {message}"),
            StageError::CrashInjected => write!(f, "injected rank crash"),
        }
    }
}

impl std::error::Error for StageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StageError::Comm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CommError> for StageError {
    fn from(e: CommError) -> Self {
        StageError::Comm(e)
    }
}

/// How one graph execution failed, internally: a task panic keeps its
/// original payload (so the infallible runner can rethrow it unchanged),
/// while a pump failure carries the typed stage error.
enum Failure {
    Panic(Box<dyn std::any::Any + Send>),
    Pump(StageError),
}

/// Renders a panic payload the way `std::thread` would.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Mints process-unique graph ids (the handle "epoch").
static NEXT_GRAPH_ID: AtomicU64 = AtomicU64::new(1);

/// An opaque reference to a task previously added to a [`TaskGraph`], used
/// to declare dependencies of later tasks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TaskHandle {
    graph: u64,
    idx: usize,
}

/// A submitted task's boxed closure.
type Job<'env> = Box<dyn FnOnce() + Send + 'env>;

/// An event task's readiness predicate (e.g. "has this posted receive
/// completed?"). Polled by the runner, never by workers.
type EventPred<'env> = Box<dyn FnMut() -> bool + Send + 'env>;

/// What a task does when it becomes ready.
enum Work<'env> {
    /// An ordinary closure, executed once by a worker.
    Job(Job<'env>),
    /// An external event: *finished* (releasing its dependents) when the
    /// predicate first returns true. Costs no worker time.
    Event(EventPred<'env>),
}

/// One submitted task: its work and deduplicated predecessor indices.
struct Task<'env> {
    work: Work<'env>,
    deps: Vec<usize>,
}

/// A dependency graph of `FnOnce` tasks, executed by [`TaskGraph::run`].
///
/// The `'env` lifetime lets tasks borrow from the caller's stack, as with
/// scoped threads: the graph cannot outlive the data its tasks capture.
pub struct TaskGraph<'env> {
    id: u64,
    tasks: Vec<Task<'env>>,
    /// Indices of event tasks (subset of `tasks`).
    events: Vec<usize>,
    /// Declared data footprints, aligned with `tasks` (default = undeclared).
    footprints: Vec<Footprint>,
}

impl<'env> TaskGraph<'env> {
    /// Creates an empty graph with a fresh id.
    pub fn new() -> Self {
        TaskGraph {
            id: NEXT_GRAPH_ID.fetch_add(1, Ordering::Relaxed),
            tasks: Vec::new(),
            events: Vec::new(),
            footprints: Vec::new(),
        }
    }

    /// Number of tasks added so far.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// `true` when no task has been added.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Adds a task that may start only after every task in `deps` has
    /// finished, and returns its handle.
    ///
    /// # Panics
    ///
    /// Panics if any handle in `deps` was created by a different graph.
    pub fn add_task<F>(&mut self, deps: &[TaskHandle], f: F) -> TaskHandle
    where
        F: FnOnce() + Send + 'env,
    {
        self.add_task_with(deps, Footprint::default(), f)
    }

    /// Like [`TaskGraph::add_task`], with a declared data [`Footprint`]: the
    /// `(fab, component range, box)` regions the closure reads and writes.
    /// Footprints feed the static schedule verifier
    /// ([`TaskGraph::schedule_spec`]) and, under the `taskcheck` feature,
    /// the dynamic detector's under-declaration audit — they do not affect
    /// execution.
    pub fn add_task_with<F>(&mut self, deps: &[TaskHandle], fp: Footprint, f: F) -> TaskHandle
    where
        F: FnOnce() + Send + 'env,
    {
        let mut dep_idx = Vec::with_capacity(deps.len());
        for d in deps {
            assert_eq!(
                d.graph, self.id,
                "TaskHandle belongs to a different TaskGraph (stale handle?)"
            );
            dep_idx.push(d.idx);
        }
        dep_idx.sort_unstable();
        dep_idx.dedup();
        let idx = self.tasks.len();
        self.tasks.push(Task {
            work: Work::Job(Box::new(f)),
            deps: dep_idx,
        });
        self.footprints.push(fp);
        TaskHandle {
            graph: self.id,
            idx,
        }
    }

    /// Adds an *event* task — a dependency stand-in for an external
    /// completion (a posted nonblocking receive, an accelerator fence) —
    /// and returns its handle for use as a predecessor of later tasks.
    ///
    /// The event finishes when `ready` first returns true; the runner polls
    /// it between invocations of the progress pump passed to
    /// [`TaskGraph::run_with_progress`] (which is what makes the condition
    /// advance — e.g. `RankEndpoint::progress` matching arrived packets).
    /// Events consume no worker: workers keep draining compute tasks while
    /// the runner waits for the condition.
    pub fn add_event<F>(&mut self, ready: F) -> TaskHandle
    where
        F: FnMut() -> bool + Send + 'env,
    {
        let idx = self.tasks.len();
        self.events.push(idx);
        self.tasks.push(Task {
            work: Work::Event(Box::new(ready)),
            deps: Vec::new(),
        });
        self.footprints.push(Footprint::default());
        TaskHandle {
            graph: self.id,
            idx,
        }
    }

    /// The pure dependency + footprint structure of this graph, decoupled
    /// from the closures — what [`ScheduleSpec::verify`] proves race-free,
    /// and what the fab spec builders assert their mirrored specs against
    /// (the anti-drift check of DESIGN.md §4i).
    pub fn schedule_spec(&self) -> ScheduleSpec {
        let mut spec = ScheduleSpec::new();
        for (t, fp) in self.tasks.iter().zip(&self.footprints) {
            spec.add(&t.deps, fp.clone());
        }
        spec
    }

    /// Executes every task, honouring dependencies, on up to `threads`
    /// workers. Returns when all tasks have finished; re-throws the first
    /// task panic after the workers have stopped.
    ///
    /// # Panics
    ///
    /// Panics if the graph contains event tasks — those only make sense
    /// with a progress pump, so use [`TaskGraph::run_with_progress`].
    pub fn run(self, threads: usize) {
        self.run_schedule(Schedule::pool(threads));
    }

    /// Executes every task under the given [`Schedule`]. Semantics match
    /// [`TaskGraph::run`] (panic rethrow, no event tasks permitted).
    ///
    /// # Panics
    ///
    /// Panics if the graph contains event tasks — those only make sense
    /// with a progress pump, so use [`TaskGraph::run_schedule_with_progress`].
    pub fn run_schedule(self, sched: Schedule) {
        assert!(
            self.events.is_empty(),
            "graphs with event tasks need run_with_progress (a progress pump)"
        );
        self.run_schedule_with_progress(sched, &mut || {});
    }

    /// Executes every task, honouring dependencies, on up to `threads`
    /// workers, with `progress` pumped between event polls — the runner for
    /// graphs whose [`TaskGraph::add_event`] gates depend on external state
    /// (e.g. `RankEndpoint::progress` matching arrived halo packets).
    ///
    /// With `threads <= 1` tasks run inline in insertion order, spinning
    /// `progress` before a blocked event; the caller must therefore insert
    /// every task an event's completion transitively requires on *this* rank
    /// (its own pack/send jobs) before the event. On the threaded path the
    /// calling thread becomes the coordinator: it pumps `progress`, polls
    /// event predicates, and releases dependents the moment an event fires,
    /// while workers keep draining ready compute tasks — no worker ever
    /// blocks on communication.
    pub fn run_with_progress(self, threads: usize, progress: &mut (dyn FnMut() + '_)) {
        self.run_schedule_with_progress(Schedule::pool(threads), progress);
    }

    /// Executes every task under the given [`Schedule`] with `progress`
    /// pumped between event polls — the schedule-generic form of
    /// [`TaskGraph::run_with_progress`].
    pub fn run_schedule_with_progress(self, sched: Schedule, progress: &mut (dyn FnMut() + '_)) {
        match self.run_inner(sched, &mut || {
            progress();
            Ok(())
        }) {
            Ok(()) => {}
            Err(Failure::Panic(p)) => resume_unwind(p),
            Err(Failure::Pump(_)) => unreachable!("infallible pump cannot fail"),
        }
    }

    /// Fault-tolerant runner: like [`TaskGraph::run_with_progress`], but the
    /// pump may fail (a detected communication fault) and task panics are
    /// contained — both are returned as a typed [`StageError`] instead of
    /// hanging peer ranks or unwinding through the stepping loop. On error,
    /// workers stop after their current task and unstarted tasks are
    /// dropped.
    pub fn try_run_with_progress(
        self,
        threads: usize,
        progress: &mut (dyn FnMut() -> Result<(), StageError> + '_),
    ) -> Result<(), StageError> {
        self.try_run_schedule_with_progress(Schedule::pool(threads), progress)
    }

    /// Fault-tolerant schedule-generic runner — the form of
    /// [`TaskGraph::try_run_with_progress`] the distributed invariance
    /// suites use to drive adversarial linearizations through the
    /// overlapped cross-rank stage.
    pub fn try_run_schedule_with_progress(
        self,
        sched: Schedule,
        progress: &mut (dyn FnMut() -> Result<(), StageError> + '_),
    ) -> Result<(), StageError> {
        match self.run_inner(sched, progress) {
            Ok(()) => Ok(()),
            Err(Failure::Panic(p)) => Err(StageError::TaskPanic {
                message: panic_message(p.as_ref()),
            }),
            Err(Failure::Pump(e)) => Err(e),
        }
    }

    /// Builds the dynamic race tracker for this graph (a no-op token when
    /// the `taskcheck` feature is off).
    fn make_tracker(&self) -> Tracker {
        #[cfg(feature = "taskcheck")]
        {
            let deps: Vec<Vec<usize>> = self.tasks.iter().map(|t| t.deps.clone()).collect();
            crate::taskcheck::RunTracker::new(deps, self.footprints.clone())
        }
        #[cfg(not(feature = "taskcheck"))]
        Tracker
    }

    /// Shared executor behind every runner. Panics are always caught and
    /// returned with their original payload, so the infallible wrappers can
    /// rethrow them unchanged.
    fn run_inner(
        self,
        sched: Schedule,
        progress: &mut (dyn FnMut() -> Result<(), StageError> + '_),
    ) -> Result<(), Failure> {
        let n = self.tasks.len();
        if n == 0 {
            return Ok(());
        }
        let tracker = self.make_tracker();
        if let Schedule::Adversarial { seed } = sched {
            self.run_adversarial(seed, progress, &tracker)?;
            check_tracker(&tracker);
            return Ok(());
        }
        let Schedule::Pool { threads } = sched else {
            unreachable!()
        };
        if threads <= 1 || n == 1 {
            // Insertion order is a topological order (deps point backwards).
            // A failure drops the remaining tasks — the fault-tolerant
            // caller rolls the whole stage back anyway.
            for (i, t) in self.tasks.into_iter().enumerate() {
                match t.work {
                    Work::Job(run) => {
                        let scope = enter_scope(&tracker, i);
                        let result = catch_unwind(AssertUnwindSafe(run));
                        drop(scope);
                        result.map_err(Failure::Panic)?;
                    }
                    Work::Event(mut ready) => {
                        while !ready() {
                            progress().map_err(Failure::Pump)?;
                            std::thread::yield_now();
                        }
                    }
                }
            }
            check_tracker(&tracker);
            return Ok(());
        }

        // Successor lists and atomic in-degrees drive readiness; a mutexed
        // deque + condvar is the ready queue (the vendored crossbeam stub has
        // no lock-free deque, and patch-sized tasks amortize the lock).
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut indeg = Vec::with_capacity(n);
        for (i, t) in self.tasks.iter().enumerate() {
            indeg.push(AtomicUsize::new(t.deps.len()));
            for &d in &t.deps {
                succs[d].push(i);
            }
        }
        // Split the tasks: compute jobs go to the worker pool, event
        // predicates stay with the coordinator (this thread).
        let mut jobs: Vec<Mutex<Option<Job<'env>>>> = Vec::with_capacity(n);
        let mut pending_events: Vec<(usize, EventPred<'env>)> = Vec::new();
        for (i, t) in self.tasks.into_iter().enumerate() {
            match t.work {
                Work::Job(run) => jobs.push(Mutex::new(Some(run))),
                Work::Event(ready) => {
                    jobs.push(Mutex::new(None));
                    pending_events.push((i, ready));
                }
            }
        }
        let is_event: Vec<bool> = {
            let mut v = vec![false; n];
            for &(i, _) in &pending_events {
                v[i] = true;
            }
            v
        };
        let ready: Mutex<VecDeque<usize>> = Mutex::new(
            (0..n)
                .filter(|&i| !is_event[i] && indeg[i].load(Ordering::Relaxed) == 0)
                .collect(),
        );
        let cv = Condvar::new();
        let finished = AtomicUsize::new(0);
        let aborted = AtomicBool::new(false);
        let panic_slot: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
        let mut pump_err: Option<StageError> = None;

        // Releases task `i`'s dependents and counts it finished (shared by
        // worker job completion and coordinator event completion).
        let finish = |i: usize| {
            for &sx in &succs[i] {
                if indeg[sx].fetch_sub(1, Ordering::AcqRel) == 1 {
                    ready.lock().expect("task queue poisoned").push_back(sx);
                    cv.notify_one();
                }
            }
            if finished.fetch_add(1, Ordering::AcqRel) + 1 == n {
                // Wake idle workers so they observe completion.
                let _q = ready.lock().expect("task queue poisoned");
                cv.notify_all();
            }
        };

        let nworkers = threads.min(n);
        crossbeam::thread::scope(|s| {
            for _ in 0..nworkers {
                s.spawn(|_| loop {
                    let i = {
                        let mut q = ready.lock().expect("task queue poisoned");
                        loop {
                            if aborted.load(Ordering::Acquire)
                                || finished.load(Ordering::Acquire) == n
                            {
                                return;
                            }
                            if let Some(i) = q.pop_front() {
                                break i;
                            }
                            q = cv.wait(q).expect("task queue poisoned");
                        }
                    };
                    let job = jobs[i]
                        .lock()
                        .expect("job slot poisoned")
                        .take()
                        .expect("task scheduled twice");
                    let scope = enter_scope(&tracker, i);
                    let result = catch_unwind(AssertUnwindSafe(job));
                    drop(scope);
                    match result {
                        Ok(()) => finish(i),
                        Err(payload) => {
                            let mut slot = panic_slot.lock().expect("panic slot poisoned");
                            if slot.is_none() {
                                *slot = Some(payload);
                            }
                            drop(slot);
                            aborted.store(true, Ordering::Release);
                            let _q = ready.lock().expect("task queue poisoned");
                            cv.notify_all();
                            return;
                        }
                    }
                });
            }

            // Coordinator loop: pump progress, fire completed events, nap
            // briefly when nothing moved (events wake only through the pump,
            // so a condvar wait would deadlock against external arrivals).
            while !aborted.load(Ordering::Acquire) && finished.load(Ordering::Acquire) < n {
                if pending_events.is_empty() {
                    // Nothing left to poll; park until the workers finish.
                    let q = ready.lock().expect("task queue poisoned");
                    if finished.load(Ordering::Acquire) < n && !aborted.load(Ordering::Acquire) {
                        let _ = cv
                            .wait_timeout(q, std::time::Duration::from_millis(1))
                            .expect("task queue poisoned");
                    }
                    continue;
                }
                if let Err(e) = progress() {
                    // A detected comm fault: abort the drain and release the
                    // workers (they finish their current task and stop).
                    pump_err = Some(e);
                    aborted.store(true, Ordering::Release);
                    let _q = ready.lock().expect("task queue poisoned");
                    cv.notify_all();
                    break;
                }
                let mut fired = false;
                pending_events.retain_mut(|(i, ready_pred)| {
                    if ready_pred() {
                        finish(*i);
                        fired = true;
                        false
                    } else {
                        true
                    }
                });
                if !fired {
                    std::thread::sleep(std::time::Duration::from_micros(50));
                }
            }
        })
        .expect("task graph scope failed");

        if let Some(p) = panic_slot.into_inner().expect("panic slot poisoned") {
            return Err(Failure::Panic(p));
        }
        if let Some(e) = pump_err {
            return Err(Failure::Pump(e));
        }
        check_tracker(&tracker);
        Ok(())
    }

    /// The adversarial executor behind [`Schedule::Adversarial`]:
    /// single-threaded Kahn's algorithm where the next ready job is chosen
    /// by the seed instead of queue order. Events are polled between picks
    /// with the progress pump, exactly like the serial pool path; because a
    /// ready job always runs in preference to spinning on events, every
    /// pack/send job a pending receive transitively needs still drains
    /// first, so the liveness argument of the serial path carries over.
    fn run_adversarial(
        self,
        seed: u64,
        progress: &mut (dyn FnMut() -> Result<(), StageError> + '_),
        tracker: &Tracker,
    ) -> Result<(), Failure> {
        let n = self.tasks.len();
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut indeg = vec![0usize; n];
        for (i, t) in self.tasks.iter().enumerate() {
            indeg[i] = t.deps.len();
            for &d in &t.deps {
                succs[d].push(i);
            }
        }
        let mut works: Vec<Option<Work<'env>>> = Vec::with_capacity(n);
        for t in self.tasks {
            works.push(Some(t.work));
        }
        // Events have no dependencies (add_event invariant), so all of them
        // are pollable from the start and never enter the ready-job set.
        let mut pending_events: Vec<usize> = self.events;
        let mut ready_jobs: Vec<usize> = (0..n)
            .filter(|&i| indeg[i] == 0 && !matches!(works[i], Some(Work::Event(_))))
            .collect();
        let mut rng = seed;
        let mut done = 0usize;
        while done < n {
            // Poll events first: firing one may release new ready jobs.
            let mut fired = false;
            let mut k = 0;
            while k < pending_events.len() {
                let i = pending_events[k];
                let is_ready = match works[i].as_mut() {
                    Some(Work::Event(p)) => p(),
                    _ => unreachable!("event slot holds a non-event"),
                };
                if is_ready {
                    works[i] = None;
                    pending_events.swap_remove(k);
                    fired = true;
                    done += 1;
                    for &s in &succs[i] {
                        indeg[s] -= 1;
                        if indeg[s] == 0 {
                            ready_jobs.push(s);
                        }
                    }
                } else {
                    k += 1;
                }
            }
            if ready_jobs.is_empty() {
                if fired {
                    continue;
                }
                debug_assert!(
                    !pending_events.is_empty(),
                    "no ready task on an incomplete DAG"
                );
                progress().map_err(Failure::Pump)?;
                std::thread::yield_now();
                continue;
            }
            // The adversarial pick: seed 0 always takes the highest-index
            // ready task; other seeds draw from a splitmix64 stream.
            let pos = if seed == 0 {
                let mut best = 0;
                for (p, &i) in ready_jobs.iter().enumerate() {
                    if i > ready_jobs[best] {
                        best = p;
                    }
                }
                best
            } else {
                (splitmix64(&mut rng) % ready_jobs.len() as u64) as usize
            };
            let i = ready_jobs.swap_remove(pos);
            let Some(Work::Job(job)) = works[i].take() else {
                unreachable!("ready set holds a non-job")
            };
            let scope = enter_scope(tracker, i);
            let result = catch_unwind(AssertUnwindSafe(job));
            drop(scope);
            result.map_err(Failure::Panic)?;
            done += 1;
            for &s in &succs[i] {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    ready_jobs.push(s);
                }
            }
        }
        Ok(())
    }
}

/// One step of the splitmix64 generator — the adversarial schedule's choice
/// stream (tiny, seedable, and dependency-free).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Dynamic-tracker plumbing: a real reachability/footprint tracker with the
/// `taskcheck` feature, a zero-sized token without it — so the executor
/// paths stay free of `cfg` noise.
#[cfg(feature = "taskcheck")]
type Tracker = std::sync::Arc<crate::taskcheck::RunTracker>;
#[cfg(not(feature = "taskcheck"))]
#[derive(Clone, Copy)]
struct Tracker;

#[cfg(feature = "taskcheck")]
use crate::taskcheck::TaskScope;
#[cfg(not(feature = "taskcheck"))]
struct TaskScope;

// A (no-op) Drop keeps the executors' explicit `drop(scope)` flush points
// meaningful in both builds (clippy::drop_non_drop).
#[cfg(not(feature = "taskcheck"))]
impl Drop for TaskScope {
    fn drop(&mut self) {}
}

#[cfg(feature = "taskcheck")]
fn enter_scope(tracker: &Tracker, task: usize) -> TaskScope {
    TaskScope::enter(tracker, task)
}

#[cfg(not(feature = "taskcheck"))]
fn enter_scope(_tracker: &Tracker, _task: usize) -> TaskScope {
    TaskScope
}

#[cfg(feature = "taskcheck")]
fn check_tracker(tracker: &Tracker) {
    tracker.check();
}

#[cfg(not(feature = "taskcheck"))]
fn check_tracker(_tracker: &Tracker) {}

impl Default for TaskGraph<'_> {
    fn default() -> Self {
        TaskGraph::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::atomic::AtomicU64 as TestAtomicU64;

    /// Runs `deps[i] -> i` graphs and records the order tasks executed in.
    fn record_order(deps: &[Vec<usize>], threads: usize) -> Vec<usize> {
        let order = Mutex::new(Vec::new());
        let mut g = TaskGraph::new();
        let mut handles: Vec<TaskHandle> = Vec::new();
        for (i, d) in deps.iter().enumerate() {
            let hd: Vec<TaskHandle> = d.iter().map(|&j| handles[j]).collect();
            let order = &order;
            handles.push(g.add_task(&hd, move || {
                order.lock().unwrap().push(i);
            }));
        }
        g.run(threads);
        order.into_inner().unwrap()
    }

    /// Asserts `order` is a permutation of `0..deps.len()` that respects
    /// every dependency.
    fn assert_topological(deps: &[Vec<usize>], order: &[usize]) {
        assert_eq!(order.len(), deps.len(), "not every task ran");
        let mut pos = vec![usize::MAX; deps.len()];
        for (p, &t) in order.iter().enumerate() {
            assert_eq!(pos[t], usize::MAX, "task {t} ran twice");
            pos[t] = p;
        }
        for (i, d) in deps.iter().enumerate() {
            for &j in d {
                assert!(
                    pos[j] < pos[i],
                    "task {i} ran before its dependency {j}: {order:?}"
                );
            }
        }
    }

    #[test]
    fn chain_executes_in_dependency_order() {
        let deps: Vec<Vec<usize>> = (0..64).map(|i| if i == 0 { vec![] } else { vec![i - 1] }).collect();
        for threads in [1, 4] {
            let order = record_order(&deps, threads);
            assert_eq!(order, (0..64).collect::<Vec<_>>());
        }
    }

    #[test]
    fn diamond_dependencies_fence_the_join() {
        // 0 -> {1, 2} -> 3
        let deps = vec![vec![], vec![0], vec![0], vec![1, 2]];
        for threads in [1, 2, 4] {
            let order = record_order(&deps, threads);
            assert_topological(&deps, &order);
            assert_eq!(order[0], 0);
            assert_eq!(order[3], 3);
        }
    }

    #[test]
    fn independent_tasks_all_run() {
        let count = TestAtomicU64::new(0);
        let mut g = TaskGraph::new();
        for _ in 0..100 {
            let count = &count;
            g.add_task(&[], move || {
                count.fetch_add(1, Ordering::Relaxed);
            });
        }
        g.run(8);
        assert_eq!(count.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn duplicate_deps_are_deduplicated() {
        let mut g = TaskGraph::new();
        let a = g.add_task(&[], || {});
        let h = g.add_task(&[a, a, a], || {});
        assert_eq!(h, h);
        assert_eq!(g.len(), 2);
        g.run(2);
    }

    #[test]
    fn empty_graph_is_a_noop() {
        let g = TaskGraph::new();
        assert!(g.is_empty());
        g.run(4);
    }

    #[test]
    fn panic_in_task_propagates_to_caller() {
        for threads in [1, 4] {
            let ran_dependent = TestAtomicU64::new(0);
            let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                let mut g = TaskGraph::new();
                let bad = g.add_task(&[], || panic!("task exploded"));
                let ran = &ran_dependent;
                g.add_task(&[bad], move || {
                    ran.fetch_add(1, Ordering::Relaxed);
                });
                g.run(threads);
            }));
            let payload = result.expect_err("panic must propagate");
            let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
            assert_eq!(msg, "task exploded");
            assert_eq!(
                ran_dependent.load(Ordering::Relaxed),
                0,
                "dependents of a panicked task must not run"
            );
        }
    }

    #[test]
    #[should_panic(expected = "different TaskGraph")]
    fn cross_graph_handle_is_rejected() {
        let mut a = TaskGraph::new();
        let ha = a.add_task(&[], || {});
        let mut b = TaskGraph::new();
        b.add_task(&[ha], || {});
    }

    #[test]
    fn event_gates_release_dependents_when_the_pump_fires() {
        for threads in [1usize, 4] {
            // The "packet" arrives on the third progress pump.
            let pumps = TestAtomicU64::new(0);
            let arrived = AtomicBool::new(false);
            let order = Mutex::new(Vec::new());
            let mut g = TaskGraph::new();
            let ev = g.add_event(|| arrived.load(Ordering::Acquire));
            let order_ref = &order;
            g.add_task(&[ev], move || order_ref.lock().unwrap().push("boundary"));
            g.add_task(&[], move || order_ref.lock().unwrap().push("interior"));
            g.run_with_progress(threads, &mut || {
                if pumps.fetch_add(1, Ordering::Relaxed) + 1 >= 3 {
                    arrived.store(true, Ordering::Release);
                }
            });
            let order = order.into_inner().unwrap();
            assert_eq!(order.len(), 2, "threads={threads}: {order:?}");
            assert!(pumps.load(Ordering::Relaxed) >= 3);
            assert!(order.contains(&"boundary") && order.contains(&"interior"));
        }
    }

    #[test]
    fn immediately_ready_events_cost_nothing() {
        for threads in [1usize, 2] {
            let ran = TestAtomicU64::new(0);
            let mut g = TaskGraph::new();
            let ev = g.add_event(|| true);
            let ran_ref = &ran;
            g.add_task(&[ev], move || {
                ran_ref.fetch_add(1, Ordering::Relaxed);
            });
            g.run_with_progress(threads, &mut || {});
            assert_eq!(ran.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn compute_tasks_drain_while_an_event_is_pending() {
        // 32 independent compute tasks plus one event that only fires after
        // every compute task ran: if workers blocked on the event, this
        // would deadlock.
        let done = TestAtomicU64::new(0);
        let mut g = TaskGraph::new();
        for _ in 0..32 {
            let done = &done;
            g.add_task(&[], move || {
                done.fetch_add(1, Ordering::Relaxed);
            });
        }
        let done_ref = &done;
        let ev = g.add_event(move || done_ref.load(Ordering::Relaxed) == 32);
        let done_ref = &done;
        g.add_task(&[ev], move || {
            done_ref.fetch_add(100, Ordering::Relaxed);
        });
        g.run_with_progress(4, &mut || {});
        assert_eq!(done.load(Ordering::Relaxed), 132);
    }

    #[test]
    #[should_panic(expected = "run_with_progress")]
    fn plain_run_rejects_event_graphs() {
        let mut g = TaskGraph::new();
        g.add_event(|| true);
        g.run(2);
    }

    #[test]
    fn try_run_converts_task_panics_to_stage_errors() {
        for threads in [1usize, 4] {
            let ran_dependent = TestAtomicU64::new(0);
            let mut g = TaskGraph::new();
            let bad = g.add_task(&[], || panic!("NaN detected in stage kernel"));
            let ran = &ran_dependent;
            g.add_task(&[bad], move || {
                ran.fetch_add(1, Ordering::Relaxed);
            });
            let err = g
                .try_run_with_progress(threads, &mut || Ok(()))
                .expect_err("panic must become a stage error");
            assert_eq!(
                err,
                StageError::TaskPanic {
                    message: "NaN detected in stage kernel".into()
                },
                "threads={threads}"
            );
            assert_eq!(ran_dependent.load(Ordering::Relaxed), 0);
        }
    }

    #[test]
    fn try_run_surfaces_pump_faults_and_aborts() {
        for threads in [1usize, 4] {
            let fault = StageError::Comm(CommError::RankDead { rank: 2 });
            let released = TestAtomicU64::new(0);
            let mut g = TaskGraph::new();
            // An event that never fires: only the pump fault can end the run.
            let ev = g.add_event(|| false);
            let released_ref = &released;
            g.add_task(&[ev], move || {
                released_ref.fetch_add(1, Ordering::Relaxed);
            });
            let fault_clone = fault.clone();
            let err = g
                .try_run_with_progress(threads, &mut || Err(fault_clone.clone()))
                .expect_err("pump fault must end the run");
            assert_eq!(err, fault, "threads={threads}");
            assert_eq!(
                released.load(Ordering::Relaxed),
                0,
                "tasks gated on the dead event must not run"
            );
        }
    }

    #[test]
    fn try_run_completes_clean_graphs() {
        let done = TestAtomicU64::new(0);
        let mut g = TaskGraph::new();
        for _ in 0..16 {
            let done = &done;
            g.add_task(&[], move || {
                done.fetch_add(1, Ordering::Relaxed);
            });
        }
        g.try_run_with_progress(4, &mut || Ok(())).unwrap();
        assert_eq!(done.load(Ordering::Relaxed), 16);
    }

    /// Like [`record_order`], under an arbitrary schedule.
    fn record_order_sched(deps: &[Vec<usize>], sched: Schedule) -> Vec<usize> {
        let order = Mutex::new(Vec::new());
        let mut g = TaskGraph::new();
        let mut handles: Vec<TaskHandle> = Vec::new();
        for (i, d) in deps.iter().enumerate() {
            let hd: Vec<TaskHandle> = d.iter().map(|&j| handles[j]).collect();
            let order = &order;
            handles.push(g.add_task(&hd, move || {
                order.lock().unwrap().push(i);
            }));
        }
        g.run_schedule(sched);
        order.into_inner().unwrap()
    }

    #[test]
    fn adversarial_seed_zero_is_reverse_priority() {
        // Independent tasks: the worst-case order is exactly reversed
        // insertion order, the mirror image of the serial pool path.
        let deps: Vec<Vec<usize>> = (0..16).map(|_| vec![]).collect();
        let order = record_order_sched(&deps, Schedule::adversarial(0));
        assert_eq!(order, (0..16).rev().collect::<Vec<_>>());
    }

    #[test]
    fn adversarial_schedules_respect_dependencies() {
        // diamond + a tail chain
        let deps = vec![vec![], vec![0], vec![0], vec![1, 2], vec![3], vec![]];
        for seed in [0u64, 1, 7, 0xDEAD_BEEF] {
            let order = record_order_sched(&deps, Schedule::adversarial(seed));
            assert_topological(&deps, &order);
        }
    }

    #[test]
    fn adversarial_runner_handles_events_and_errors() {
        // Event gate under the adversarial runner: the "packet" arrives on
        // the third pump, exactly like the pool-path event test.
        let pumps = TestAtomicU64::new(0);
        let arrived = AtomicBool::new(false);
        let ran = TestAtomicU64::new(0);
        let mut g = TaskGraph::new();
        let ev = g.add_event(|| arrived.load(Ordering::Acquire));
        let ran_ref = &ran;
        g.add_task(&[ev], move || {
            ran_ref.fetch_add(1, Ordering::Relaxed);
        });
        g.try_run_schedule_with_progress(Schedule::adversarial(3), &mut || {
            if pumps.fetch_add(1, Ordering::Relaxed) + 1 >= 3 {
                arrived.store(true, Ordering::Release);
            }
            Ok(())
        })
        .unwrap();
        assert_eq!(ran.load(Ordering::Relaxed), 1);

        // Panics become typed stage errors, same as the pool runner.
        let mut g = TaskGraph::new();
        g.add_task(&[], || panic!("kernel blew up"));
        let err = g
            .try_run_schedule_with_progress(Schedule::adversarial(0), &mut || Ok(()))
            .expect_err("panic must surface");
        assert_eq!(
            err,
            StageError::TaskPanic {
                message: "kernel blew up".into()
            }
        );
    }

    #[test]
    fn schedule_spec_mirrors_the_graph() {
        use crate::taskcheck::Footprint;
        let mut g = TaskGraph::new();
        let a = g.add_task_with(&[], Footprint::new("a"), || {});
        let b = g.add_event(|| true);
        g.add_task_with(&[a, b], Footprint::new("c"), || {});
        let spec = g.schedule_spec();
        assert_eq!(spec.len(), 3);
        assert_eq!(spec.label(0), "a");
        assert_eq!(spec.deps(2), &[0, 1]);
        assert!(spec.verify().violations.is_empty());
        g.run_with_progress(1, &mut || {});
    }

    /// Dynamic detector integration: unordered overlapping writes recorded
    /// during execution trip the post-run audit on every executor path;
    /// ordered graphs pass it; and accesses to fabs no footprint declares
    /// are out of the schedule's scope and never trap (task-local scratch,
    /// other-level data).
    #[cfg(feature = "taskcheck")]
    #[test]
    fn dynamic_detector_traps_executed_races() {
        use crate::taskcheck::{record_access, Footprint};
        use crocco_geometry::{IndexBox, IntVect};
        let bx = IndexBox::new(IntVect::new(0, 0, 0), IntVect::new(3, 3, 3));
        let fp = |l: &str| Footprint::new(l).writes(1, (0, 1), bx);
        for sched in [
            Schedule::pool(1),
            Schedule::pool(4),
            Schedule::adversarial(0),
        ] {
            // Two unordered tasks writing the same box of the same fab.
            let result = catch_unwind(AssertUnwindSafe(|| {
                let mut g = TaskGraph::new();
                g.add_task_with(&[], fp("w1"), move || record_access(1, true, bx));
                g.add_task_with(&[], fp("w2"), move || record_access(1, true, bx));
                g.run_schedule(sched);
            }));
            let msg = panic_message(result.expect_err("race must trap").as_ref());
            assert!(msg.contains("taskcheck"), "unexpected panic: {msg}");

            // The same accesses with an ordering edge pass.
            let mut g = TaskGraph::new();
            let a = g.add_task_with(&[], fp("w1"), move || record_access(1, true, bx));
            g.add_task_with(&[a], fp("w2"), move || record_access(1, true, bx));
            g.run_schedule(sched);

            // Unordered overlapping writes to a fab *no* footprint declares
            // are out-of-graph data the schedule does not arbitrate: clean.
            let mut g = TaskGraph::new();
            g.add_task_with(&[], fp("w1"), move || record_access(99, true, bx));
            g.add_task_with(&[], fp("w2"), move || record_access(99, true, bx));
            g.run_schedule(sched);
        }
    }

    /// Dynamic detector integration: a task with a declared footprint that
    /// touches cells outside it is an under-declaration the static pass
    /// would have trusted — the audit traps it.
    #[cfg(feature = "taskcheck")]
    #[test]
    fn dynamic_detector_traps_underdeclared_footprints() {
        use crate::taskcheck::{record_access, Footprint};
        use crocco_geometry::{IndexBox, IntVect};
        let declared = IndexBox::new(IntVect::new(0, 0, 0), IntVect::new(3, 3, 3));
        let outside = IndexBox::new(IntVect::new(10, 0, 0), IntVect::new(11, 1, 1));
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut g = TaskGraph::new();
            g.add_task_with(&[], Footprint::new("liar").writes(5, (0, 1), declared), move || {
                record_access(5, true, outside);
            });
            g.run(1);
        }));
        let msg = panic_message(result.expect_err("under-declaration must trap").as_ref());
        assert!(msg.contains("under-declared"), "unexpected panic: {msg}");

        // Honest declaration passes.
        let mut g = TaskGraph::new();
        g.add_task_with(&[], Footprint::new("honest").writes(5, (0, 1), declared), move || {
            record_access(5, true, declared);
        });
        g.run(1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Random DAGs (deps always point to earlier tasks) execute in
        /// topological order on the serial, threaded, and adversarial paths.
        #[test]
        fn random_dags_execute_topologically(
            raw in prop::collection::vec(prop::collection::vec(any::<usize>(), 0..4), 1..40),
            threads in prop::sample::select(vec![1usize, 2, 4, 8]),
            seed in any::<u64>(),
        ) {
            let deps: Vec<Vec<usize>> = raw
                .iter()
                .enumerate()
                .map(|(i, d)| {
                    if i == 0 {
                        Vec::new()
                    } else {
                        d.iter().map(|&r| r % i).collect()
                    }
                })
                .collect();
            let order = record_order(&deps, threads);
            assert_topological(&deps, &order);
            let order = record_order_sched(&deps, Schedule::adversarial(seed));
            assert_topological(&deps, &order);
        }
    }

    /// The soundness bridge between the static and dynamic passes: any graph
    /// the static verifier declares clean must execute without tripping the
    /// dynamic race detector, on any legal linearization, when every task
    /// touches exactly what it declared.
    #[cfg(feature = "taskcheck")]
    mod clean_graphs {
        use super::*;
        use crate::taskcheck::{record_access, Footprint};
        use crocco_geometry::{IndexBox, IntVect};

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            #[test]
            fn verifier_clean_graphs_never_trip_the_dynamic_detector(
                raw_deps in prop::collection::vec(prop::collection::vec(any::<usize>(), 0..3), 1..16),
                raw_accs in prop::collection::vec(
                    prop::collection::vec(
                        (0u64..3, any::<bool>(), 0i64..6, 1i64..4),
                        0..3,
                    ),
                    1..16,
                ),
                seed in any::<u64>(),
            ) {
                let n = raw_deps.len();
                let mut fps = Vec::with_capacity(n);
                let mut deps_list = Vec::with_capacity(n);
                for (i, d) in raw_deps.iter().enumerate() {
                    let deps: Vec<usize> = if i == 0 {
                        Vec::new()
                    } else {
                        d.iter().map(|&r| r % i).collect()
                    };
                    let mut fp = Footprint::new(format!("t{i}"));
                    for &(fab, write, lo, len) in
                        raw_accs.get(i).map(Vec::as_slice).unwrap_or(&[])
                    {
                        let b = IndexBox::new(
                            IntVect::new(lo, 0, 0),
                            IntVect::new(lo + len - 1, 1, 1),
                        );
                        fp = if write {
                            fp.writes(fab, (0, 1), b)
                        } else {
                            fp.reads(fab, (0, 1), b)
                        };
                    }
                    fps.push(fp);
                    deps_list.push(deps);
                }
                // Only verifier-clean graphs are in scope.
                let mut spec = crate::taskcheck::ScheduleSpec::new();
                for (deps, fp) in deps_list.iter().zip(&fps) {
                    spec.add(deps, fp.clone());
                }
                if spec.verify().violations.is_empty() {
                    // Each task touches exactly its declared regions; a trap
                    // here would be a false positive in the dynamic detector.
                    for sched in [Schedule::pool(2), Schedule::adversarial(seed)] {
                        let mut g = TaskGraph::new();
                        let mut handles: Vec<TaskHandle> = Vec::with_capacity(n);
                        for (deps, fp) in deps_list.iter().zip(&fps) {
                            let accs: Vec<(bool, u64, IndexBox)> = fp
                                .accesses()
                                .iter()
                                .map(|&(a, r)| {
                                    (a == crate::taskcheck::Access::Write, r.fab, r.bx)
                                })
                                .collect();
                            let dep_handles: Vec<TaskHandle> =
                                deps.iter().map(|&d| handles[d]).collect();
                            handles.push(g.add_task_with(&dep_handles, fp.clone(), move || {
                                for &(w, fab, bx) in &accs {
                                    record_access(fab, w, bx);
                                }
                            }));
                        }
                        g.run_schedule(sched);
                    }
                }
            }
        }
    }
}
