//! Rank ↔ node placement.

use serde::{Deserialize, Serialize};

/// Placement of MPI ranks onto nodes (block placement, as `jsrun` does on
/// Summit: ranks 0..r-1 on node 0, r..2r-1 on node 1, …).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    /// Number of nodes.
    pub nodes: usize,
    /// Ranks per node.
    pub ranks_per_node: usize,
}

impl Topology {
    /// Creates a topology; both arguments must be positive.
    pub fn new(nodes: usize, ranks_per_node: usize) -> Self {
        assert!(nodes > 0 && ranks_per_node > 0);
        Topology {
            nodes,
            ranks_per_node,
        }
    }

    /// Total rank count.
    pub fn nranks(&self) -> usize {
        self.nodes * self.ranks_per_node
    }

    /// The node hosting `rank`.
    pub fn node_of(&self, rank: usize) -> usize {
        debug_assert!(rank < self.nranks());
        rank / self.ranks_per_node
    }

    /// `true` if two ranks share a node (their traffic stays on NVLink /
    /// shared memory rather than the fat tree).
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of(a) == self.node_of(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_placement() {
        let t = Topology::new(4, 6);
        assert_eq!(t.nranks(), 24);
        assert_eq!(t.node_of(0), 0);
        assert_eq!(t.node_of(5), 0);
        assert_eq!(t.node_of(6), 1);
        assert_eq!(t.node_of(23), 3);
        assert!(t.same_node(0, 5));
        assert!(!t.same_node(5, 6));
    }
}
