//! The simulated communicator: per-rank virtual clocks.
//!
//! Scaling experiments replay the real communication plans (exact message
//! lists from box intersections) through this simulator. Each rank carries a
//! virtual clock; compute advances one clock, communication phases advance
//! all participating clocks by their α–β costs and couple them (a message
//! cannot be received before it was sent). Iteration time is the maximum
//! clock — the critical path across ranks, which is what the paper's
//! walltime-per-iteration plots measure.

use crocco_perfmodel::NetworkModel;
use crate::topology::Topology;
use serde::{Deserialize, Serialize};

/// One message in a communication phase.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CommOp {
    /// Sending rank.
    pub src: usize,
    /// Receiving rank.
    pub dst: usize,
    /// Payload bytes.
    pub bytes: u64,
}

/// A simulated communicator over `nranks` virtual ranks.
#[derive(Clone, Debug)]
pub struct SimComm {
    clock: Vec<f64>,
    net: NetworkModel,
    topo: Topology,
    /// NVLink/shared-memory bandwidth for same-node traffic (B/s).
    intranode_bw: f64,
    /// Total simulated messages posted (diagnostics).
    pub total_messages: u64,
    /// Total simulated bytes moved (diagnostics).
    pub total_bytes: u64,
}

impl SimComm {
    /// Creates a communicator with all clocks at zero.
    pub fn new(topo: Topology, net: NetworkModel) -> Self {
        SimComm {
            clock: vec![0.0; topo.nranks()],
            net,
            topo,
            // Summit NVLink 2.0: 50 GB/s per direction between GPU pairs.
            intranode_bw: 50.0e9,
            total_messages: 0,
            total_bytes: 0,
        }
    }

    /// Number of ranks.
    pub fn nranks(&self) -> usize {
        self.clock.len()
    }

    /// Current virtual time of `rank`.
    pub fn time_of(&self, rank: usize) -> f64 {
        self.clock[rank]
    }

    /// Maximum clock — the critical-path elapsed time.
    pub fn elapsed(&self) -> f64 {
        self.clock.iter().copied().fold(0.0, f64::max)
    }

    /// Advances one rank's clock by `seconds` of computation.
    pub fn compute(&mut self, rank: usize, seconds: f64) {
        self.clock[rank] += seconds;
    }

    /// Advances every rank's clock by `seconds` (perfectly parallel work).
    pub fn compute_all(&mut self, seconds: f64) {
        for c in &mut self.clock {
            *c += seconds;
        }
    }

    /// Executes a point-to-point exchange phase and returns the phase's
    /// critical-path duration.
    ///
    /// Per rank the phase costs `α·(messages posted) + (bytes in or out,
    /// whichever larger)/bandwidth`; same-node messages use the intranode
    /// bandwidth and no network latency. Every participating rank finishes
    /// no earlier than the slowest rank it exchanged with had *started*
    /// sending plus that transfer cost; we conservatively couple the phase by
    /// synchronizing participants to the phase maximum, matching the
    /// `_finish` semantics of the AMReX calls in Fig. 7.
    pub fn exchange(&mut self, ops: &[CommOp]) -> f64 {
        self.exchange_overlapped(ops, 0.0)
    }

    /// Executes a point-to-point exchange phase with `hide` seconds of
    /// overlappable interior compute per rank and returns the phase's
    /// critical-path duration.
    ///
    /// This prices the distributed stage graphs of `fab::dist_overlap`: each
    /// rank drives its halo sends/receives concurrently with the interior
    /// sweeps of the patches it owns, so only the *exposed* portion of the
    /// exchange — `max(0, comm − hide)` per rank — lands on the critical
    /// path. The `hide` seconds themselves must still be charged by the
    /// caller as compute (they are real work, just no longer serialized
    /// behind the fence). With `hide == 0` this degenerates to the fenced
    /// [`exchange`](Self::exchange) semantics.
    pub fn exchange_overlapped(&mut self, ops: &[CommOp], hide: f64) -> f64 {
        if ops.is_empty() {
            return 0.0;
        }
        let n = self.nranks();
        let mut send_msgs = vec![0u64; n];
        let mut net_in = vec![0u64; n];
        let mut net_out = vec![0u64; n];
        let mut local_in = vec![0u64; n];
        let mut local_out = vec![0u64; n];
        let mut touched = vec![false; n];
        for op in ops {
            debug_assert!(op.src < n && op.dst < n && op.src != op.dst);
            touched[op.src] = true;
            touched[op.dst] = true;
            self.total_messages += 1;
            self.total_bytes += op.bytes;
            if self.topo.same_node(op.src, op.dst) {
                local_out[op.src] += op.bytes;
                local_in[op.dst] += op.bytes;
            } else {
                send_msgs[op.src] += 1;
                net_out[op.src] += op.bytes;
                net_in[op.dst] += op.bytes;
            }
        }
        let mut phase_end: f64 = 0.0;
        for r in 0..n {
            if !touched[r] {
                continue;
            }
            let t_net = self.net.alpha * send_msgs[r] as f64
                + net_in[r].max(net_out[r]) as f64 / self.net.bandwidth;
            let t_local = local_in[r].max(local_out[r]) as f64 / self.intranode_bw;
            let exposed = self.net.exposed_time(t_net + t_local, hide);
            phase_end = phase_end.max(self.clock[r] + exposed);
        }
        let start: f64 = self
            .clock
            .iter()
            .zip(&touched)
            .filter(|(_, &t)| t)
            .map(|(c, _)| *c)
            .fold(0.0, f64::max);
        for (clock, &hit) in self.clock.iter_mut().zip(&touched) {
            if hit {
                *clock = phase_end;
            }
        }
        phase_end - start.min(phase_end)
    }

    /// An all-reduce (the `ReduceRealMin(dt)` of §III-B): synchronizes every
    /// clock to the maximum plus the tree cost.
    pub fn allreduce(&mut self) -> f64 {
        let cost = self.net.allreduce_time(self.nranks());
        let max = self.elapsed() + cost;
        for c in &mut self.clock {
            *c = max;
        }
        cost
    }

    /// A barrier without communication cost (used at iteration boundaries to
    /// model the lock-step time-marching loop).
    pub fn barrier(&mut self) {
        let max = self.elapsed();
        for c in &mut self.clock {
            *c = max;
        }
    }

    /// Adds a fixed per-rank overhead to every clock (e.g. ParallelCopy
    /// metadata handshakes).
    pub fn overhead_all(&mut self, seconds: f64) {
        self.compute_all(seconds);
    }

    /// A coordinated checkpoint costing `seconds` per rank: every rank
    /// quiesces (checkpoints are only consistent at replicated step
    /// boundaries, so a barrier precedes the drain) and then pays the
    /// drain cost. Price `seconds` with
    /// `crocco_perfmodel::resilience::ResilienceModel::checkpoint_time`.
    pub fn checkpoint(&mut self, seconds: f64) {
        self.barrier();
        self.compute_all(seconds);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comm(nodes: usize, rpn: usize) -> SimComm {
        SimComm::new(Topology::new(nodes, rpn), NetworkModel::summit())
    }

    #[test]
    fn compute_advances_single_clock() {
        let mut c = comm(1, 4);
        c.compute(2, 1.5);
        assert_eq!(c.time_of(2), 1.5);
        assert_eq!(c.time_of(0), 0.0);
        assert_eq!(c.elapsed(), 1.5);
    }

    #[test]
    fn exchange_couples_participants() {
        let mut c = comm(2, 1);
        c.compute(0, 1.0);
        // Rank 1 must wait for rank 0's data.
        c.exchange(&[CommOp {
            src: 0,
            dst: 1,
            bytes: 125_000_000, // 0.01 s at 12.5 GB/s
        }]);
        assert!(c.time_of(1) >= 1.0 + 0.009);
        assert_eq!(c.time_of(0), c.time_of(1)); // coupled phase
    }

    #[test]
    fn same_node_traffic_is_cheaper() {
        let mut a = comm(1, 2); // both ranks on one node
        let mut b = comm(2, 1); // ranks on different nodes
        let ops = [CommOp {
            src: 0,
            dst: 1,
            bytes: 1_000_000_000,
        }];
        let ta = a.exchange(&ops);
        let tb = b.exchange(&ops);
        assert!(ta < tb, "intranode {ta} should beat internode {tb}");
    }

    #[test]
    fn allreduce_synchronizes_clocks() {
        let mut c = comm(4, 2);
        c.compute(3, 2.0);
        let cost = c.allreduce();
        assert!(cost > 0.0);
        for r in 0..c.nranks() {
            assert_eq!(c.time_of(r), 2.0 + cost);
        }
    }

    #[test]
    fn untouched_ranks_keep_their_clocks() {
        let mut c = comm(4, 1);
        c.exchange(&[CommOp {
            src: 0,
            dst: 1,
            bytes: 8,
        }]);
        assert_eq!(c.time_of(2), 0.0);
        assert_eq!(c.time_of(3), 0.0);
        assert!(c.time_of(0) > 0.0);
    }

    #[test]
    fn fully_hidden_exchange_is_free() {
        let mut fenced = comm(2, 1);
        let mut overlapped = comm(2, 1);
        let ops = [CommOp {
            src: 0,
            dst: 1,
            bytes: 125_000_000, // 0.01 s at 12.5 GB/s
        }];
        let tf = fenced.exchange(&ops);
        // A full second of interior compute swallows a 10 ms transfer.
        let to = overlapped.exchange_overlapped(&ops, 1.0);
        assert!(tf > 0.009);
        assert_eq!(to, 0.0);
        assert_eq!(overlapped.elapsed(), 0.0);
        // Accounting still sees the traffic even when it is hidden.
        assert_eq!(overlapped.total_messages, 1);
        assert_eq!(overlapped.total_bytes, 125_000_000);
    }

    #[test]
    fn partially_hidden_exchange_exposes_remainder() {
        let mut fenced = comm(2, 1);
        let mut overlapped = comm(2, 1);
        let ops = [CommOp {
            src: 0,
            dst: 1,
            bytes: 250_000_000, // 0.02 s at 12.5 GB/s
        }];
        let tf = fenced.exchange(&ops);
        let to = overlapped.exchange_overlapped(&ops, 0.005);
        assert!((tf - to - 0.005).abs() < 1e-9, "fenced {tf} overlapped {to}");
    }

    #[test]
    fn zero_hide_matches_fenced_exchange() {
        let mut a = comm(2, 2);
        let mut b = comm(2, 2);
        a.compute(1, 0.3);
        b.compute(1, 0.3);
        let ops = [
            CommOp {
                src: 0,
                dst: 2,
                bytes: 5_000_000,
            },
            CommOp {
                src: 1,
                dst: 3,
                bytes: 9_000_000,
            },
        ];
        let ta = a.exchange(&ops);
        let tb = b.exchange_overlapped(&ops, 0.0);
        assert_eq!(ta, tb);
        for r in 0..a.nranks() {
            assert_eq!(a.time_of(r), b.time_of(r));
        }
    }

    #[test]
    fn message_accounting() {
        let mut c = comm(2, 2);
        c.exchange(&[
            CommOp {
                src: 0,
                dst: 3,
                bytes: 100,
            },
            CommOp {
                src: 1,
                dst: 2,
                bytes: 50,
            },
        ]);
        assert_eq!(c.total_messages, 2);
        assert_eq!(c.total_bytes, 150);
    }
}
