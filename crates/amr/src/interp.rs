//! Coarse→fine interpolators.
//!
//! §III-C of the paper contrasts three interpolation designs:
//!
//! * AMReX's built-in **trilinear** interpolator, which assumes uniform
//!   Cartesian spacing so "the interpolation coefficients are always a
//!   multiple of 1/2" — this is what CRoCCo **2.1** swaps in,
//! * the team's **custom curvilinear** interpolator, which "accurately weighs
//!   interpolation coefficients by spacing in physical curvilinear space" at
//!   the cost of a coordinate `ParallelCopy` — CRoCCo **2.0**, sufficient for
//!   the DMR case "but lacks conservation of quantities across interfaces",
//! * a **conservative** interpolator as the higher-fidelity direction (the
//!   paper plans a WENO-SYMBO conservative scheme; we provide the classic
//!   limited-slope conservative interpolator that guarantees the conservation
//!   property the trilinear schemes lack).
//!
//! Piecewise-constant injection is included as the trivial baseline.

use crocco_fab::FArrayBox;
use crocco_geometry::{IndexBox, IntVect};

/// A coarse→fine interpolation scheme.
pub trait Interpolator: Send + Sync {
    /// Scheme name for reports.
    fn name(&self) -> &'static str;

    /// Ghost width required on the coarse source fab, beyond the coarsened
    /// footprint of the fine region being filled.
    fn coarse_ghost(&self) -> i64;

    /// `true` if the scheme reads physical coordinates — which forces the
    /// coordinate-MultiFab `ParallelCopy` the paper identifies as the global
    /// communication bottleneck (§III-B, §VI-B).
    fn needs_coords(&self) -> bool {
        false
    }

    /// Fills components `0..fine.ncomp()` of `fine` over `region` (fine index
    /// space) by interpolating `coarse`. `ratio` is the refinement ratio.
    /// Coordinate fabs are provided iff [`Interpolator::needs_coords`].
    fn interp(
        &self,
        coarse: &FArrayBox,
        fine: &mut FArrayBox,
        region: IndexBox,
        ratio: IntVect,
        coarse_coords: Option<&FArrayBox>,
        fine_coords: Option<&FArrayBox>,
    );
}

/// Piecewise-constant injection: each fine cell takes its coarse parent's
/// value. First-order, maximally dissipative baseline.
#[derive(Clone, Copy, Debug, Default)]
pub struct PiecewiseConstantInterp;

impl Interpolator for PiecewiseConstantInterp {
    fn name(&self) -> &'static str {
        "piecewise-constant"
    }

    fn coarse_ghost(&self) -> i64 {
        0
    }

    fn interp(
        &self,
        coarse: &FArrayBox,
        fine: &mut FArrayBox,
        region: IndexBox,
        ratio: IntVect,
        _cc: Option<&FArrayBox>,
        _fc: Option<&FArrayBox>,
    ) {
        for c in 0..fine.ncomp() {
            for p in region.cells() {
                let v = coarse.get(p.coarsen(ratio), c);
                fine.set(p, c, v);
            }
        }
    }
}

/// Fractional position of fine cell `p` relative to the coarse cell-center
/// lattice: returns the base coarse cell and per-direction weights in
/// `[0, 1)` such that the fine center sits at `base + w` (cell centers).
fn cartesian_weights(p: IntVect, ratio: IntVect) -> (IntVect, [f64; 3]) {
    let mut base = IntVect::ZERO;
    let mut w = [0.0; 3];
    for d in 0..3 {
        let r = ratio[d] as f64;
        // Fine center in coarse index coordinates.
        let xc = (p[d] as f64 + 0.5) / r - 0.5;
        let b = xc.floor();
        base[d] = b as i64;
        w[d] = xc - b;
    }
    (base, w)
}

/// AMReX's nodal/cell trilinear interpolator on uniform index spacing: the
/// eight surrounding coarse values are blended with weights that are
/// multiples of `1/(2·ratio)` (¼ and ¾ for ratio 2). CRoCCo 2.1.
#[derive(Clone, Copy, Debug, Default)]
pub struct TrilinearInterp;

impl Interpolator for TrilinearInterp {
    fn name(&self) -> &'static str {
        "trilinear"
    }

    fn coarse_ghost(&self) -> i64 {
        1
    }

    fn interp(
        &self,
        coarse: &FArrayBox,
        fine: &mut FArrayBox,
        region: IndexBox,
        ratio: IntVect,
        _cc: Option<&FArrayBox>,
        _fc: Option<&FArrayBox>,
    ) {
        trilinear_with_weights(coarse, fine, region, ratio, |p, _c| cartesian_weights(p, ratio));
    }
}

/// Shared 8-corner blend driven by a per-cell weight callback.
fn trilinear_with_weights<F>(
    coarse: &FArrayBox,
    fine: &mut FArrayBox,
    region: IndexBox,
    _ratio: IntVect,
    weights: F,
) where
    F: Fn(IntVect, &FArrayBox) -> (IntVect, [f64; 3]),
{
    for p in region.cells() {
        let (base, w) = weights(p, coarse);
        for c in 0..fine.ncomp() {
            let mut acc = 0.0;
            for dz in 0..2 {
                for dy in 0..2 {
                    for dx in 0..2 {
                        let q = base + IntVect::new(dx, dy, dz);
                        let ww = (if dx == 1 { w[0] } else { 1.0 - w[0] })
                            * (if dy == 1 { w[1] } else { 1.0 - w[1] })
                            * (if dz == 1 { w[2] } else { 1.0 - w[2] });
                        acc += ww * coarse.get(q, c);
                    }
                }
            }
            fine.set(p, c, acc);
        }
    }
}

/// The paper's custom curvilinear interpolator (CRoCCo 2.0): the same
/// 8-corner blend, but weighted by *physical* distances taken from the
/// coordinate fabs, so non-uniformly spaced grids interpolate at the true
/// fine-point location. Requires coordinates — triggering the coordinate
/// `ParallelCopy` in `FillPatchTwoLevels`.
#[derive(Clone, Copy, Debug, Default)]
pub struct CurvilinearInterp;

impl Interpolator for CurvilinearInterp {
    fn name(&self) -> &'static str {
        "curvilinear"
    }

    fn coarse_ghost(&self) -> i64 {
        1
    }

    fn needs_coords(&self) -> bool {
        true
    }

    fn interp(
        &self,
        coarse: &FArrayBox,
        fine: &mut FArrayBox,
        region: IndexBox,
        ratio: IntVect,
        coarse_coords: Option<&FArrayBox>,
        fine_coords: Option<&FArrayBox>,
    ) {
        let cc = coarse_coords.expect("curvilinear interpolation needs coarse coordinates");
        let fc = fine_coords.expect("curvilinear interpolation needs fine coordinates");
        trilinear_with_weights(coarse, fine, region, ratio, |p, _| {
            let (base, mut w) = cartesian_weights(p, ratio);
            // Replace index-space weights with physical-space weights: for
            // each direction, the fraction of the physical gap between the
            // two bracketing coarse points covered by the fine point.
            for d in 0..3 {
                let x_f = fc.get(p, d);
                let q0 = base;
                let mut q1 = base;
                q1[d] += 1;
                let x0 = cc.get(q0, d);
                let x1 = cc.get(q1, d);
                let gap = x1 - x0;
                if gap.abs() > 1e-300 {
                    w[d] = ((x_f - x0) / gap).clamp(0.0, 1.0);
                }
            }
            (base, w)
        });
    }
}

/// Conservative limited-slope interpolation: each coarse cell is given a
/// minmod-limited linear profile whose mean is the coarse value, and fine
/// cells sample that profile. The mean of the `ratio³` children equals the
/// parent exactly — the conservation property §III-C says the trilinear
/// schemes lack.
#[derive(Clone, Copy, Debug, Default)]
pub struct ConservativeLinearInterp;

/// Minmod slope limiter.
fn minmod(a: f64, b: f64) -> f64 {
    if a * b <= 0.0 {
        0.0
    } else if a.abs() < b.abs() {
        a
    } else {
        b
    }
}

impl Interpolator for ConservativeLinearInterp {
    fn name(&self) -> &'static str {
        "conservative-linear"
    }

    fn coarse_ghost(&self) -> i64 {
        1
    }

    fn interp(
        &self,
        coarse: &FArrayBox,
        fine: &mut FArrayBox,
        region: IndexBox,
        ratio: IntVect,
        _cc: Option<&FArrayBox>,
        _fc: Option<&FArrayBox>,
    ) {
        for p in region.cells() {
            let cp = p.coarsen(ratio);
            for c in 0..fine.ncomp() {
                let u0 = coarse.get(cp, c);
                let mut v = u0;
                for d in 0..3 {
                    let r = ratio[d] as f64;
                    let mut m = cp;
                    let mut pl = cp;
                    m[d] += 1;
                    pl[d] -= 1;
                    let slope = minmod(
                        coarse.get(m, c) - u0,
                        u0 - coarse.get(pl, c),
                    );
                    // Offset of the fine-cell center from the coarse center,
                    // in coarse cell widths: ((i_f + ½) / r − ½) − i_c.
                    let off = (p[d] as f64 + 0.5) / r - 0.5 - cp[d] as f64;
                    v += slope * off;
                }
                fine.set(p, c, v);
            }
        }
    }
}

/// Smoothness-weighted conservative interpolation — the §III-C direction:
/// "a high-order, bandwidth optimized WENO interpolation scheme, nearly
/// identical to the method Martín et al. use to reconstruct convective
/// fluxes", whose dissipation matches the solver's own numerics so
/// fine/coarse interfaces inject minimal noise *and* conserve.
///
/// Implemented dimension-by-dimension: along each direction the coarse cell
/// average `b` with neighbors `a, c` splits into two half-cell averages
/// `b ∓ s/4`, where the slope `s` blends the one-sided differences with
/// WENO-style nonlinear weights (`α = 1/(ε + Δ²)²`). Each 1-D split
/// preserves the parent mean exactly, so the full 3-D operator is
/// conservative; near discontinuities the weights collapse onto the smooth
/// side (ENO behaviour).
#[derive(Clone, Copy, Debug, Default)]
pub struct WenoConservativeInterp;

/// WENO-weighted limited slope from one-sided differences.
fn weno_slope(dl: f64, dr: f64) -> f64 {
    const EPS: f64 = 1e-6;
    let al = 1.0 / (EPS + dl * dl).powi(2);
    let ar = 1.0 / (EPS + dr * dr).powi(2);
    (al * dl + ar * dr) / (al + ar)
}

impl WenoConservativeInterp {
    /// Splits a 1-D pencil of cell averages into 2× half-cell averages.
    /// `vals[i]` are averages at coarse cells `lo..=hi`; the output holds
    /// `2·(n−2)` fine averages for the interior cells (the two end cells
    /// serve as stencil ghosts).
    fn split_pencil(vals: &[f64], out: &mut Vec<f64>) {
        out.clear();
        for i in 1..vals.len() - 1 {
            let (a, b, c) = (vals[i - 1], vals[i], vals[i + 1]);
            let s = weno_slope(b - a, c - b);
            out.push(b - s / 4.0);
            out.push(b + s / 4.0);
        }
    }
}

impl Interpolator for WenoConservativeInterp {
    fn name(&self) -> &'static str {
        "weno-conservative"
    }

    fn coarse_ghost(&self) -> i64 {
        1
    }

    fn interp(
        &self,
        coarse: &FArrayBox,
        fine: &mut FArrayBox,
        region: IndexBox,
        ratio: IntVect,
        _cc: Option<&FArrayBox>,
        _fc: Option<&FArrayBox>,
    ) {
        assert_eq!(
            ratio,
            IntVect::splat(2),
            "WENO conservative interpolation implements ratio 2"
        );
        // Dimension-by-dimension refinement over the coarse footprint of
        // `region` grown by one stencil cell: x, then y, then z. Intermediate
        // results live in scratch fabs whose index space is refined in the
        // directions already processed.
        let cfoot = region.coarsen(ratio).grow(1);
        let mut cur = {
            let mut f = FArrayBox::new(cfoot, fine.ncomp());
            f.copy_from(coarse, cfoot, 0, 0, fine.ncomp());
            f
        };
        for dir in 0..3 {
            // Refine `cur` along `dir`: each pencil of length n produces
            // 2(n−2) entries; the box shrinks by one cell at both ends in
            // `dir` (stencil) and refines in `dir`.
            let src_bx = cur.bx();
            let inner = src_bx.grow_lo(dir, -1).grow_hi(dir, -1);
            let dst_bx = refine_dir(inner, dir);
            let mut next = FArrayBox::new(dst_bx, cur.ncomp());
            let mut pencil = Vec::new();
            let mut halves = Vec::new();
            // Iterate over lines along `dir`.
            let mut plane_lo = src_bx.lo();
            let mut plane_hi = src_bx.hi();
            plane_lo[dir] = 0;
            plane_hi[dir] = 0;
            for c in 0..cur.ncomp() {
                for plane in IndexBox::new(plane_lo, plane_hi).cells() {
                    pencil.clear();
                    for k in src_bx.lo()[dir]..=src_bx.hi()[dir] {
                        let mut q = plane;
                        q[dir] = k;
                        pencil.push(cur.get(q, c));
                    }
                    Self::split_pencil(&pencil, &mut halves);
                    for (j, &v) in halves.iter().enumerate() {
                        let mut q = plane;
                        q[dir] = dst_bx.lo()[dir] + j as i64;
                        next.set(q, c, v);
                    }
                }
            }
            cur = next;
        }
        // Copy the requested region out of the fully refined scratch.
        debug_assert!(cur.bx().contains_box(&region));
        for c in 0..fine.ncomp() {
            for p in region.cells() {
                fine.set(p, c, cur.get(p, c));
            }
        }
    }
}

/// Refines `bx` by 2 along a single direction.
fn refine_dir(bx: IndexBox, dir: usize) -> IndexBox {
    let mut r = IntVect::ONE;
    r[dir] = 2;
    bx.refine(r)
}

#[cfg(test)]
mod tests {
    use super::*;

    const R2: IntVect = IntVect([2, 2, 2]);

    /// Coarse fab holding a linear field a + bx·i + by·j + bz·k at centers.
    fn linear_coarse(bx: IndexBox, a: f64, b: [f64; 3]) -> FArrayBox {
        let mut f = FArrayBox::new(bx, 1);
        for p in bx.cells() {
            f.set(
                p,
                0,
                a + b[0] * p[0] as f64 + b[1] * p[1] as f64 + b[2] * p[2] as f64,
            );
        }
        f
    }

    /// The same linear field evaluated at fine centers (coarse index coords).
    fn linear_at_fine(p: IntVect, a: f64, b: [f64; 3]) -> f64 {
        let x = |d: usize| (p[d] as f64 + 0.5) / 2.0 - 0.5;
        a + b[0] * x(0) + b[1] * x(1) + b[2] * x(2)
    }

    #[test]
    fn trilinear_reproduces_linear_fields_exactly() {
        let cbx = IndexBox::new(IntVect::new(-2, -2, -2), IntVect::new(5, 5, 5));
        let coarse = linear_coarse(cbx, 1.5, [2.0, -1.0, 0.5]);
        let region = IndexBox::from_extents(8, 8, 8);
        let mut fine = FArrayBox::new(region, 1);
        TrilinearInterp.interp(&coarse, &mut fine, region, R2, None, None);
        for p in region.cells() {
            let expect = linear_at_fine(p, 1.5, [2.0, -1.0, 0.5]);
            assert!(
                (fine.get(p, 0) - expect).abs() < 1e-13,
                "at {p:?}: {} vs {expect}",
                fine.get(p, 0)
            );
        }
    }

    #[test]
    fn piecewise_constant_copies_parent() {
        let cbx = IndexBox::from_extents(4, 4, 4);
        let mut coarse = FArrayBox::new(cbx, 1);
        coarse.set(IntVect::new(1, 1, 1), 0, 9.0);
        let region = IndexBox::new(IntVect::new(2, 2, 2), IntVect::new(3, 3, 3));
        let mut fine = FArrayBox::new(region, 1);
        PiecewiseConstantInterp.interp(&coarse, &mut fine, region, R2, None, None);
        for p in region.cells() {
            assert_eq!(fine.get(p, 0), 9.0);
        }
    }

    #[test]
    fn curvilinear_matches_trilinear_on_uniform_grid() {
        // On a uniform grid physical weights reduce to the Cartesian ¼/¾, so
        // the two interpolators must agree to machine precision.
        let cbx = IndexBox::new(IntVect::new(-2, -2, -2), IntVect::new(5, 5, 5));
        let coarse = linear_coarse(cbx, 0.3, [1.0, 2.0, 3.0]);
        // Uniform physical coordinates: x_d = h·(i_d + ½) with h = 1 (coarse).
        let mut cc = FArrayBox::new(cbx, 3);
        for p in cbx.cells() {
            for d in 0..3 {
                cc.set(p, d, p[d] as f64 + 0.5);
            }
        }
        let region = IndexBox::from_extents(8, 8, 8);
        let mut fc = FArrayBox::new(region, 3);
        for p in region.cells() {
            for d in 0..3 {
                fc.set(p, d, (p[d] as f64 + 0.5) / 2.0);
            }
        }
        let mut fine_tri = FArrayBox::new(region, 1);
        let mut fine_cur = FArrayBox::new(region, 1);
        TrilinearInterp.interp(&coarse, &mut fine_tri, region, R2, None, None);
        CurvilinearInterp.interp(&coarse, &mut fine_cur, region, R2, Some(&cc), Some(&fc));
        for p in region.cells() {
            assert!((fine_tri.get(p, 0) - fine_cur.get(p, 0)).abs() < 1e-12);
        }
    }

    #[test]
    fn curvilinear_is_exact_on_stretched_grids_where_trilinear_is_not() {
        // Physical coordinate x = s², field f(x) = x (linear in physical
        // space). The curvilinear interpolator must reproduce it exactly;
        // index-space trilinear must not.
        let cbx = IndexBox::new(IntVect::new(0, 0, 0), IntVect::new(7, 3, 3));
        let xmap = |i: f64| (i + 0.5) * (i + 0.5); // stretched coordinate
        let mut coarse = FArrayBox::new(cbx, 1);
        let mut cc = FArrayBox::new(cbx, 3);
        for p in cbx.cells() {
            cc.set(p, 0, xmap(p[0] as f64));
            cc.set(p, 1, p[1] as f64 + 0.5);
            cc.set(p, 2, p[2] as f64 + 0.5);
            coarse.set(p, 0, xmap(p[0] as f64));
        }
        // Fine region strictly interior (base cells 1..6 stay in bounds).
        let region = IndexBox::new(IntVect::new(4, 2, 2), IntVect::new(9, 5, 5));
        let mut fc = FArrayBox::new(region, 3);
        for p in region.cells() {
            // Fine physical positions from the same map at half indices.
            let xi = (p[0] as f64 + 0.5) / 2.0 - 0.5;
            fc.set(p, 0, xmap(xi));
            fc.set(p, 1, (p[1] as f64 + 0.5) / 2.0);
            fc.set(p, 2, (p[2] as f64 + 0.5) / 2.0);
        }
        let mut fine_cur = FArrayBox::new(region, 1);
        let mut fine_tri = FArrayBox::new(region, 1);
        CurvilinearInterp.interp(&coarse, &mut fine_cur, region, R2, Some(&cc), Some(&fc));
        TrilinearInterp.interp(&coarse, &mut fine_tri, region, R2, None, None);
        let mut max_cur: f64 = 0.0;
        let mut max_tri: f64 = 0.0;
        for p in region.cells() {
            let expect = fc.get(p, 0); // f(x) = x
            max_cur = max_cur.max((fine_cur.get(p, 0) - expect).abs());
            max_tri = max_tri.max((fine_tri.get(p, 0) - expect).abs());
        }
        assert!(max_cur < 1e-12, "curvilinear error {max_cur}");
        assert!(max_tri > 1e-3, "trilinear should err on stretched grids");
    }

    #[test]
    fn conservative_preserves_cell_means() {
        let cbx = IndexBox::new(IntVect::new(-1, -1, -1), IntVect::new(4, 4, 4));
        let mut coarse = FArrayBox::new(cbx, 1);
        // Nontrivial smooth-ish data.
        for p in cbx.cells() {
            let v = (p[0] as f64 * 0.7).sin() + 0.3 * p[1] as f64 - 0.1 * (p[2] as f64).powi(2);
            coarse.set(p, 0, v);
        }
        let cregion = IndexBox::from_extents(4, 4, 4);
        let fregion = cregion.refine(R2);
        let mut fine = FArrayBox::new(fregion, 1);
        ConservativeLinearInterp.interp(&coarse, &mut fine, fregion, R2, None, None);
        for cp in cregion.cells() {
            let children = IndexBox::new(cp, cp).refine(R2);
            let mean: f64 =
                children.cells().map(|p| fine.get(p, 0)).sum::<f64>() / children.num_points() as f64;
            assert!(
                (mean - coarse.get(cp, 0)).abs() < 1e-13,
                "conservation violated at {cp:?}"
            );
        }
    }

    #[test]
    fn conservative_limiter_keeps_new_extrema_bounded() {
        // Around a discontinuity the limited interpolant must not create
        // values outside the local coarse range.
        let cbx = IndexBox::new(IntVect::new(-1, -1, -1), IntVect::new(4, 4, 4));
        let mut coarse = FArrayBox::new(cbx, 1);
        for p in cbx.cells() {
            coarse.set(p, 0, if p[0] < 2 { 0.0 } else { 10.0 });
        }
        let cregion = IndexBox::from_extents(4, 4, 4);
        let fregion = cregion.refine(R2);
        let mut fine = FArrayBox::new(fregion, 1);
        ConservativeLinearInterp.interp(&coarse, &mut fine, fregion, R2, None, None);
        for p in fregion.cells() {
            let v = fine.get(p, 0);
            assert!((-1e-12..=10.0 + 1e-12).contains(&v), "overshoot {v} at {p:?}");
        }
    }

    #[test]
    fn ghost_requirements_reported() {
        assert_eq!(PiecewiseConstantInterp.coarse_ghost(), 0);
        assert_eq!(TrilinearInterp.coarse_ghost(), 1);
        assert!(CurvilinearInterp.needs_coords());
        assert!(!TrilinearInterp.needs_coords());
    }
}

#[cfg(test)]
mod weno_interp_tests {
    use super::*;

    const R2: IntVect = IntVect([2, 2, 2]);

    #[test]
    fn weno_conservative_preserves_cell_means() {
        let cbx = IndexBox::new(IntVect::new(-1, -1, -1), IntVect::new(4, 4, 4));
        let mut coarse = FArrayBox::new(cbx, 1);
        for p in cbx.cells() {
            let v = (0.9 * p[0] as f64).sin() - 0.4 * p[1] as f64 + 0.2 * (p[2] * p[2]) as f64;
            coarse.set(p, 0, v);
        }
        let cregion = IndexBox::from_extents(4, 4, 4);
        let fregion = cregion.refine(R2);
        let mut fine = FArrayBox::new(fregion, 1);
        WenoConservativeInterp.interp(&coarse, &mut fine, fregion, R2, None, None);
        for cp in cregion.cells() {
            let children = IndexBox::new(cp, cp).refine(R2);
            let mean: f64 =
                children.cells().map(|p| fine.get(p, 0)).sum::<f64>() / 8.0;
            assert!(
                (mean - coarse.get(cp, 0)).abs() < 1e-13,
                "mean violated at {cp:?}: {mean} vs {}",
                coarse.get(cp, 0)
            );
        }
    }

    #[test]
    fn weno_conservative_exact_on_linear_fields() {
        let cbx = IndexBox::new(IntVect::new(-1, -1, -1), IntVect::new(4, 4, 4));
        let mut coarse = FArrayBox::new(cbx, 1);
        let f = |x: f64, y: f64, z: f64| 2.0 + 3.0 * x - 1.0 * y + 0.5 * z;
        for p in cbx.cells() {
            coarse.set(p, 0, f(p[0] as f64, p[1] as f64, p[2] as f64));
        }
        let cregion = IndexBox::from_extents(4, 4, 4);
        let fregion = cregion.refine(R2);
        let mut fine = FArrayBox::new(fregion, 1);
        WenoConservativeInterp.interp(&coarse, &mut fine, fregion, R2, None, None);
        for p in fregion.cells() {
            // Fine cell-average of a linear function = value at fine center,
            // expressed in coarse index coordinates.
            let expect = f(
                (p[0] as f64 + 0.5) / 2.0 - 0.5,
                (p[1] as f64 + 0.5) / 2.0 - 0.5,
                (p[2] as f64 + 0.5) / 2.0 - 0.5,
            );
            assert!(
                (fine.get(p, 0) - expect).abs() < 1e-12,
                "at {p:?}: {} vs {expect}",
                fine.get(p, 0)
            );
        }
    }

    #[test]
    fn weno_conservative_damps_slope_at_jumps() {
        // At a discontinuity the nonlinear weights pick the smooth side, so
        // the children spread stays well below the unlimited parabolic one.
        let vals = [1.0, 1.0, 10.0];
        let mut out = Vec::new();
        WenoConservativeInterp::split_pencil(&vals, &mut out);
        assert_eq!(out.len(), 2);
        // Mean preserved.
        assert!((out[0] + out[1] - 2.0 * vals[1]).abs() < 1e-13);
        // Slope collapses toward the smooth (left, zero) difference.
        assert!((out[1] - out[0]).abs() < 0.1, "spread {}", out[1] - out[0]);
    }

    #[test]
    fn weno_conservative_constant_is_exact() {
        let cbx = IndexBox::new(IntVect::new(-1, -1, -1), IntVect::new(2, 2, 2));
        let coarse = FArrayBox::filled(cbx, 2, 4.25);
        let fregion = IndexBox::from_extents(2, 2, 2).refine(R2);
        let mut fine = FArrayBox::new(fregion, 2);
        WenoConservativeInterp.interp(&coarse, &mut fine, fregion, R2, None, None);
        assert!(fine.data().iter().all(|&v| (v - 4.25).abs() < 1e-13));
    }
}
