//! `FillPatch`: ghost-cell filling within and across AMR levels.
//!
//! Adapted, as the paper's implementation is (§III-A), from AMReX's
//! `FillPatchUtil`: [`fill_patch_single_level`] handles the coarsest level
//! (same-level ghost exchange + physical boundary fill), and
//! [`fill_patch_two_levels`] additionally interpolates coarse data into fine
//! ghost cells not covered by the fine level. When the interpolator is the
//! custom curvilinear one, the coordinate MultiFab is `ParallelCopy`-ed into
//! a ghosted temporary first — the paper's global communication bottleneck.

use crate::interp::Interpolator;
use crocco_fab::plan::{CopyChunk, CopyPlan};
use crocco_fab::{boxarray::subtract_box, FArrayBox, MultiFab};
use crocco_geometry::{IndexBox, IntVect, ProblemDomain};

/// Applies physical boundary conditions to one patch (the paper's custom
/// `BC_Fill` kernel).
pub trait BoundaryFiller: Send + Sync {
    /// Fills the ghost cells of `fab` that lie outside `domain` in
    /// non-periodic directions. `valid` is the patch's valid box.
    fn fill(&self, fab: &mut FArrayBox, valid: IndexBox, domain: &ProblemDomain, time: f64);
}

/// A boundary filler that does nothing (fully periodic problems and tests).
#[derive(Clone, Copy, Debug, Default)]
pub struct NoOpBoundary;

impl BoundaryFiller for NoOpBoundary {
    fn fill(&self, _fab: &mut FArrayBox, _valid: IndexBox, _domain: &ProblemDomain, _time: f64) {}
}

/// What a FillPatch call did — the communication record priced by the
/// Summit model in the scaling studies.
#[derive(Clone, Debug, Default)]
pub struct FillPatchReport {
    /// Same-level neighbor exchange (`FillBoundary`).
    pub fb_plan: CopyPlan,
    /// Coarse→fine state gather (the state `ParallelCopy`), if two-level.
    pub pc_plan: Option<CopyPlan>,
    /// Coordinate gather for the curvilinear interpolator, if used.
    pub coord_pc_plan: Option<CopyPlan>,
    /// Number of fine ghost cells produced by interpolation.
    pub interpolated_cells: u64,
}

/// Fills ghosts at the coarsest level: neighbor exchange + physical BCs.
pub fn fill_patch_single_level(
    mf: &mut MultiFab,
    domain: &ProblemDomain,
    bc: &dyn BoundaryFiller,
    time: f64,
) -> FillPatchReport {
    let fb_plan = mf.fill_boundary(domain);
    for i in 0..mf.nfabs() {
        let valid = mf.valid_box(i);
        bc.fill(mf.fab_mut(i), valid, domain, time);
    }
    FillPatchReport {
        fb_plan,
        ..Default::default()
    }
}

/// Fills ghosts at a fine level: interpolate coarse data wherever the fine
/// level has no data, exchange fine-fine ghosts, then apply physical BCs.
///
/// `coarse_coords` / `fine_coords` must be supplied when
/// `interp.needs_coords()`; `fine_coords` must carry at least as many ghost
/// cells as `fine`.
#[allow(clippy::too_many_arguments)]
pub fn fill_patch_two_levels(
    fine: &mut MultiFab,
    coarse: &MultiFab,
    fine_domain: &ProblemDomain,
    coarse_domain: &ProblemDomain,
    ratio: IntVect,
    interp: &dyn Interpolator,
    bc: &dyn BoundaryFiller,
    coarse_bc: &dyn BoundaryFiller,
    coarse_coords: Option<&MultiFab>,
    fine_coords: Option<&MultiFab>,
    time: f64,
) -> FillPatchReport {
    let ncomp = fine.ncomp();
    let nghost = fine.nghost();
    let mut pc_plan = CopyPlan {
        chunks: Vec::new(),
        ncomp,
    };
    let mut coord_pc_plan = CopyPlan {
        chunks: Vec::new(),
        ncomp: 3,
    };
    let mut interpolated_cells = 0u64;

    // The region of index space where ghost data is *defined*: the domain,
    // extended outward in periodic directions (wrapped data exists there).
    let mut defined = fine_domain.bx;
    for d in 0..3 {
        if fine_domain.periodic[d] {
            defined = defined.grow_lo(d, nghost).grow_hi(d, nghost);
        }
    }

    for i in 0..fine.nfabs() {
        let valid = fine.valid_box(i);
        let grown = valid.grow(nghost).intersection(&defined);
        // Ghost regions not covered by the fine level (including periodic
        // images of fine patches).
        let needed = uncovered_regions(grown, fine, fine_domain);
        if needed.is_empty() {
            continue;
        }
        // Temporary coarse fab footprint: coarsened grown box + interp ghost.
        let cbox = grown.coarsen(ratio).grow(interp.coarse_ghost());
        let mut ctmp = FArrayBox::new(cbox, ncomp);
        gather(coarse, &mut ctmp, i, fine, coarse_domain, false, &mut pc_plan);
        // Physical-exterior cells of the temporary were not gathered (they
        // lie outside every coarse valid box); the coarse-level boundary
        // conditions supply them so interpolation next to walls/inflows has
        // sound source data.
        coarse_bc.fill(
            &mut ctmp,
            cbox.intersection(&coarse_domain.bx),
            coarse_domain,
            time,
        );

        let (cc_tmp, fc_ref);
        if interp.needs_coords() {
            let ccmf = coarse_coords.expect("curvilinear interp requires coarse coords");
            let fcmf = fine_coords.expect("curvilinear interp requires fine coords");
            assert!(
                fcmf.nghost() >= nghost,
                "fine coords need >= state ghost width"
            );
            let mut c = FArrayBox::new(cbox, 3);
            // Coordinates are analytic everywhere (including ghosts), so the
            // gather may read the source fabs' ghost regions too — this is
            // how physical-exterior temporary cells get correct coordinates.
            gather(ccmf, &mut c, i, fine, coarse_domain, true, &mut coord_pc_plan);
            cc_tmp = Some(c);
            fc_ref = Some(fcmf.fab(i).clone());
        } else {
            cc_tmp = None;
            fc_ref = None;
        }

        let fab = fine.fab_mut(i);
        for region in needed {
            interpolated_cells += region.num_points();
            interp.interp(
                &ctmp,
                fab,
                region,
                ratio,
                cc_tmp.as_ref(),
                fc_ref.as_ref(),
            );
        }
    }

    // Fine-fine exchange overwrites any interpolated cell that has true
    // fine data available, then physical BCs.
    let fb_plan = fine.fill_boundary(fine_domain);
    for i in 0..fine.nfabs() {
        let valid = fine.valid_box(i);
        bc.fill(fine.fab_mut(i), valid, fine_domain, time);
    }

    FillPatchReport {
        fb_plan,
        pc_plan: Some(pc_plan),
        coord_pc_plan: if interp.needs_coords() {
            Some(coord_pc_plan)
        } else {
            None
        },
        interpolated_cells,
    }
}

/// Parts of `probe` not covered by `mf`'s BoxArray or any of its periodic
/// images.
fn uncovered_regions(probe: IndexBox, mf: &MultiFab, domain: &ProblemDomain) -> Vec<IndexBox> {
    let mut remaining = vec![probe];
    for shift in domain.periodic_shifts() {
        if remaining.is_empty() {
            break;
        }
        let mut next = Vec::with_capacity(remaining.len());
        for r in remaining {
            // Boxes of the array appear shifted by `shift`.
            let hits = mf.boxarray().intersections(r.shift(-shift));
            if hits.is_empty() {
                next.push(r);
                continue;
            }
            let mut pieces = vec![r];
            for (_, overlap) in hits {
                let cut = overlap.shift(shift);
                let mut nn = Vec::with_capacity(pieces.len());
                for piece in pieces {
                    subtract_box(piece, cut, &mut nn);
                }
                pieces = nn;
            }
            next.extend(pieces);
        }
        remaining = next;
    }
    remaining
}

/// Copies into `dst_fab` (which belongs to fine patch `dst_id`) every
/// overlapping piece of `src`'s patches, with periodic wrapping, recording
/// chunks in `plan`. This is the ParallelCopy gather primitive.
///
/// With `include_ghosts` the source fabs' ghost regions are also read —
/// only sound when ghost contents are globally consistent (e.g. analytic
/// coordinates).
fn gather(
    src: &MultiFab,
    dst_fab: &mut FArrayBox,
    dst_id: usize,
    dst_mf: &MultiFab,
    src_domain: &ProblemDomain,
    include_ghosts: bool,
    plan: &mut CopyPlan,
) {
    let ncomp = dst_fab.ncomp();
    let g = if include_ghosts { src.nghost() } else { 0 };
    for shift in src_domain.periodic_shifts() {
        let probe = dst_fab.bx().shift(-shift);
        for (src_id, _) in src.boxarray().intersections(probe.grow(g)) {
            let src_cover = if include_ghosts {
                src.fab(src_id).bx()
            } else {
                src.valid_box(src_id)
            };
            let overlap_src = src_cover.intersection(&probe);
            if overlap_src.is_empty() {
                continue;
            }
            let region = overlap_src.shift(shift);
            dst_fab.copy_shifted_from(src.fab(src_id), region, shift, ncomp);
            plan.chunks.push(CopyChunk {
                src_id,
                dst_id,
                src_rank: src.distribution().owner(src_id),
                dst_rank: dst_mf.distribution().owner(dst_id),
                region,
                shift,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{CurvilinearInterp, TrilinearInterp};
    use crocco_fab::{BoxArray, DistributionMapping};
    use std::sync::Arc;

    /// Linear field in *coarse* cell-center coordinates at any level.
    fn linear_value(level: u32, p: IntVect) -> f64 {
        let scale = (1 << level) as f64;
        let x = (p[0] as f64 + 0.5) / scale;
        let y = (p[1] as f64 + 0.5) / scale;
        let z = (p[2] as f64 + 0.5) / scale;
        2.0 + 3.0 * x - 1.5 * y + 0.5 * z
    }

    fn make_level(boxes: Vec<IndexBox>, ncomp: usize, nghost: i64, level: u32) -> MultiFab {
        let ba = Arc::new(BoxArray::new(boxes));
        let dm = Arc::new(DistributionMapping::all_on_root(&ba));
        let mut mf = MultiFab::new(ba, dm, ncomp, nghost);
        for i in 0..mf.nfabs() {
            let b = mf.valid_box(i);
            for p in b.cells() {
                for c in 0..ncomp {
                    let v = linear_value(level, p) + c as f64;
                    mf.fab_mut(i).set(p, c, v);
                }
            }
        }
        mf
    }

    #[test]
    fn single_level_fillpatch_fills_interior_ghosts() {
        let domain_box = IndexBox::from_extents(16, 8, 8);
        let domain = ProblemDomain::non_periodic(domain_box);
        let mut mf = make_level(
            vec![
                IndexBox::new(IntVect::new(0, 0, 0), IntVect::new(7, 7, 7)),
                IndexBox::new(IntVect::new(8, 0, 0), IntVect::new(15, 7, 7)),
            ],
            1,
            2,
            0,
        );
        let report = fill_patch_single_level(&mut mf, &domain, &NoOpBoundary, 0.0);
        assert!(!report.fb_plan.chunks.is_empty());
        // Ghosts of patch 0 inside patch 1 must match the linear field.
        for p in IndexBox::new(IntVect::new(8, 0, 0), IntVect::new(9, 7, 7)).cells() {
            assert_eq!(mf.fab(0).get(p, 0), linear_value(0, p));
        }
    }

    #[test]
    fn two_level_fillpatch_interpolates_uncovered_ghosts() {
        // Coarse level covers the whole domain; one fine patch in the middle.
        let cdom_box = IndexBox::from_extents(16, 16, 8);
        let cdomain = ProblemDomain::non_periodic(cdom_box);
        let fdomain = cdomain.refine(IntVect::splat(2));
        let coarse = make_level(
            vec![cdom_box],
            1,
            2,
            0,
        );
        let mut fine = make_level(
            vec![IndexBox::new(IntVect::new(8, 8, 4), IntVect::new(23, 23, 11))],
            1,
            2,
            1,
        );
        let report = fill_patch_two_levels(
            &mut fine,
            &coarse,
            &fdomain,
            &cdomain,
            IntVect::splat(2),
            &TrilinearInterp,
            &NoOpBoundary,
            &NoOpBoundary,
            None,
            None,
            0.0,
        );
        assert!(report.interpolated_cells > 0);
        assert!(report.pc_plan.is_some());
        assert!(report.coord_pc_plan.is_none());
        // Every ghost cell (all uncovered by fine data, all interior to the
        // fine domain) must now hold the linear field — trilinear is exact
        // on linear data.
        let valid = fine.valid_box(0);
        for p in valid.grow(2).cells() {
            if valid.contains(p) {
                continue;
            }
            let got = fine.fab(0).get(p, 0);
            let expect = linear_value(1, p);
            assert!(
                (got - expect).abs() < 1e-12,
                "ghost {p:?}: {got} vs {expect}"
            );
        }
    }

    #[test]
    fn fine_fine_data_wins_over_interpolation() {
        // Two adjacent fine patches: the shared face ghosts must come from
        // the neighbor (exact), not interpolation.
        let cdom_box = IndexBox::from_extents(16, 8, 8);
        let cdomain = ProblemDomain::non_periodic(cdom_box);
        let fdomain = cdomain.refine(IntVect::splat(2));
        let coarse = make_level(vec![cdom_box], 1, 2, 0);
        let mut fine = make_level(
            vec![
                IndexBox::new(IntVect::new(0, 0, 0), IntVect::new(15, 15, 15)),
                IndexBox::new(IntVect::new(16, 0, 0), IntVect::new(31, 15, 15)),
            ],
            1,
            2,
            1,
        );
        // Poison fine ghosts to catch unfilled cells.
        let poison = -1e30;
        for i in 0..2 {
            let valid = fine.valid_box(i);
            let all = fine.fab(i).bx();
            for p in all.cells() {
                if !valid.contains(p) {
                    fine.fab_mut(i).set(p, 0, poison);
                }
            }
        }
        fill_patch_two_levels(
            &mut fine,
            &coarse,
            &fdomain,
            &cdomain,
            IntVect::splat(2),
            &TrilinearInterp,
            &NoOpBoundary,
            &NoOpBoundary,
            None,
            None,
            0.0,
        );
        // The ghost column of patch 0 at x=16..17 lies inside patch 1: exact.
        for p in IndexBox::new(IntVect::new(16, 0, 0), IntVect::new(17, 15, 15)).cells() {
            assert_eq!(fine.fab(0).get(p, 0), linear_value(1, p));
        }
        // No poison left anywhere interior to the domain.
        for i in 0..2 {
            let valid = fine.valid_box(i);
            for p in valid.grow(2).intersection(&fdomain.bx).cells() {
                assert!(fine.fab(i).get(p, 0) > poison / 2.0, "unfilled {p:?}");
            }
        }
    }

    #[test]
    fn curvilinear_interp_triggers_coordinate_parallel_copy() {
        let cdom_box = IndexBox::from_extents(16, 16, 8);
        let cdomain = ProblemDomain::non_periodic(cdom_box);
        let fdomain = cdomain.refine(IntVect::splat(2));
        let coarse = make_level(vec![cdom_box], 1, 2, 0);
        let mut fine = make_level(
            vec![IndexBox::new(IntVect::new(8, 8, 4), IntVect::new(23, 23, 11))],
            1,
            2,
            1,
        );
        // Uniform physical coordinates at both levels.
        let mut ccoords = MultiFab::new(
            coarse.boxarray().clone(),
            coarse.distribution().clone(),
            3,
            2,
        );
        for i in 0..ccoords.nfabs() {
            let b = ccoords.fab(i).bx();
            for p in b.cells() {
                for d in 0..3 {
                    ccoords.fab_mut(i).set(p, d, p[d] as f64 + 0.5);
                }
            }
        }
        let mut fcoords =
            MultiFab::new(fine.boxarray().clone(), fine.distribution().clone(), 3, 2);
        for i in 0..fcoords.nfabs() {
            let b = fcoords.fab(i).bx();
            for p in b.cells() {
                for d in 0..3 {
                    fcoords.fab_mut(i).set(p, d, (p[d] as f64 + 0.5) / 2.0);
                }
            }
        }
        let report = fill_patch_two_levels(
            &mut fine,
            &coarse,
            &fdomain,
            &cdomain,
            IntVect::splat(2),
            &CurvilinearInterp,
            &NoOpBoundary,
            &NoOpBoundary,
            Some(&ccoords),
            Some(&fcoords),
            0.0,
        );
        let cpc = report.coord_pc_plan.expect("coordinate ParallelCopy missing");
        assert!(!cpc.chunks.is_empty());
        assert_eq!(cpc.ncomp, 3);
        // And the interpolation is exact on the linear field.
        let valid = fine.valid_box(0);
        for p in valid.grow(2).cells() {
            if valid.contains(p) {
                continue;
            }
            assert!((fine.fab(0).get(p, 0) - linear_value(1, p)).abs() < 1e-12);
        }
    }

    #[test]
    fn periodic_ghosts_use_wrapped_coarse_data() {
        // z-periodic domain; fine patch spans full z, so its z ghosts wrap.
        let cdom_box = IndexBox::from_extents(16, 16, 4);
        let cdomain = ProblemDomain::new(cdom_box, [false, false, true]);
        let fdomain = cdomain.refine(IntVect::splat(2));
        let coarse = make_level(vec![cdom_box], 1, 2, 0);
        let mut fine = make_level(
            vec![IndexBox::new(IntVect::new(8, 8, 0), IntVect::new(23, 23, 7))],
            1,
            2,
            1,
        );
        fill_patch_two_levels(
            &mut fine,
            &coarse,
            &fdomain,
            &cdomain,
            IntVect::splat(2),
            &TrilinearInterp,
            &NoOpBoundary,
            &NoOpBoundary,
            None,
            None,
            0.0,
        );
        // A z-ghost below the domain must hold the wrapped fine value.
        let p = IntVect::new(12, 12, -1);
        let wrapped = IntVect::new(12, 12, 7);
        assert!(
            (fine.fab(0).get(p, 0) - linear_value(1, wrapped)).abs() < 1e-12,
            "periodic ghost {p:?}"
        );
    }
}
