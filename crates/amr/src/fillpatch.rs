//! `FillPatch`: ghost-cell filling within and across AMR levels.
//!
//! Adapted, as the paper's implementation is (§III-A), from AMReX's
//! `FillPatchUtil`: [`fill_patch_single_level`] handles the coarsest level
//! (same-level ghost exchange + physical boundary fill), and
//! [`fill_patch_two_levels`] additionally interpolates coarse data into fine
//! ghost cells not covered by the fine level. When the interpolator is the
//! custom curvilinear one, the coordinate MultiFab is `ParallelCopy`-ed into
//! a ghosted temporary first — the paper's global communication bottleneck.

use crate::interp::Interpolator;
use crocco_fab::plan::{CopyChunk, CopyPlan};
use crocco_fab::plan_cache::{CachedPlan, PlanCache, PlanKey, PlanOp};
use crocco_fab::{
    boxarray::subtract_box, BoxArray, DistributionMapping, FArrayBox, FabRw, MultiFab,
};
use bytes::Bytes;
use crocco_geometry::{IndexBox, IntVect, ProblemDomain};
use crocco_runtime::parallel_for_each_mut;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Applies physical boundary conditions to one patch (the paper's custom
/// `BC_Fill` kernel).
pub trait BoundaryFiller: Send + Sync {
    /// Fills the ghost cells of `fab` that lie outside `domain` in
    /// non-periodic directions, writing through a raw view — the form the
    /// task-graph halo tasks call while other tasks concurrently read the
    /// same fab's valid cells. `valid` is the patch's valid box. The
    /// implementation must write only outside-domain ghost cells (it may
    /// read any cell of `fab`).
    fn fill_view(&self, fab: &mut FabRw<'_>, valid: IndexBox, domain: &ProblemDomain, time: f64);

    /// [`fill_view`](Self::fill_view) over an exclusively borrowed fab — the
    /// barrier path. Implementors only provide `fill_view`; call sites that
    /// hold a `&mut FArrayBox` keep using this adapter.
    fn fill(&self, fab: &mut FArrayBox, valid: IndexBox, domain: &ProblemDomain, time: f64) {
        crocco_fab::with_rw(fab, |rw| self.fill_view(rw, valid, domain, time));
    }
}

/// A boundary filler that does nothing (fully periodic problems and tests).
#[derive(Clone, Copy, Debug, Default)]
pub struct NoOpBoundary;

impl BoundaryFiller for NoOpBoundary {
    fn fill_view(
        &self,
        _fab: &mut FabRw<'_>,
        _valid: IndexBox,
        _domain: &ProblemDomain,
        _time: f64,
    ) {
    }
}

/// What a FillPatch call did — the communication record priced by the
/// Summit model in the scaling studies. Plans are shared [`CachedPlan`]s:
/// when a [`PlanCache`] is supplied they alias the cache entries (stats come
/// for free), otherwise they wrap plans built for this call only.
#[derive(Clone, Debug, Default)]
pub struct FillPatchReport {
    /// Same-level neighbor exchange (`FillBoundary`).
    pub fb_plan: Arc<CachedPlan>,
    /// Coarse→fine state gather (the state `ParallelCopy`), if two-level.
    pub pc_plan: Option<Arc<CachedPlan>>,
    /// Coordinate gather for the curvilinear interpolator, if used.
    pub coord_pc_plan: Option<Arc<CachedPlan>>,
    /// Number of fine ghost cells produced by interpolation.
    pub interpolated_cells: u64,
}

/// Execution options for FillPatch: where to memoize communication plans and
/// how many worker threads the data motion / interpolation may use.
///
/// The default (`cache: None, threads: 1`) reproduces the original serial,
/// plan-per-call behavior exactly.
#[derive(Clone, Copy, Debug)]
pub struct FillOpts<'a> {
    /// Plan memoization table (normally the hierarchy's); `None` rebuilds
    /// plans every call.
    pub cache: Option<&'a PlanCache>,
    /// Worker threads for plan execution, interpolation and BC fills.
    pub threads: usize,
}

impl Default for FillOpts<'_> {
    fn default() -> Self {
        FillOpts {
            cache: None,
            threads: 1,
        }
    }
}

/// Aux-cache tag for the two-level state-gather plan.
const AUX_TWO_LEVEL_STATE: u32 = 1;
/// Aux-cache tag for the two-level coordinate-gather plan.
const AUX_TWO_LEVEL_COORDS: u32 = 2;

/// Packs the remaining inputs the two-level planner reads into the key's
/// client bits: interpolator coarse ghost, coordinate source ghost width and
/// the refinement ratio (each well below 256 in practice).
/// Coarse old-time data for a time-interpolated two-level fill (subcycling,
/// docs/ARCHITECTURE.md §Subcycling): the coarse *old* state and the blend
/// factor `alpha` — the fill time's position in the coarse `[old, new]`
/// interval (0 = old state, 1 = new state). The gather scratch becomes
/// `alpha·new + (1−alpha)·old`, gathered over the **same cached chunk list**
/// as the new state, so time interpolation adds no plan-cache entries and
/// the plan keys stay valid. `remote_old` carries the landed old-state
/// payloads on the owned-data path (the same global-chunk-index keying as
/// `remote_state`); `None` means every old chunk is locally readable.
#[derive(Clone, Copy)]
pub struct CoarseTimeInterp<'a> {
    /// Coarse state at the old time level (valid cells are read; ghosts are
    /// never gathered).
    pub old: &'a MultiFab,
    /// Blend factor in `[0, 1]`: `alpha = (t_fill − t_old) / (t_new − t_old)`.
    pub alpha: f64,
    /// Landed old-state gather chunks for the owned-data distributed path.
    pub remote_old: Option<&'a HashMap<usize, Bytes>>,
}

fn two_level_aux(coarse_ghost: i64, ratio: IntVect, coord_nghost: i64) -> u64 {
    (coarse_ghost as u64 & 0xff)
        | ((coord_nghost as u64 & 0xff) << 8)
        | ((ratio[0] as u64 & 0xff) << 16)
        | ((ratio[1] as u64 & 0xff) << 24)
        | ((ratio[2] as u64 & 0xff) << 32)
}

/// Fills ghosts at the coarsest level: neighbor exchange + physical BCs.
pub fn fill_patch_single_level(
    mf: &mut MultiFab,
    domain: &ProblemDomain,
    bc: &dyn BoundaryFiller,
    time: f64,
) -> FillPatchReport {
    fill_patch_single_level_with(mf, domain, bc, time, FillOpts::default())
}

/// [`fill_patch_single_level`] with explicit [`FillOpts`].
pub fn fill_patch_single_level_with(
    mf: &mut MultiFab,
    domain: &ProblemDomain,
    bc: &dyn BoundaryFiller,
    time: f64,
    opts: FillOpts<'_>,
) -> FillPatchReport {
    let fb_plan = match opts.cache {
        Some(cache) => mf.fill_boundary_cached(domain, cache, opts.threads),
        None => Arc::new(CachedPlan::new(mf.fill_boundary(domain))),
    };
    let ba = mf.boxarray().clone();
    parallel_for_each_mut(mf.fabs_mut(), opts.threads, |i, fab| {
        bc.fill(fab, ba.get(i), domain, time);
    });
    // The BC fill above went through `fabs_mut` (which conservatively marks
    // the data mutated); the whole ghost shell is now in its final state.
    mf.mark_ghosts_filled();
    FillPatchReport {
        fb_plan,
        ..Default::default()
    }
}

/// Fills ghosts at a fine level: interpolate coarse data wherever the fine
/// level has no data, exchange fine-fine ghosts, then apply physical BCs.
///
/// `coarse_coords` / `fine_coords` must be supplied when
/// `interp.needs_coords()`; `fine_coords` must carry at least as many ghost
/// cells as `fine`.
#[allow(clippy::too_many_arguments)]
pub fn fill_patch_two_levels(
    fine: &mut MultiFab,
    coarse: &MultiFab,
    fine_domain: &ProblemDomain,
    coarse_domain: &ProblemDomain,
    ratio: IntVect,
    interp: &dyn Interpolator,
    bc: &dyn BoundaryFiller,
    coarse_bc: &dyn BoundaryFiller,
    coarse_coords: Option<&MultiFab>,
    fine_coords: Option<&MultiFab>,
    time: f64,
) -> FillPatchReport {
    fill_patch_two_levels_with(
        fine,
        coarse,
        fine_domain,
        coarse_domain,
        ratio,
        interp,
        bc,
        coarse_bc,
        coarse_coords,
        fine_coords,
        time,
        None,
        FillOpts::default(),
    )
}

/// [`fill_patch_two_levels`] with explicit [`FillOpts`]: the uncovered-region
/// geometry and both gather plans are memoized in the cache (they only depend
/// on the grids), and the per-patch gather + interpolation loop fans out over
/// `opts.threads` workers.
#[allow(clippy::too_many_arguments)]
pub fn fill_patch_two_levels_with(
    fine: &mut MultiFab,
    coarse: &MultiFab,
    fine_domain: &ProblemDomain,
    coarse_domain: &ProblemDomain,
    ratio: IntVect,
    interp: &dyn Interpolator,
    bc: &dyn BoundaryFiller,
    coarse_bc: &dyn BoundaryFiller,
    coarse_coords: Option<&MultiFab>,
    fine_coords: Option<&MultiFab>,
    time: f64,
    time_interp: Option<CoarseTimeInterp<'_>>,
    opts: FillOpts<'_>,
) -> FillPatchReport {
    let plans = resolve_two_level_plans(
        fine,
        coarse,
        fine_domain,
        coarse_domain,
        ratio,
        interp,
        coarse_coords,
        fine_coords,
        opts.cache,
    );

    // Per-patch gather + interpolation. Patches are independent (each writes
    // only its own fab), so the loop fans out over the worker pool.
    let interpolated = AtomicU64::new(0);
    {
        let plans = &plans;
        parallel_for_each_mut(fine.fabs_mut(), opts.threads, |i, fab| {
            let cells = crocco_fab::with_rw(fab, |rw| {
                fill_two_level_patch(
                    i,
                    rw,
                    plans,
                    coarse,
                    coarse_coords,
                    fine_coords.map(|m| m.fab(i)),
                    coarse_domain,
                    ratio,
                    interp,
                    coarse_bc,
                    time,
                    time_interp,
                )
            });
            interpolated.fetch_add(cells, Ordering::Relaxed);
        });
    }

    // Fine-fine exchange overwrites any interpolated cell that has true
    // fine data available, then physical BCs.
    let fb_plan = match opts.cache {
        Some(cache) => fine.fill_boundary_cached(fine_domain, cache, opts.threads),
        None => Arc::new(CachedPlan::new(fine.fill_boundary(fine_domain))),
    };
    let ba = fine.boxarray().clone();
    parallel_for_each_mut(fine.fabs_mut(), opts.threads, |i, fab| {
        bc.fill(fab, ba.get(i), fine_domain, time);
    });
    // Interpolation + fine-fine exchange + BCs complete: ghosts coherent.
    fine.mark_ghosts_filled();

    FillPatchReport {
        fb_plan,
        pc_plan: Some(plans.state.state_plan().clone()),
        coord_pc_plan: plans.coords.as_ref().map(|cg| cg.coord_plan().clone()),
        interpolated_cells: interpolated.into_inner(),
    }
}

/// The resolved (possibly cache-shared) plans behind one two-level
/// FillPatch: the uncovered-region geometry with its state-gather plan, and
/// the coordinate-gather companion when the interpolator reads coordinates.
/// Resolution is pure plan lookup/construction — no field data moves.
pub struct TwoLevelPlans {
    /// Gather geometry + coarse→fine state-gather plan.
    pub state: Arc<TwoLevelPlan>,
    /// Coordinate-gather companion (coordinate-reading interpolators only).
    pub coords: Option<Arc<CoordGatherPlan>>,
}

/// Resolves the two-level plans for a `fine`/`coarse` level pair, through
/// `cache` when supplied (the same keys [`fill_patch_two_levels_with`] uses,
/// so barrier and task-graph paths share entries).
#[allow(clippy::too_many_arguments)]
pub fn resolve_two_level_plans(
    fine: &MultiFab,
    coarse: &MultiFab,
    fine_domain: &ProblemDomain,
    coarse_domain: &ProblemDomain,
    ratio: IntVect,
    interp: &dyn Interpolator,
    coarse_coords: Option<&MultiFab>,
    fine_coords: Option<&MultiFab>,
    cache: Option<&PlanCache>,
) -> TwoLevelPlans {
    let ncomp = fine.ncomp();
    let nghost = fine.nghost();
    let coarse_ghost = interp.coarse_ghost();

    // The cache key carries the fine domain (which fixes `defined` and the
    // periodic images) and the ratio; the planner derives everything else
    // from the grids, so a coarse domain inconsistent with `fine_domain /
    // ratio` would alias — assert the standard AMR invariant instead.
    debug_assert_eq!(
        coarse_domain.bx,
        fine_domain.bx.coarsen(ratio),
        "coarse domain must be the fine domain coarsened by the ratio"
    );

    let tl: Arc<TwoLevelPlan> = match cache {
        Some(cache) => {
            let key = PlanKey {
                op: PlanOp::Aux(AUX_TWO_LEVEL_STATE),
                aux: two_level_aux(coarse_ghost, ratio, 0),
                ..PlanKey::parallel_copy(
                    coarse.boxarray(),
                    coarse.distribution(),
                    fine.boxarray(),
                    fine.distribution(),
                    fine_domain,
                    nghost,
                    ncomp,
                )
            };
            cache.get_or_build_aux(key, || {
                build_two_level_plan(fine, coarse, fine_domain, coarse_domain, ratio, coarse_ghost)
            })
        }
        None => Arc::new(build_two_level_plan(
            fine,
            coarse,
            fine_domain,
            coarse_domain,
            ratio,
            coarse_ghost,
        )),
    };

    let coord_plan: Option<Arc<CoordGatherPlan>> = if interp.needs_coords() {
        let ccmf = coarse_coords.expect("curvilinear interp requires coarse coords");
        let fcmf = fine_coords.expect("curvilinear interp requires fine coords");
        assert!(
            fcmf.nghost() >= nghost,
            "fine coords need >= state ghost width"
        );
        Some(match cache {
            Some(cache) => {
                let key = PlanKey {
                    op: PlanOp::Aux(AUX_TWO_LEVEL_COORDS),
                    aux: two_level_aux(coarse_ghost, ratio, ccmf.nghost()),
                    ..PlanKey::parallel_copy(
                        ccmf.boxarray(),
                        ccmf.distribution(),
                        fine.boxarray(),
                        fine.distribution(),
                        fine_domain,
                        nghost,
                        3,
                    )
                };
                cache.get_or_build_aux(key, || {
                    build_coord_gather(ccmf, &tl, fine.distribution(), coarse_domain)
                })
            }
            None => Arc::new(build_coord_gather(
                ccmf,
                &tl,
                fine.distribution(),
                coarse_domain,
            )),
        })
    } else {
        None
    };

    TwoLevelPlans {
        state: tl,
        coords: coord_plan,
    }
}

/// The coarse→fine part of one fine patch's ghost fill: gather the coarse
/// temporary, apply coarse boundary conditions, interpolate every uncovered
/// region. Returns the number of interpolated cells.
///
/// Writes through a [`FabRw`] view so the task-graph path can run it inside
/// a halo task while other tasks read the same fab's valid cells; each
/// region is interpolated into an owned scratch fab and copied in, which is
/// bitwise-identical to interpolating in place (every interpolator writes
/// exactly the requested region and never reads destination data).
#[allow(clippy::too_many_arguments)]
pub fn fill_two_level_patch(
    i: usize,
    dst: &mut FabRw<'_>,
    plans: &TwoLevelPlans,
    coarse: &MultiFab,
    coarse_coords: Option<&MultiFab>,
    fine_coords_fab: Option<&FArrayBox>,
    coarse_domain: &ProblemDomain,
    ratio: IntVect,
    interp: &dyn Interpolator,
    coarse_bc: &dyn BoundaryFiller,
    time: f64,
    time_interp: Option<CoarseTimeInterp<'_>>,
) -> u64 {
    fill_two_level_patch_with_remote(
        i,
        dst,
        plans,
        coarse,
        coarse_coords,
        fine_coords_fab,
        coarse_domain,
        ratio,
        interp,
        coarse_bc,
        time,
        time_interp,
        None,
        None,
    )
}

/// [`fill_two_level_patch`] for the owned-data distributed path: gather
/// chunks whose coarse source patch lives on another rank are assembled
/// from pre-exchanged wire payloads instead of local fab reads.
///
/// `remote_state` / `remote_coords` map *global chunk indices* of the
/// state-gather and coordinate-gather plans to landed
/// [`crocco_fab::owned::pack_chunk`] payloads (the result of
/// [`crocco_fab::owned::exchange_chunks`] over the same chunk lists). A
/// chunk found in the map is unpacked; any other chunk copies locally —
/// bitwise the same bytes either way, so this function is an exact drop-in
/// for the replicated gather. With both maps `None` every chunk must be
/// locally readable (the replicated mode).
#[allow(clippy::too_many_arguments)]
pub fn fill_two_level_patch_with_remote(
    i: usize,
    dst: &mut FabRw<'_>,
    plans: &TwoLevelPlans,
    coarse: &MultiFab,
    coarse_coords: Option<&MultiFab>,
    fine_coords_fab: Option<&FArrayBox>,
    coarse_domain: &ProblemDomain,
    ratio: IntVect,
    interp: &dyn Interpolator,
    coarse_bc: &dyn BoundaryFiller,
    time: f64,
    time_interp: Option<CoarseTimeInterp<'_>>,
    remote_state: Option<&HashMap<usize, Bytes>>,
    remote_coords: Option<&HashMap<usize, Bytes>>,
) -> u64 {
    let tl = &*plans.state;
    let needed = &tl.needed[i];
    if needed.is_empty() {
        return 0;
    }
    let ncomp = tl.state.plan.ncomp;
    let cbox = tl.cbox[i];
    let mut ctmp = FArrayBox::new(cbox, ncomp);
    let (s, e) = tl.ranges[i];
    execute_gather_with_remote(
        coarse,
        &mut ctmp,
        &tl.state.plan.chunks[s..e],
        s,
        ncomp,
        remote_state,
    );
    // Time interpolation (subcycling): gather the coarse *old* state over
    // the same chunk list and blend `alpha·new + (1−alpha)·old` in place.
    // `alpha == 1.0` skips the gather entirely, leaving the path bitwise
    // what a plain fill produces.
    if let Some(ti) = time_interp {
        if ti.alpha != 1.0 {
            let mut cold = FArrayBox::new(cbox, ncomp);
            execute_gather_with_remote(
                ti.old,
                &mut cold,
                &tl.state.plan.chunks[s..e],
                s,
                ncomp,
                ti.remote_old,
            );
            let a = ti.alpha;
            for (n, o) in ctmp.data_mut().iter_mut().zip(cold.data()) {
                *n = a * *n + (1.0 - a) * *o;
            }
        }
    }
    // Physical-exterior cells of the temporary were not gathered
    // (they lie outside every coarse valid box); the coarse-level
    // boundary conditions supply them so interpolation next to
    // walls/inflows has sound source data.
    coarse_bc.fill(
        &mut ctmp,
        cbox.intersection(&coarse_domain.bx),
        coarse_domain,
        time,
    );

    let cc_tmp = plans.coords.as_deref().map(|cg| {
        let ccmf = coarse_coords.expect("coord plan implies coarse coords");
        let mut c = FArrayBox::new(cbox, 3);
        let (cs, ce) = cg.ranges[i];
        execute_gather_with_remote(
            ccmf,
            &mut c,
            &cg.coords.plan.chunks[cs..ce],
            cs,
            3,
            remote_coords,
        );
        c
    });
    let fc = if plans.coords.is_some() {
        fine_coords_fab
    } else {
        None
    };

    let mut cells = 0u64;
    for region in needed {
        cells += region.num_points();
        let mut scratch = FArrayBox::new(*region, ncomp);
        interp.interp(&ctmp, &mut scratch, *region, ratio, cc_tmp.as_ref(), fc);
        dst.copy_region_from(&scratch, *region);
    }
    cells
}

/// The memoized geometry of one two-level FillPatch: which ghost regions of
/// each fine patch need interpolation, the coarse temporary's footprint, and
/// the chunk list of the coarse→fine state gather (the `ParallelCopy`).
/// Rebuilt only when the grids change.
#[derive(Debug)]
pub struct TwoLevelPlan {
    /// Per-patch ghost regions not covered by fine data.
    needed: Vec<Vec<IndexBox>>,
    /// Per-patch coarse temporary box (meaningful where `needed` is not
    /// empty).
    cbox: Vec<IndexBox>,
    /// The state-gather plan; chunk `dst_id`s are fine patch indices.
    state: Arc<CachedPlan>,
    /// Per-patch `[start, end)` ranges into `state.plan.chunks`.
    ranges: Vec<(usize, usize)>,
}

impl TwoLevelPlan {
    /// The state-gather plan (for communication accounting).
    pub fn state_plan(&self) -> &Arc<CachedPlan> {
        &self.state
    }
}

/// The memoized coordinate-gather companion of a [`TwoLevelPlan`] (only
/// built for coordinate-reading interpolators).
#[derive(Debug)]
pub struct CoordGatherPlan {
    /// The coordinate-gather plan (3 components).
    coords: Arc<CachedPlan>,
    /// Per-patch `[start, end)` ranges into `coords.plan.chunks`.
    ranges: Vec<(usize, usize)>,
}

impl CoordGatherPlan {
    /// The coordinate-gather plan (for communication accounting).
    pub fn coord_plan(&self) -> &Arc<CachedPlan> {
        &self.coords
    }
}

/// Plans the coarse→fine gathers for every fine patch. Pure geometry — no
/// data moves here.
fn build_two_level_plan(
    fine: &MultiFab,
    coarse: &MultiFab,
    fine_domain: &ProblemDomain,
    coarse_domain: &ProblemDomain,
    ratio: IntVect,
    coarse_ghost: i64,
) -> TwoLevelPlan {
    let ncomp = fine.ncomp();
    let nghost = fine.nghost();
    // The region of index space where ghost data is *defined*: the domain,
    // extended outward in periodic directions (wrapped data exists there).
    let mut defined = fine_domain.bx;
    for d in 0..3 {
        if fine_domain.periodic[d] {
            defined = defined.grow_lo(d, nghost).grow_hi(d, nghost);
        }
    }
    let n = fine.nfabs();
    let mut needed = Vec::with_capacity(n);
    let mut cbox = Vec::with_capacity(n);
    let mut ranges = Vec::with_capacity(n);
    let mut chunks = Vec::new();
    for i in 0..n {
        let valid = fine.valid_box(i);
        let grown = valid.grow(nghost).intersection(&defined);
        // Ghost regions not covered by the fine level (including periodic
        // images of fine patches).
        let need = uncovered_regions(grown, fine.boxarray(), fine_domain);
        // Temporary coarse fab footprint: coarsened grown box + interp ghost.
        let cb = grown.coarsen(ratio).grow(coarse_ghost);
        let start = chunks.len();
        if !need.is_empty() {
            plan_gather(
                coarse.boxarray(),
                coarse.distribution(),
                coarse.nghost(),
                cb,
                i,
                fine.distribution().owner(i),
                coarse_domain,
                false,
                &mut chunks,
            );
        }
        needed.push(need);
        cbox.push(cb);
        ranges.push((start, chunks.len()));
    }
    TwoLevelPlan {
        needed,
        cbox,
        state: Arc::new(CachedPlan::new(CopyPlan { chunks, ncomp })),
        ranges,
    }
}

/// Plans the coordinate gathers matching `tl`'s patch footprints. The source
/// fabs' ghost regions are also read (`include_ghosts`) — sound because
/// coordinates are analytic everywhere, and required so physical-exterior
/// temporary cells get correct coordinates.
fn build_coord_gather(
    ccmf: &MultiFab,
    tl: &TwoLevelPlan,
    fine_dm: &DistributionMapping,
    coarse_domain: &ProblemDomain,
) -> CoordGatherPlan {
    let n = tl.needed.len();
    let mut ranges = Vec::with_capacity(n);
    let mut chunks = Vec::new();
    for i in 0..n {
        let start = chunks.len();
        if !tl.needed[i].is_empty() {
            plan_gather(
                ccmf.boxarray(),
                ccmf.distribution(),
                ccmf.nghost(),
                tl.cbox[i],
                i,
                fine_dm.owner(i),
                coarse_domain,
                true,
                &mut chunks,
            );
        }
        ranges.push((start, chunks.len()));
    }
    CoordGatherPlan {
        coords: Arc::new(CachedPlan::new(CopyPlan { chunks, ncomp: 3 })),
        ranges,
    }
}

/// Parts of `probe` not covered by `ba` or any of its periodic images.
fn uncovered_regions(probe: IndexBox, ba: &BoxArray, domain: &ProblemDomain) -> Vec<IndexBox> {
    let mut remaining = vec![probe];
    for shift in domain.periodic_shifts() {
        if remaining.is_empty() {
            break;
        }
        let mut next = Vec::with_capacity(remaining.len());
        for r in remaining {
            // Boxes of the array appear shifted by `shift`.
            let hits = ba.intersections(r.shift(-shift));
            if hits.is_empty() {
                next.push(r);
                continue;
            }
            let mut pieces = vec![r];
            for (_, overlap) in hits {
                let cut = overlap.shift(shift);
                let mut nn = Vec::with_capacity(pieces.len());
                for piece in pieces {
                    subtract_box(piece, cut, &mut nn);
                }
                pieces = nn;
            }
            next.extend(pieces);
        }
        remaining = next;
    }
    remaining
}

/// Plans the copy of every overlapping piece of `src_ba`'s patches into a
/// destination box `dst_box` (fine patch `dst_id`'s coarse temporary), with
/// periodic wrapping. This is the ParallelCopy gather primitive; execution
/// is [`execute_gather`].
///
/// With `include_ghosts` the source fabs' ghost regions are also read —
/// only sound when ghost contents are globally consistent (e.g. analytic
/// coordinates).
#[allow(clippy::too_many_arguments)]
fn plan_gather(
    src_ba: &BoxArray,
    src_dm: &DistributionMapping,
    src_nghost: i64,
    dst_box: IndexBox,
    dst_id: usize,
    dst_rank: usize,
    src_domain: &ProblemDomain,
    include_ghosts: bool,
    chunks: &mut Vec<CopyChunk>,
) {
    let g = if include_ghosts { src_nghost } else { 0 };
    for shift in src_domain.periodic_shifts() {
        let probe = dst_box.shift(-shift);
        for (src_id, _) in src_ba.intersections(probe.grow(g)) {
            let src_cover = if include_ghosts {
                src_ba.get(src_id).grow(src_nghost)
            } else {
                src_ba.get(src_id)
            };
            let overlap_src = src_cover.intersection(&probe);
            if overlap_src.is_empty() {
                continue;
            }
            chunks.push(CopyChunk {
                src_id,
                dst_id,
                src_rank: src_dm.owner(src_id),
                dst_rank,
                region: overlap_src.shift(shift),
                shift,
            });
        }
    }
}

/// Executes gather chunks planned by [`plan_gather`]: for each chunk,
/// `dst_fab[region] = src.fab(src_id)[region - shift]`. A chunk whose
/// *global* index (`base + position`) appears in `remote` unpacks the landed
/// wire payload instead of reading the local fab — payload unpack and local
/// copy write identical bytes (component-major le-`f64` round-trip), so the
/// assembled temporary is bitwise-independent of which path each chunk took.
fn execute_gather_with_remote(
    src: &MultiFab,
    dst_fab: &mut FArrayBox,
    chunks: &[CopyChunk],
    base: usize,
    ncomp: usize,
    remote: Option<&HashMap<usize, Bytes>>,
) {
    for (k, c) in chunks.iter().enumerate() {
        if let Some(payload) = remote.and_then(|m| m.get(&(base + k))) {
            crocco_fab::owned::unpack_chunk_into(dst_fab, c.region, ncomp, payload);
        } else {
            dst_fab.copy_shifted_from(src.fab(c.src_id), c.region, c.shift, ncomp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{CurvilinearInterp, TrilinearInterp};
    use crocco_fab::{BoxArray, DistributionMapping};
    use std::sync::Arc;

    /// Linear field in *coarse* cell-center coordinates at any level.
    fn linear_value(level: u32, p: IntVect) -> f64 {
        let scale = (1 << level) as f64;
        let x = (p[0] as f64 + 0.5) / scale;
        let y = (p[1] as f64 + 0.5) / scale;
        let z = (p[2] as f64 + 0.5) / scale;
        2.0 + 3.0 * x - 1.5 * y + 0.5 * z
    }

    fn make_level(boxes: Vec<IndexBox>, ncomp: usize, nghost: i64, level: u32) -> MultiFab {
        let ba = Arc::new(BoxArray::new(boxes));
        let dm = Arc::new(DistributionMapping::all_on_root(&ba));
        let mut mf = MultiFab::new(ba, dm, ncomp, nghost);
        for i in 0..mf.nfabs() {
            let b = mf.valid_box(i);
            for p in b.cells() {
                for c in 0..ncomp {
                    let v = linear_value(level, p) + c as f64;
                    mf.fab_mut(i).set(p, c, v);
                }
            }
        }
        mf
    }

    #[test]
    fn single_level_fillpatch_fills_interior_ghosts() {
        let domain_box = IndexBox::from_extents(16, 8, 8);
        let domain = ProblemDomain::non_periodic(domain_box);
        let mut mf = make_level(
            vec![
                IndexBox::new(IntVect::new(0, 0, 0), IntVect::new(7, 7, 7)),
                IndexBox::new(IntVect::new(8, 0, 0), IntVect::new(15, 7, 7)),
            ],
            1,
            2,
            0,
        );
        let report = fill_patch_single_level(&mut mf, &domain, &NoOpBoundary, 0.0);
        assert!(!report.fb_plan.plan.chunks.is_empty());
        // Ghosts of patch 0 inside patch 1 must match the linear field.
        for p in IndexBox::new(IntVect::new(8, 0, 0), IntVect::new(9, 7, 7)).cells() {
            assert_eq!(mf.fab(0).get(p, 0), linear_value(0, p));
        }
    }

    #[test]
    fn two_level_fillpatch_interpolates_uncovered_ghosts() {
        // Coarse level covers the whole domain; one fine patch in the middle.
        let cdom_box = IndexBox::from_extents(16, 16, 8);
        let cdomain = ProblemDomain::non_periodic(cdom_box);
        let fdomain = cdomain.refine(IntVect::splat(2));
        let coarse = make_level(
            vec![cdom_box],
            1,
            2,
            0,
        );
        let mut fine = make_level(
            vec![IndexBox::new(IntVect::new(8, 8, 4), IntVect::new(23, 23, 11))],
            1,
            2,
            1,
        );
        let report = fill_patch_two_levels(
            &mut fine,
            &coarse,
            &fdomain,
            &cdomain,
            IntVect::splat(2),
            &TrilinearInterp,
            &NoOpBoundary,
            &NoOpBoundary,
            None,
            None,
            0.0,
        );
        assert!(report.interpolated_cells > 0);
        assert!(report.pc_plan.is_some());
        assert!(report.coord_pc_plan.is_none());
        // Every ghost cell (all uncovered by fine data, all interior to the
        // fine domain) must now hold the linear field — trilinear is exact
        // on linear data.
        let valid = fine.valid_box(0);
        for p in valid.grow(2).cells() {
            if valid.contains(p) {
                continue;
            }
            let got = fine.fab(0).get(p, 0);
            let expect = linear_value(1, p);
            assert!(
                (got - expect).abs() < 1e-12,
                "ghost {p:?}: {got} vs {expect}"
            );
        }
    }

    #[test]
    fn time_interpolated_fill_blends_coarse_old_and_new() {
        // Subcycling's two-time-level fill: old = linear field, new = old
        // plus a constant offset. A blended fill at alpha must land each
        // interpolated ghost exactly at old + alpha·offset (both the
        // interpolation and the blend are linear), alpha = 1 must be bitwise
        // a plain new-state fill, and alpha = 0 bitwise a plain old-state
        // fill.
        let cdom_box = IndexBox::from_extents(16, 16, 8);
        let cdomain = ProblemDomain::non_periodic(cdom_box);
        let fdomain = cdomain.refine(IntVect::splat(2));
        let old = make_level(vec![cdom_box], 1, 2, 0);
        let mut new = old.clone();
        for i in 0..new.nfabs() {
            let b = new.valid_box(i);
            for p in b.cells() {
                let v = new.fab(i).get(p, 0);
                new.fab_mut(i).set(p, 0, v + 10.0);
            }
        }
        let fine0 = make_level(
            vec![IndexBox::new(IntVect::new(8, 8, 4), IntVect::new(23, 23, 11))],
            1,
            2,
            1,
        );
        let fill = |coarse: &MultiFab, ti: Option<CoarseTimeInterp<'_>>| -> MultiFab {
            let mut fine = fine0.clone();
            fill_patch_two_levels_with(
                &mut fine,
                coarse,
                &fdomain,
                &cdomain,
                IntVect::splat(2),
                &TrilinearInterp,
                &NoOpBoundary,
                &NoOpBoundary,
                None,
                None,
                0.0,
                ti,
                FillOpts::default(),
            );
            fine
        };
        let pure_new = fill(&new, None);
        let pure_old = fill(&old, None);
        let ti = |alpha: f64| CoarseTimeInterp {
            old: &old,
            alpha,
            remote_old: None,
        };
        // alpha = 1: bitwise the plain new fill (the old gather is skipped).
        let at_one = fill(&new, Some(ti(1.0)));
        assert_eq!(at_one.fab(0).data(), pure_new.fab(0).data());
        // alpha = 0: bitwise the plain old fill.
        let at_zero = fill(&new, Some(ti(0.0)));
        assert_eq!(at_zero.fab(0).data(), pure_old.fab(0).data());
        // alpha = 0.25: ghosts sit exactly a quarter of the offset above the
        // old-fill values.
        let at_q = fill(&new, Some(ti(0.25)));
        let valid = fine0.valid_box(0);
        let mut checked = 0;
        for p in valid.grow(2).cells() {
            if valid.contains(p) {
                continue;
            }
            let got = at_q.fab(0).get(p, 0);
            let expect = pure_old.fab(0).get(p, 0) + 0.25 * 10.0;
            assert!((got - expect).abs() < 1e-12, "ghost {p:?}: {got} vs {expect}");
            checked += 1;
        }
        assert!(checked > 0);
    }

    #[test]
    fn fine_fine_data_wins_over_interpolation() {
        // Two adjacent fine patches: the shared face ghosts must come from
        // the neighbor (exact), not interpolation.
        let cdom_box = IndexBox::from_extents(16, 8, 8);
        let cdomain = ProblemDomain::non_periodic(cdom_box);
        let fdomain = cdomain.refine(IntVect::splat(2));
        let coarse = make_level(vec![cdom_box], 1, 2, 0);
        let mut fine = make_level(
            vec![
                IndexBox::new(IntVect::new(0, 0, 0), IntVect::new(15, 15, 15)),
                IndexBox::new(IntVect::new(16, 0, 0), IntVect::new(31, 15, 15)),
            ],
            1,
            2,
            1,
        );
        // Poison fine ghosts to catch unfilled cells.
        let poison = -1e30;
        for i in 0..2 {
            let valid = fine.valid_box(i);
            let all = fine.fab(i).bx();
            for p in all.cells() {
                if !valid.contains(p) {
                    fine.fab_mut(i).set(p, 0, poison);
                }
            }
        }
        fill_patch_two_levels(
            &mut fine,
            &coarse,
            &fdomain,
            &cdomain,
            IntVect::splat(2),
            &TrilinearInterp,
            &NoOpBoundary,
            &NoOpBoundary,
            None,
            None,
            0.0,
        );
        // The ghost column of patch 0 at x=16..17 lies inside patch 1: exact.
        for p in IndexBox::new(IntVect::new(16, 0, 0), IntVect::new(17, 15, 15)).cells() {
            assert_eq!(fine.fab(0).get(p, 0), linear_value(1, p));
        }
        // No poison left anywhere interior to the domain.
        for i in 0..2 {
            let valid = fine.valid_box(i);
            for p in valid.grow(2).intersection(&fdomain.bx).cells() {
                assert!(fine.fab(i).get(p, 0) > poison / 2.0, "unfilled {p:?}");
            }
        }
    }

    #[test]
    fn curvilinear_interp_triggers_coordinate_parallel_copy() {
        let cdom_box = IndexBox::from_extents(16, 16, 8);
        let cdomain = ProblemDomain::non_periodic(cdom_box);
        let fdomain = cdomain.refine(IntVect::splat(2));
        let coarse = make_level(vec![cdom_box], 1, 2, 0);
        let mut fine = make_level(
            vec![IndexBox::new(IntVect::new(8, 8, 4), IntVect::new(23, 23, 11))],
            1,
            2,
            1,
        );
        // Uniform physical coordinates at both levels.
        let mut ccoords = MultiFab::new(
            coarse.boxarray().clone(),
            coarse.distribution().clone(),
            3,
            2,
        );
        for i in 0..ccoords.nfabs() {
            let b = ccoords.fab(i).bx();
            for p in b.cells() {
                for d in 0..3 {
                    ccoords.fab_mut(i).set(p, d, p[d] as f64 + 0.5);
                }
            }
        }
        let mut fcoords =
            MultiFab::new(fine.boxarray().clone(), fine.distribution().clone(), 3, 2);
        for i in 0..fcoords.nfabs() {
            let b = fcoords.fab(i).bx();
            for p in b.cells() {
                for d in 0..3 {
                    fcoords.fab_mut(i).set(p, d, (p[d] as f64 + 0.5) / 2.0);
                }
            }
        }
        let report = fill_patch_two_levels(
            &mut fine,
            &coarse,
            &fdomain,
            &cdomain,
            IntVect::splat(2),
            &CurvilinearInterp,
            &NoOpBoundary,
            &NoOpBoundary,
            Some(&ccoords),
            Some(&fcoords),
            0.0,
        );
        let cpc = report.coord_pc_plan.expect("coordinate ParallelCopy missing");
        assert!(!cpc.plan.chunks.is_empty());
        assert_eq!(cpc.plan.ncomp, 3);
        // And the interpolation is exact on the linear field.
        let valid = fine.valid_box(0);
        for p in valid.grow(2).cells() {
            if valid.contains(p) {
                continue;
            }
            assert!((fine.fab(0).get(p, 0) - linear_value(1, p)).abs() < 1e-12);
        }
    }

    /// Builds the curvilinear two-level problem once: clones of `fine` share
    /// grid identity, so repeated fills exercise real cache hits.
    fn curvilinear_setup() -> (MultiFab, MultiFab, MultiFab, MultiFab, ProblemDomain, ProblemDomain)
    {
        let cdom_box = IndexBox::from_extents(16, 16, 8);
        let cdomain = ProblemDomain::new(cdom_box, [false, false, true]);
        let fdomain = cdomain.refine(IntVect::splat(2));
        let coarse = make_level(vec![cdom_box], 1, 2, 0);
        let fine = make_level(
            vec![
                IndexBox::new(IntVect::new(4, 4, 0), IntVect::new(15, 19, 15)),
                IndexBox::new(IntVect::new(16, 4, 0), IntVect::new(27, 19, 15)),
            ],
            1,
            2,
            1,
        );
        let mut ccoords = MultiFab::new(
            coarse.boxarray().clone(),
            coarse.distribution().clone(),
            3,
            2,
        );
        for i in 0..ccoords.nfabs() {
            let b = ccoords.fab(i).bx();
            for p in b.cells() {
                for d in 0..3 {
                    ccoords.fab_mut(i).set(p, d, p[d] as f64 + 0.5);
                }
            }
        }
        let mut fcoords =
            MultiFab::new(fine.boxarray().clone(), fine.distribution().clone(), 3, 2);
        for i in 0..fcoords.nfabs() {
            let b = fcoords.fab(i).bx();
            for p in b.cells() {
                for d in 0..3 {
                    fcoords.fab_mut(i).set(p, d, (p[d] as f64 + 0.5) / 2.0);
                }
            }
        }
        (coarse, fine, ccoords, fcoords, cdomain, fdomain)
    }

    #[test]
    fn cached_parallel_two_level_fill_bitwise_matches_uncached() {
        let (coarse, fine0, ccoords, fcoords, cdomain, fdomain) = curvilinear_setup();
        let run = |opts: FillOpts<'_>| -> (MultiFab, FillPatchReport) {
            let mut fine = fine0.clone();
            let report = fill_patch_two_levels_with(
                &mut fine,
                &coarse,
                &fdomain,
                &cdomain,
                IntVect::splat(2),
                &CurvilinearInterp,
                &NoOpBoundary,
                &NoOpBoundary,
                Some(&ccoords),
                Some(&fcoords),
                0.0,
                None,
                opts,
            );
            (fine, report)
        };
        let (base, base_report) = run(FillOpts::default());
        let cache = PlanCache::new();
        for threads in [1usize, 4] {
            // Every iteration past the first must be served from cache and
            // still agree bitwise with the uncached serial fill.
            for pass in 0..2 {
                let (got, report) = run(FillOpts {
                    cache: Some(&cache),
                    threads,
                });
                for i in 0..base.nfabs() {
                    assert_eq!(
                        got.fab(i).data(),
                        base.fab(i).data(),
                        "threads={threads} pass={pass} patch {i}"
                    );
                }
                assert_eq!(report.fb_plan.plan.chunks, base_report.fb_plan.plan.chunks);
                assert_eq!(
                    report.pc_plan.as_ref().unwrap().plan.chunks,
                    base_report.pc_plan.as_ref().unwrap().plan.chunks
                );
                assert_eq!(
                    report.coord_pc_plan.as_ref().unwrap().plan.chunks,
                    base_report.coord_pc_plan.as_ref().unwrap().plan.chunks
                );
                assert_eq!(report.interpolated_cells, base_report.interpolated_cells);
            }
        }
        // 3 entries (state gather, coord gather, fill-boundary) built once,
        // then reused by the remaining 3 cached runs.
        assert_eq!(cache.misses(), 3);
        assert_eq!(cache.hits(), 9);
    }

    /// The epoch model across a full FillPatch: fresh after the fill (even
    /// though BC application mutates through `fabs_mut`), stale again as soon
    /// as the state changes.
    #[cfg(feature = "fabcheck")]
    #[test]
    fn fillpatch_leaves_ghosts_fresh_until_next_mutation() {
        let domain_box = IndexBox::from_extents(16, 8, 8);
        let domain = ProblemDomain::non_periodic(domain_box);
        let mut mf = make_level(
            vec![
                IndexBox::new(IntVect::new(0, 0, 0), IntVect::new(7, 7, 7)),
                IndexBox::new(IntVect::new(8, 0, 0), IntVect::new(15, 7, 7)),
            ],
            1,
            2,
            0,
        );
        assert!(!mf.ghosts_fresh(), "nothing filled the ghosts yet");
        fill_patch_single_level(&mut mf, &domain, &NoOpBoundary, 0.0);
        assert!(mf.ghosts_fresh());
        mf.assert_ghosts_fresh("kernel after fill"); // must not panic
        let lo = mf.valid_box(0).lo();
        mf.fab_mut(0).set(lo, 0, 9.0); // advance the state…
        assert!(!mf.ghosts_fresh(), "…ghosts must be stale again");
    }

    /// Tentpole acceptance: a kernel running after the fill was *skipped*
    /// (the classic AMR ordering bug) traps instead of consuming stale data.
    #[cfg(feature = "fabcheck")]
    #[test]
    #[should_panic(expected = "stale ghost read")]
    fn skipped_fillpatch_traps_the_consuming_kernel() {
        let domain_box = IndexBox::from_extents(16, 8, 8);
        let domain = ProblemDomain::non_periodic(domain_box);
        let mut mf = make_level(
            vec![
                IndexBox::new(IntVect::new(0, 0, 0), IntVect::new(7, 7, 7)),
                IndexBox::new(IntVect::new(8, 0, 0), IntVect::new(15, 7, 7)),
            ],
            1,
            2,
            0,
        );
        fill_patch_single_level(&mut mf, &domain, &NoOpBoundary, 0.0);
        let lo = mf.valid_box(0).lo();
        mf.fab_mut(0).set(lo, 0, 9.0); // stage update
        // ... fill_patch_single_level deliberately skipped ...
        mf.assert_ghosts_fresh("stencil kernel"); // the trap
    }

    #[test]
    fn periodic_ghosts_use_wrapped_coarse_data() {
        // z-periodic domain; fine patch spans full z, so its z ghosts wrap.
        let cdom_box = IndexBox::from_extents(16, 16, 4);
        let cdomain = ProblemDomain::new(cdom_box, [false, false, true]);
        let fdomain = cdomain.refine(IntVect::splat(2));
        let coarse = make_level(vec![cdom_box], 1, 2, 0);
        let mut fine = make_level(
            vec![IndexBox::new(IntVect::new(8, 8, 0), IntVect::new(23, 23, 7))],
            1,
            2,
            1,
        );
        fill_patch_two_levels(
            &mut fine,
            &coarse,
            &fdomain,
            &cdomain,
            IntVect::splat(2),
            &TrilinearInterp,
            &NoOpBoundary,
            &NoOpBoundary,
            None,
            None,
            0.0,
        );
        // A z-ghost below the domain must hold the wrapped fine value.
        let p = IntVect::new(12, 12, -1);
        let wrapped = IntVect::new(12, 12, 7);
        assert!(
            (fine.fab(0).get(p, 0) - linear_value(1, wrapped)).abs() < 1e-12,
            "periodic ghost {p:?}"
        );
    }
}
