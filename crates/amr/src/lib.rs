//! Block-structured adaptive mesh refinement framework.
//!
//! This crate is the AMReX-core substitute the paper's CRoCCo 2.0 is hosted
//! on (§III). Patches are overset logically rectangular grids with no
//! parent-child relationship between refinement levels (Fig. 1); the
//! coarsest grid stays active over the whole domain.
//!
//! * [`tagging`] — cell tagging on refinement criteria (|∇ρ|, |∇(ρu)|
//!   thresholds live in the solver; this module holds the tag containers and
//!   buffering),
//! * [`cluster`] — Berger–Rigoutsos signature clustering of tags into
//!   blocking-factor-aligned patches with a grid-efficiency target,
//! * [`interp`] — pluggable coarse→fine interpolators: AMReX's trilinear
//!   (CRoCCo 2.1), the paper's custom curvilinear-weighted interpolator with
//!   its coordinate `ParallelCopy` (CRoCCo 2.0), piecewise-constant, and a
//!   conservative limited-slope interpolator (the §III-C "higher-fidelity"
//!   direction),
//! * [`fillpatch`] — `FillPatchSingleLevel` / `FillPatchTwoLevels` ghost
//!   filling, the communication-dominant routine of Figs. 6–7,
//! * [`mod@average_down`] — restriction of covered coarse cells to the average
//!   of their covering fine cells (Algorithm 2, line 11),
//! * [`hierarchy`] — the level hierarchy, regridding with proper nesting,
//!   and the active-point accounting behind the paper's 89–94 % grid
//!   reduction claim.
//!
//! Where this crate sits in the paper-subsystem map (the S1–S5 table; the
//! same table appears in the `runtime` and `fab` roots):
//!
//! | # | paper subsystem | crate counterpart |
//! |---|---|---|
//! | S1 | MPI job across Summit nodes (§IV-B) | `runtime::sim`, `runtime::cluster`, `runtime::topology` |
//! | S2 | on-node OpenMP / GPU streams (§IV-B) | `runtime::pool`, `runtime::taskgraph` |
//! | S3 | AMReX `FabArray` data + comm metadata (§III-A) | `fab` (`MultiFab`, plans, plan cache) |
//! | S4 | AMR hierarchy, regrid, FillPatch (§III-B/C) | **`amr`** |
//! | S5 | CRoCCo solver kernels + RK3 driver (§II, §III) | `core` (`crocco-solver`) |

// Enforced by `cargo xtask lint`: unsafe code is confined to the allowlisted
// fab modules (multifab, view, overlap) — none of it lives here.
#![forbid(unsafe_code)]

pub mod average_down;
pub mod cluster;
pub mod fillpatch;
pub mod flux_register;
pub mod hierarchy;
pub mod interp;
pub mod tagging;

pub use average_down::{average_down, average_down_dist};
pub use cluster::{cluster_tags, ClusterParams};
pub use fillpatch::{
    fill_two_level_patch, fill_two_level_patch_with_remote, resolve_two_level_plans,
    BoundaryFiller, CoordGatherPlan, FillOpts, FillPatchReport, NoOpBoundary, TwoLevelPlan,
    TwoLevelPlans,
};
pub use flux_register::{FluxRegister, InterfaceFace};
pub use hierarchy::{AmrHierarchy, AmrParams, Level};
pub use interp::{
    ConservativeLinearInterp, CurvilinearInterp, Interpolator, PiecewiseConstantInterp,
    TrilinearInterp, WenoConservativeInterp,
};
pub use tagging::TagSet;
