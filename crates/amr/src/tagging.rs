//! Cell tagging for refinement.

use crocco_fab::MultiFab;
use crocco_geometry::{IndexBox, IntVect};
use std::collections::HashSet;

/// The set of cells tagged for refinement at one level.
///
/// Tags live in that level's index space. The solver produces them from its
/// refinement criteria (density/momentum gradients, §II-B, or the pure
/// turbulence-resolving criterion of §III-C); this container buffers and
/// restricts them for the regridder.
#[derive(Clone, Debug, Default)]
pub struct TagSet {
    cells: HashSet<IntVect>,
}

impl TagSet {
    /// An empty tag set.
    pub fn new() -> Self {
        TagSet::default()
    }

    /// Tags one cell.
    pub fn tag(&mut self, p: IntVect) {
        self.cells.insert(p);
    }

    /// Tags every cell of `bx`.
    pub fn tag_box(&mut self, bx: IndexBox) {
        for p in bx.cells() {
            self.cells.insert(p);
        }
    }

    /// Number of tagged cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` if nothing is tagged.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// `true` if `p` is tagged.
    pub fn contains(&self, p: IntVect) -> bool {
        self.cells.contains(&p)
    }

    /// Iterates over tagged cells (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = IntVect> + '_ {
        self.cells.iter().copied()
    }

    /// Tagged cells as a vector (arbitrary order).
    pub fn to_vec(&self) -> Vec<IntVect> {
        self.cells.iter().copied().collect()
    }

    /// Grows every tag by `buffer` cells in each direction (the AMReX
    /// `n_error_buf`): guarantees features stay inside the fine patch until
    /// the next regrid, per the CFL-based regrid-frequency argument of §II-B.
    pub fn buffer(&self, buffer: i64, domain: IndexBox) -> TagSet {
        let mut out = TagSet::new();
        for &p in &self.cells {
            let b = IndexBox::new(p, p).grow(buffer).intersection(&domain);
            for q in b.cells() {
                out.cells.insert(q);
            }
        }
        out
    }

    /// Restricts tags to `domain`.
    pub fn restrict(&self, domain: IndexBox) -> TagSet {
        TagSet {
            cells: self
                .cells
                .iter()
                .copied()
                .filter(|p| domain.contains(*p))
                .collect(),
        }
    }

    /// Tags every valid cell of `mf`'s component `comp` whose absolute value
    /// exceeds `threshold` — the building block for gradient-based criteria
    /// (the solver stores |∇ρ| or |∇(ρu)| into a scratch component first).
    pub fn tag_where_above(mf: &MultiFab, comp: usize, threshold: f64) -> TagSet {
        let mut out = TagSet::new();
        for (i, vbx) in mf.iter_valid() {
            let fab = mf.fab(i);
            for p in vbx.cells() {
                if fab.get(p, comp).abs() > threshold {
                    out.tag(p);
                }
            }
        }
        out
    }

    /// Coarsens all tags by `ratio` (deduplicating).
    pub fn coarsen(&self, ratio: IntVect) -> TagSet {
        TagSet {
            cells: self.cells.iter().map(|p| p.coarsen(ratio)).collect(),
        }
    }

    /// Serializes the tag set as lexicographically sorted little-endian
    /// `i64` coordinate triples — the wire format of the distributed regrid
    /// tag union. Sorting makes the bytes a pure function of the *set*
    /// (`HashSet` iteration order never leaks), so identical sets produce
    /// identical payloads on every rank.
    pub fn to_sorted_bytes(&self) -> Vec<u8> {
        let mut cells = self.to_vec();
        cells.sort_unstable_by_key(|p| (p[0], p[1], p[2]));
        let mut out = Vec::with_capacity(cells.len() * 24);
        for p in cells {
            for d in 0..3 {
                out.extend_from_slice(&p[d].to_le_bytes());
            }
        }
        out
    }

    /// Unions the cells of a [`TagSet::to_sorted_bytes`] payload into this
    /// set (the receive side of the distributed tag union).
    ///
    /// # Panics
    /// Panics if the payload length is not a multiple of 24 bytes.
    pub fn absorb_bytes(&mut self, bytes: &[u8]) {
        assert!(
            bytes.len().is_multiple_of(24),
            "tag-union payload is not a sequence of i64 triples"
        );
        for triple in bytes.chunks_exact(24) {
            let coord = |d: usize| {
                i64::from_le_bytes(triple[d * 8..(d + 1) * 8].try_into().expect("8-byte word"))
            };
            self.cells.insert(IntVect::new(coord(0), coord(1), coord(2)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crocco_fab::{BoxArray, DistributionMapping};
    use std::sync::Arc;

    #[test]
    fn tag_and_query() {
        let mut t = TagSet::new();
        assert!(t.is_empty());
        t.tag(IntVect::new(1, 2, 3));
        t.tag(IntVect::new(1, 2, 3)); // idempotent
        assert_eq!(t.len(), 1);
        assert!(t.contains(IntVect::new(1, 2, 3)));
        assert!(!t.contains(IntVect::ZERO));
    }

    #[test]
    fn buffer_grows_and_clips() {
        let domain = IndexBox::from_extents(8, 8, 8);
        let mut t = TagSet::new();
        t.tag(IntVect::ZERO); // at the corner
        let b = t.buffer(1, domain);
        // 2×2×2 clipped block around the corner.
        assert_eq!(b.len(), 8);
        assert!(b.contains(IntVect::new(1, 1, 1)));
        assert!(!b.contains(IntVect::new(-1, 0, 0)));
    }

    #[test]
    fn restrict_drops_outside_tags() {
        let mut t = TagSet::new();
        t.tag(IntVect::new(0, 0, 0));
        t.tag(IntVect::new(100, 0, 0));
        let r = t.restrict(IndexBox::from_extents(8, 8, 8));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn coarsen_deduplicates() {
        let mut t = TagSet::new();
        t.tag_box(IndexBox::from_extents(4, 4, 4));
        let c = t.coarsen(IntVect::splat(2));
        assert_eq!(c.len(), 8);
    }

    #[test]
    fn sorted_bytes_are_set_deterministic_and_union_roundtrips() {
        let mut a = TagSet::new();
        let mut b = TagSet::new();
        // Same set, different insertion order.
        for p in [
            IntVect::new(3, -1, 2),
            IntVect::new(0, 0, 0),
            IntVect::new(3, 5, -7),
        ] {
            a.tag(p);
        }
        for p in [
            IntVect::new(3, 5, -7),
            IntVect::new(3, -1, 2),
            IntVect::new(0, 0, 0),
        ] {
            b.tag(p);
        }
        assert_eq!(a.to_sorted_bytes(), b.to_sorted_bytes());

        let mut c = TagSet::new();
        c.tag(IntVect::new(9, 9, 9));
        c.absorb_bytes(&a.to_sorted_bytes());
        assert_eq!(c.len(), 4);
        assert!(c.contains(IntVect::new(3, 5, -7)));
        assert!(c.contains(IntVect::new(9, 9, 9)));
        // Absorbing again is idempotent (set union).
        c.absorb_bytes(&b.to_sorted_bytes());
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn threshold_tagging_from_multifab() {
        let bx = IndexBox::from_extents(8, 8, 8);
        let ba = Arc::new(BoxArray::new(vec![bx]));
        let dm = Arc::new(DistributionMapping::all_on_root(&ba));
        let mut mf = MultiFab::new(ba, dm, 1, 0);
        mf.fab_mut(0).set(IntVect::new(3, 3, 3), 0, -5.0);
        mf.fab_mut(0).set(IntVect::new(4, 4, 4), 0, 0.5);
        let t = TagSet::tag_where_above(&mf, 0, 1.0);
        assert_eq!(t.len(), 1);
        assert!(t.contains(IntVect::new(3, 3, 3))); // |−5| > 1
    }
}
