//! `AverageDown`: restrict covered coarse cells to the mean of their fine
//! children (Algorithm 2, line 11 of the paper).

use crocco_fab::owned::unpack_chunk_into;
use crocco_fab::{FArrayBox, MultiFab};
use crocco_geometry::{IndexBox, IntVect};
use crocco_runtime::cluster::CommError;
use crocco_runtime::GroupEndpoint;

/// Sets every coarse cell covered by the fine level to the arithmetic mean of
/// its `ratio³` covering fine cells, for every component.
pub fn average_down(fine: &MultiFab, coarse: &mut MultiFab, ratio: IntVect) {
    assert_eq!(fine.ncomp(), coarse.ncomp());
    let ncomp = fine.ncomp();
    let inv = 1.0 / (ratio[0] * ratio[1] * ratio[2]) as f64;
    for j in 0..fine.nfabs() {
        let fbox = fine.valid_box(j);
        let cfoot = fbox.coarsen(ratio);
        for (i, overlap) in coarse.boxarray().intersections(cfoot) {
            let ffab = fine.fab(j);
            restrict_into(ffab, fbox, coarse.fab_mut(i), overlap, ratio, ncomp, inv);
        }
    }
}

/// The per-chunk restriction kernel shared by the replicated and owned
/// paths: writes the mean of each coarse cell's `ratio³` children into
/// `cfab` over `overlap` (a subset of `fbox.coarsen(ratio)`).
fn restrict_into(
    ffab: &FArrayBox,
    fbox: IndexBox,
    cfab: &mut FArrayBox,
    overlap: IndexBox,
    ratio: IntVect,
    ncomp: usize,
    inv: f64,
) {
    for cp in overlap.cells() {
        let children = IndexBox::new(cp, cp).refine(ratio).intersection(&fbox);
        debug_assert_eq!(
            children.num_points(),
            (ratio[0] * ratio[1] * ratio[2]) as u64,
            "fine boxes must be ratio-aligned"
        );
        for c in 0..ncomp {
            let sum: f64 = children.cells().map(|p| ffab.get(p, c)).sum();
            cfab.set(cp, c, sum * inv);
        }
    }
}

/// [`average_down`] for owned-data MultiFabs on a cluster: the fine owner of
/// each restriction chunk computes the child means locally and ships only
/// the restricted coarse cells to the coarse owner.
///
/// Every group member enumerates the identical chunk list (fine patch outer,
/// `coarse.boxarray().intersections` inner — the exact loop order of the
/// replicated [`average_down`]), so tags derived from the chunk index match
/// across ranks. Payloads are component-major le-`f64` over
/// `overlap.cells()` ([`crocco_fab::owned::pack_chunk`] wire format) and the
/// restriction arithmetic is the same child-sum in the same iteration order,
/// so the coarse result is bitwise-identical to the replicated restriction.
/// Chunks whose fine and coarse owner coincide never touch the wire.
///
/// `mktag` maps a chunk index to a message tag (callers compose
/// [`crocco_runtime::tags::owned`] with the `OWNED_REDIST` sub-space and the
/// stage epoch). A detected fault surfaces as a typed [`CommError`].
pub fn average_down_dist(
    fine: &MultiFab,
    coarse: &mut MultiFab,
    ratio: IntVect,
    ep: &GroupEndpoint<'_>,
    mktag: &dyn Fn(usize) -> u64,
) -> Result<(), CommError> {
    assert_eq!(fine.ncomp(), coarse.ncomp());
    let ncomp = fine.ncomp();
    let inv = 1.0 / (ratio[0] * ratio[1] * ratio[2]) as f64;
    let rank = ep.rank();

    // Chunk enumeration, shared by all three passes below. Deterministic and
    // identical on every rank: it reads only replicated metadata.
    let chunks: Vec<(usize, usize, IndexBox)> = (0..fine.nfabs())
        .flat_map(|j| {
            let cfoot = fine.valid_box(j).coarsen(ratio);
            coarse
                .boxarray()
                .intersections(cfoot)
                .into_iter()
                .map(move |(i, overlap)| (j, i, overlap))
        })
        .collect();

    // All sends first (buffered transport), so the blocking waits always
    // have matching traffic in flight on every rank.
    for (k, &(j, i, overlap)) in chunks.iter().enumerate() {
        let src_rank = fine.distribution().owner(j);
        let dst_rank = coarse.distribution().owner(i);
        if src_rank != rank || dst_rank == rank {
            continue;
        }
        let fbox = fine.valid_box(j);
        let ffab = fine.fab(j);
        let mut out = Vec::with_capacity(overlap.num_points() as usize * ncomp * 8);
        for c in 0..ncomp {
            for cp in overlap.cells() {
                let children = IndexBox::new(cp, cp).refine(ratio).intersection(&fbox);
                let sum: f64 = children.cells().map(|p| ffab.get(p, c)).sum();
                out.extend_from_slice(&(sum * inv).to_le_bytes());
            }
        }
        ep.send(dst_rank, mktag(k), bytes::Bytes::from(out));
    }
    let handles: Vec<(usize, crocco_runtime::RecvHandle)> = chunks
        .iter()
        .enumerate()
        .filter(|(_, &(j, i, _))| {
            coarse.distribution().owner(i) == rank && fine.distribution().owner(j) != rank
        })
        .map(|(k, &(j, _, _))| (k, ep.irecv(fine.distribution().owner(j), mktag(k))))
        .collect();
    let mut landed = std::collections::HashMap::with_capacity(handles.len());
    for (k, h) in &handles {
        landed.insert(*k, ep.wait(h)?);
    }

    // Apply in chunk order: local restriction for chunks whose fine source
    // is owned here, payload unpack for the rest. Chunk write regions are
    // pairwise disjoint (fine valid boxes are disjoint and ratio-aligned),
    // so application order cannot change the result.
    for (k, &(j, i, overlap)) in chunks.iter().enumerate() {
        if coarse.distribution().owner(i) != rank {
            continue;
        }
        if fine.distribution().owner(j) == rank {
            let fbox = fine.valid_box(j);
            let ffab = fine.fab(j);
            restrict_into(ffab, fbox, coarse.fab_mut(i), overlap, ratio, ncomp, inv);
        } else {
            let payload = landed.get(&k).expect("remote restriction was received");
            unpack_chunk_into(coarse.fab_mut(i), overlap, ncomp, payload);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crocco_fab::{BoxArray, DistributionMapping};
    use std::sync::Arc;

    fn mf(boxes: Vec<IndexBox>, ncomp: usize) -> MultiFab {
        let ba = Arc::new(BoxArray::new(boxes));
        let dm = Arc::new(DistributionMapping::all_on_root(&ba));
        MultiFab::new(ba, dm, ncomp, 0)
    }

    #[test]
    fn constant_field_restricts_to_itself() {
        let mut coarse = mf(vec![IndexBox::from_extents(8, 8, 8)], 2);
        let mut fine = mf(
            vec![IndexBox::new(IntVect::new(4, 4, 4), IntVect::new(11, 11, 11))],
            2,
        );
        fine.set_val(7.0);
        coarse.set_val(1.0);
        average_down(&fine, &mut coarse, IntVect::splat(2));
        // Covered coarse cells (2..5)³ become 7, others stay 1.
        assert_eq!(coarse.fab(0).get(IntVect::new(3, 3, 3), 0), 7.0);
        assert_eq!(coarse.fab(0).get(IntVect::new(0, 0, 0), 0), 1.0);
        assert_eq!(coarse.fab(0).get(IntVect::new(3, 3, 3), 1), 7.0);
    }

    #[test]
    fn linear_field_restricts_exactly() {
        // The mean of a linear field over the 8 children equals its value at
        // the coarse center: average_down must be exact.
        let mut coarse = mf(vec![IndexBox::from_extents(4, 4, 4)], 1);
        let mut fine = mf(vec![IndexBox::from_extents(8, 8, 8)], 1);
        let f = |p: IntVect, s: f64| {
            3.0 * (p[0] as f64 + 0.5) / s - 2.0 * (p[1] as f64 + 0.5) / s
                + 0.25 * (p[2] as f64 + 0.5) / s
        };
        for p in fine.valid_box(0).cells() {
            let v = f(p, 2.0);
            fine.fab_mut(0).set(p, 0, v);
        }
        average_down(&fine, &mut coarse, IntVect::splat(2));
        for p in coarse.valid_box(0).cells() {
            let expect = f(p, 1.0);
            assert!((coarse.fab(0).get(p, 0) - expect).abs() < 1e-13);
        }
    }

    #[test]
    fn conservation_of_totals_over_covered_region() {
        let mut coarse = mf(vec![IndexBox::from_extents(4, 4, 4)], 1);
        let mut fine = mf(vec![IndexBox::from_extents(8, 8, 8)], 1);
        // Random-ish fine data.
        for (i, p) in fine.valid_box(0).cells().enumerate() {
            fine.fab_mut(0).set(p, 0, (i as f64 * 0.37).sin());
        }
        average_down(&fine, &mut coarse, IntVect::splat(2));
        let fine_total = fine.sum(0);
        let coarse_total = coarse.sum(0) * 8.0; // coarse cells are 8× larger
        assert!((fine_total - coarse_total).abs() < 1e-10);
    }

    /// Distributed restriction over owned MultiFabs reproduces the
    /// replicated restriction bitwise on every owned coarse patch, with the
    /// fine and coarse levels distributed differently so chunks cross ranks.
    #[test]
    fn distributed_average_down_matches_replicated_bitwise() {
        use crocco_fab::DistributionStrategy;
        use crocco_runtime::{tags, LocalCluster};

        let nranks = 2usize;
        let coarse_boxes = vec![
            IndexBox::new(IntVect::new(0, 0, 0), IntVect::new(7, 7, 7)),
            IndexBox::new(IntVect::new(8, 0, 0), IntVect::new(15, 7, 7)),
        ];
        let fine_boxes = vec![
            IndexBox::new(IntVect::new(4, 4, 4), IntVect::new(11, 11, 11)),
            IndexBox::new(IntVect::new(12, 4, 4), IntVect::new(19, 11, 11)),
        ];
        let cba = Arc::new(BoxArray::new(coarse_boxes));
        let cdm = Arc::new(DistributionMapping::new(
            &cba,
            nranks,
            DistributionStrategy::RoundRobin,
        ));
        let fba = Arc::new(BoxArray::new(fine_boxes));
        let fdm = Arc::new(DistributionMapping::new(
            &fba,
            nranks,
            DistributionStrategy::MortonSfc,
        ));
        let fill = |mf: &mut MultiFab| {
            for i in 0..mf.nfabs() {
                if !mf.is_allocated(i) {
                    continue;
                }
                let b = mf.valid_box(i);
                for p in b.cells() {
                    let v = ((p[0] * 31 + p[1] * 7 + p[2]) as f64 * 0.37).sin();
                    mf.fab_mut(i).set(p, 0, v);
                }
            }
        };

        let mut oracle_fine = MultiFab::new(fba.clone(), fdm.clone(), 1, 0);
        fill(&mut oracle_fine);
        let mut oracle_coarse = MultiFab::new(cba.clone(), cdm.clone(), 1, 0);
        oracle_coarse.set_val(-1.0);
        average_down(&oracle_fine, &mut oracle_coarse, IntVect::splat(2));

        let results = LocalCluster::run(nranks, |ep| {
            let gep = GroupEndpoint::full(&ep);
            let rank = gep.rank();
            let mut fine = MultiFab::new_owned(fba.clone(), fdm.clone(), 1, 0, rank);
            fill(&mut fine);
            let mut coarse = MultiFab::new_owned(cba.clone(), cdm.clone(), 1, 0, rank);
            for i in 0..coarse.nfabs() {
                if coarse.is_allocated(i) {
                    coarse.fab_mut(i).fill(-1.0);
                }
            }
            average_down_dist(&fine, &mut coarse, IntVect::splat(2), &gep, &|k| {
                tags::owned(tags::OWNED_REDIST, 5, 1, k)
            })
            .expect("fault-free restriction");
            coarse
        });
        for (rank, coarse) in results.iter().enumerate() {
            for i in 0..coarse.nfabs() {
                if coarse.is_allocated(i) {
                    assert_eq!(
                        coarse.fab(i).data(),
                        oracle_coarse.fab(i).data(),
                        "rank {rank} coarse patch {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn partial_coverage_touches_only_covered_cells() {
        let mut coarse = mf(vec![IndexBox::from_extents(8, 8, 8)], 1);
        let mut fine = mf(
            vec![IndexBox::new(IntVect::new(0, 0, 0), IntVect::new(7, 7, 7))],
            1,
        );
        fine.set_val(5.0);
        coarse.set_val(-1.0);
        average_down(&fine, &mut coarse, IntVect::splat(2));
        for p in coarse.valid_box(0).cells() {
            let covered = p.all_lt(IntVect::new(4, 4, 4)) && IntVect::ZERO.all_le(p);
            let expect = if covered { 5.0 } else { -1.0 };
            assert_eq!(coarse.fab(0).get(p, 0), expect, "{p:?}");
        }
    }
}
