//! `AverageDown`: restrict covered coarse cells to the mean of their fine
//! children (Algorithm 2, line 11 of the paper).

use crocco_fab::MultiFab;
use crocco_geometry::{IndexBox, IntVect};

/// Sets every coarse cell covered by the fine level to the arithmetic mean of
/// its `ratio³` covering fine cells, for every component.
pub fn average_down(fine: &MultiFab, coarse: &mut MultiFab, ratio: IntVect) {
    assert_eq!(fine.ncomp(), coarse.ncomp());
    let ncomp = fine.ncomp();
    let inv = 1.0 / (ratio[0] * ratio[1] * ratio[2]) as f64;
    for j in 0..fine.nfabs() {
        let fbox = fine.valid_box(j);
        let cfoot = fbox.coarsen(ratio);
        for (i, overlap) in coarse.boxarray().intersections(cfoot) {
            let ffab = fine.fab(j);
            for cp in overlap.cells() {
                let children = IndexBox::new(cp, cp).refine(ratio).intersection(&fbox);
                debug_assert_eq!(
                    children.num_points(),
                    (ratio[0] * ratio[1] * ratio[2]) as u64,
                    "fine boxes must be ratio-aligned"
                );
                for c in 0..ncomp {
                    let sum: f64 = children.cells().map(|p| ffab.get(p, c)).sum();
                    coarse.fab_mut(i).set(cp, c, sum * inv);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crocco_fab::{BoxArray, DistributionMapping};
    use std::sync::Arc;

    fn mf(boxes: Vec<IndexBox>, ncomp: usize) -> MultiFab {
        let ba = Arc::new(BoxArray::new(boxes));
        let dm = Arc::new(DistributionMapping::all_on_root(&ba));
        MultiFab::new(ba, dm, ncomp, 0)
    }

    #[test]
    fn constant_field_restricts_to_itself() {
        let mut coarse = mf(vec![IndexBox::from_extents(8, 8, 8)], 2);
        let mut fine = mf(
            vec![IndexBox::new(IntVect::new(4, 4, 4), IntVect::new(11, 11, 11))],
            2,
        );
        fine.set_val(7.0);
        coarse.set_val(1.0);
        average_down(&fine, &mut coarse, IntVect::splat(2));
        // Covered coarse cells (2..5)³ become 7, others stay 1.
        assert_eq!(coarse.fab(0).get(IntVect::new(3, 3, 3), 0), 7.0);
        assert_eq!(coarse.fab(0).get(IntVect::new(0, 0, 0), 0), 1.0);
        assert_eq!(coarse.fab(0).get(IntVect::new(3, 3, 3), 1), 7.0);
    }

    #[test]
    fn linear_field_restricts_exactly() {
        // The mean of a linear field over the 8 children equals its value at
        // the coarse center: average_down must be exact.
        let mut coarse = mf(vec![IndexBox::from_extents(4, 4, 4)], 1);
        let mut fine = mf(vec![IndexBox::from_extents(8, 8, 8)], 1);
        let f = |p: IntVect, s: f64| {
            3.0 * (p[0] as f64 + 0.5) / s - 2.0 * (p[1] as f64 + 0.5) / s
                + 0.25 * (p[2] as f64 + 0.5) / s
        };
        for p in fine.valid_box(0).cells() {
            let v = f(p, 2.0);
            fine.fab_mut(0).set(p, 0, v);
        }
        average_down(&fine, &mut coarse, IntVect::splat(2));
        for p in coarse.valid_box(0).cells() {
            let expect = f(p, 1.0);
            assert!((coarse.fab(0).get(p, 0) - expect).abs() < 1e-13);
        }
    }

    #[test]
    fn conservation_of_totals_over_covered_region() {
        let mut coarse = mf(vec![IndexBox::from_extents(4, 4, 4)], 1);
        let mut fine = mf(vec![IndexBox::from_extents(8, 8, 8)], 1);
        // Random-ish fine data.
        for (i, p) in fine.valid_box(0).cells().enumerate() {
            fine.fab_mut(0).set(p, 0, (i as f64 * 0.37).sin());
        }
        average_down(&fine, &mut coarse, IntVect::splat(2));
        let fine_total = fine.sum(0);
        let coarse_total = coarse.sum(0) * 8.0; // coarse cells are 8× larger
        assert!((fine_total - coarse_total).abs() < 1e-10);
    }

    #[test]
    fn partial_coverage_touches_only_covered_cells() {
        let mut coarse = mf(vec![IndexBox::from_extents(8, 8, 8)], 1);
        let mut fine = mf(
            vec![IndexBox::new(IntVect::new(0, 0, 0), IntVect::new(7, 7, 7))],
            1,
        );
        fine.set_val(5.0);
        coarse.set_val(-1.0);
        average_down(&fine, &mut coarse, IntVect::splat(2));
        for p in coarse.valid_box(0).cells() {
            let covered = p.all_lt(IntVect::new(4, 4, 4)) && IntVect::ZERO.all_le(p);
            let expect = if covered { 5.0 } else { -1.0 };
            assert_eq!(coarse.fab(0).get(p, 0), expect, "{p:?}");
        }
    }
}
