//! Flux registers: conservation repair at coarse–fine interfaces.
//!
//! AMReX-core provides flux registers for subcycling codes: the coarse level
//! advances with its own face fluxes, the fine level with (more accurate)
//! fine-face fluxes, and the register accumulates the difference
//! `δF = Σ F_fine − F_coarse` on every coarse face at the interface so a
//! *reflux* pass can repair the coarse cells and restore global
//! conservation. CRoCCo's no-subcycling scheme plus `AverageDown` sidesteps
//! refluxing for covered cells, but the interface faces still see a flux
//! mismatch — §III-C's "lacks conservation of quantities across interfaces"
//! concern. This module supplies the standard machinery, completing the
//! framework substrate.

use crocco_fab::{BoxArray, FArrayBox, MultiFab};
use crocco_geometry::{IndexBox, IntVect};
use std::collections::HashMap;

/// One face of the coarse–fine interface: the coarse cell it borders (on the
/// *coarse, uncovered* side), the face direction, and the orientation sign
/// (see [`InterfaceFace::sign`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct InterfaceFace {
    /// The uncovered coarse cell adjacent to the interface.
    pub cell: IntVect,
    /// Face direction (0, 1, 2).
    pub dir: usize,
    /// Sign of the refluxed tendency `sign·δF/Δx`: −1 when the shared face
    /// is the coarse cell's *high* face (fine level above it), +1 when it is
    /// the cell's *low* face — the flux-difference orientation of
    /// `dU = −(F_hi − F_lo)/Δx`.
    pub sign: i8,
}

/// Accumulates coarse/fine flux mismatches over the coarse–fine interface of
/// one level pair.
#[derive(Clone, Debug)]
pub struct FluxRegister {
    ncomp: usize,
    ratio: IntVect,
    /// Interface faces → accumulated `Σ F_fine/r² − F_coarse` per component.
    register: HashMap<InterfaceFace, Vec<f64>>,
}

impl FluxRegister {
    /// Builds the register for the interface between `fine_ba` (fine index
    /// space) and the coarse level that contains it. Every fine boundary
    /// face whose coarse neighbor is *not* covered by the fine level becomes
    /// a register entry.
    pub fn new(fine_ba: &BoxArray, ratio: IntVect, ncomp: usize) -> Self {
        let mut register = HashMap::new();
        let coarsened = fine_ba.coarsen(ratio);
        for fb in coarsened.boxes() {
            for dir in 0..3 {
                for (outside, sign) in [
                    (fb.grow_lo(dir, 1).grow_hi(dir, -(fb.length(dir))), -1i8),
                    (fb.grow_hi(dir, 1).grow_lo(dir, -(fb.length(dir))), 1i8),
                ] {
                    for cell in outside.cells() {
                        if !coarsened.intersects_any(IndexBox::new(cell, cell)) {
                            register.insert(
                                InterfaceFace { cell, dir, sign },
                                vec![0.0; ncomp],
                            );
                        }
                    }
                }
            }
        }
        FluxRegister {
            ncomp,
            ratio,
            register,
        }
    }

    /// Number of interface faces being tracked.
    pub fn nfaces(&self) -> usize {
        self.register.len()
    }

    /// Clears the accumulators.
    pub fn reset(&mut self) {
        for v in self.register.values_mut() {
            v.iter_mut().for_each(|x| *x = 0.0);
        }
    }

    /// Records the *coarse* flux through the interface face bordering
    /// `cell` in `dir` (flux per coarse face, already dt-weighted by the
    /// caller): subtracted from the register.
    pub fn add_coarse_flux(&mut self, face: InterfaceFace, flux: &[f64]) {
        if let Some(acc) = self.register.get_mut(&face) {
            for (a, f) in acc.iter_mut().zip(flux) {
                *a -= f;
            }
        }
    }

    /// Records one *fine* face flux crossing the same coarse face (flux per
    /// fine face, dt-weighted): added with the fine-face area weight
    /// `1/(r·r)` so that `ratio²` fine faces sum to one coarse face.
    pub fn add_fine_flux(&mut self, face: InterfaceFace, flux: &[f64]) {
        let (d1, d2) = match face.dir {
            0 => (1, 2),
            1 => (0, 2),
            _ => (0, 1),
        };
        let weight = 1.0 / (self.ratio[d1] * self.ratio[d2]) as f64;
        if let Some(acc) = self.register.get_mut(&face) {
            for (a, f) in acc.iter_mut().zip(flux) {
                *a += f * weight;
            }
        }
    }

    /// Applies the accumulated corrections to the coarse state:
    /// `U[cell] += sign · δF / Δx_dir` — the reflux pass. `inv_dx[dir]`
    /// converts a face flux into a cell tendency.
    pub fn reflux(&self, coarse: &mut MultiFab, inv_dx: [f64; 3]) {
        for (face, acc) in &self.register {
            for (i, vb) in coarse.iter_valid().collect::<Vec<_>>() {
                if vb.contains(face.cell) {
                    let fab: &mut FArrayBox = coarse.fab_mut(i);
                    for (c, &a) in acc.iter().enumerate().take(self.ncomp) {
                        fab.add(face.cell, c, face.sign as f64 * a * inv_dx[face.dir]);
                    }
                }
            }
        }
    }

    /// Sum of absolute accumulated mismatch (diagnostics).
    pub fn total_mismatch(&self) -> f64 {
        self.register
            .values()
            .flat_map(|v| v.iter())
            .map(|x| x.abs())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crocco_fab::DistributionMapping;
    use std::sync::Arc;

    fn fine_ba() -> BoxArray {
        // One fine patch in the middle of a 16³ coarse domain.
        BoxArray::new(vec![IndexBox::new(
            IntVect::new(8, 8, 8),
            IntVect::new(23, 23, 23),
        )])
    }

    #[test]
    fn register_tracks_the_whole_interface_shell() {
        let r = FluxRegister::new(&fine_ba(), IntVect::splat(2), 5);
        // Coarsened patch is 8³: interface = 6 faces × 64 cells.
        assert_eq!(r.nfaces(), 6 * 64);
    }

    #[test]
    fn matched_fluxes_cancel_exactly() {
        let mut r = FluxRegister::new(&fine_ba(), IntVect::splat(2), 1);
        let face = InterfaceFace {
            cell: IntVect::new(3, 5, 5),
            dir: 0,
            sign: -1,
        };
        r.add_coarse_flux(face, &[2.0]);
        // 4 fine faces of flux 2.0 each, weight 1/4: sums to 2.0.
        for _ in 0..4 {
            r.add_fine_flux(face, &[2.0]);
        }
        assert!(r.total_mismatch() < 1e-14);
    }

    #[test]
    fn reflux_restores_conservation() {
        // Coarse level loses mass through an interface face because the
        // coarse flux overestimated; the register repairs it exactly.
        let coarse_domain = IndexBox::from_extents(16, 16, 16);
        let ba = Arc::new(BoxArray::new(vec![coarse_domain]));
        let dm = Arc::new(DistributionMapping::all_on_root(&ba));
        let mut coarse = MultiFab::new(ba, dm, 1, 0);
        coarse.set_val(1.0);
        let before = coarse.sum(0);

        let mut r = FluxRegister::new(&fine_ba(), IntVect::splat(2), 1);
        let face = InterfaceFace {
            cell: IntVect::new(3, 9, 9),
            dir: 0,
            sign: -1,
        };
        // Coarse flux 3.0; fine faces say 2.0: δF = -1.0 on that face.
        r.add_coarse_flux(face, &[3.0]);
        for _ in 0..4 {
            r.add_fine_flux(face, &[2.0]);
        }
        let inv_dx = [1.0; 3];
        r.reflux(&mut coarse, inv_dx);
        // The adjacent coarse cell received sign·δF = (−1)·(−1) = +1.
        assert!((coarse.fab(0).get(IntVect::new(3, 9, 9), 0) - 2.0).abs() < 1e-14);
        assert!((coarse.sum(0) - before - 1.0).abs() < 1e-12);
    }

    #[test]
    fn faces_not_on_the_interface_are_ignored() {
        let mut r = FluxRegister::new(&fine_ba(), IntVect::splat(2), 1);
        let inside = InterfaceFace {
            cell: IntVect::new(10, 10, 10), // covered by the fine patch
            dir: 0,
            sign: 1,
        };
        r.add_coarse_flux(inside, &[5.0]);
        assert_eq!(r.total_mismatch(), 0.0);
    }
}
