//! Flux registers: conservation repair at coarse–fine interfaces.
//!
//! AMReX-core provides flux registers for subcycling codes: the coarse level
//! advances with its own face fluxes, the fine level with (more accurate)
//! fine-face fluxes, and the register accumulates both sides on every coarse
//! interface face so a *reflux* pass can replace the coarse flux with the
//! time-and-area sum of the fine fluxes — repairing the uncovered coarse
//! cells and restoring global conservation (§III-C's "lacks conservation of
//! quantities across interfaces" concern). The subcycled driver uses it like
//! this (docs/ARCHITECTURE.md §Subcycling):
//!
//! - the coarse advance records its interface fluxes with
//!   [`FluxRegister::add_coarse_flux`], weighted by the net RK flux weight
//!   of each stage;
//! - each fine substep records every fine face crossing the interface with
//!   [`FluxRegister::add_fine_flux`], weighted by the stage weight times
//!   `dt_fine/dt_coarse` (the substep's share of the coarse step);
//! - after the substeps, [`FluxRegister::reflux`] applies
//!   `U[cell] += sign · dt_coarse · (Σfine − coarse) / J(cell)` to the
//!   uncovered coarse cells.
//!
//! The coarse and fine accumulations are kept **separate** per face and
//! combined only inside `reflux`, in one canonical order — so the final
//! correction is bitwise-independent of which rank or executor contributed
//! which side, and a face whose fine fluxes exactly match the coarse flux
//! produces a bitwise-zero correction.
//!
//! The fluxes recorded are the *computational-space* contravariant fluxes
//! `F̂ = Σ_j m_j F_j(U)` the WENO sweep differenced: the metric `m = J·∇ξ`
//! already carries the face area, so `ratio²` fine-face fluxes sum directly
//! to one coarse-face flux with no extra area weight (on a refined uniform
//! grid `m_fine = m_coarse/4` exactly). Convective fluxes only — the viscous
//! operator is not registered, so refluxed conservation is exact for
//! inviscid runs. The register is not periodic-aware: faces whose coarse
//! neighbor lies outside the domain are never recorded by either side.

use crocco_fab::{BoxArray, MultiFab};
use crocco_geometry::{IndexBox, IntVect};
use std::collections::HashMap;

/// One face of the coarse–fine interface: the coarse cell it borders (on the
/// *coarse, uncovered* side), the face direction, and the orientation sign
/// (see [`InterfaceFace::sign`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct InterfaceFace {
    /// The uncovered coarse cell adjacent to the interface.
    pub cell: IntVect,
    /// Face direction (0, 1, 2).
    pub dir: usize,
    /// Sign of the refluxed tendency `sign·δF/J`: −1 when the shared face
    /// is the coarse cell's *high* face (fine level above it), +1 when it is
    /// the cell's *low* face — the flux-difference orientation of
    /// `dU = −(F_hi − F_lo)/J`.
    pub sign: i8,
}

/// Per-face accumulators, coarse and fine sides kept separate so the
/// combination order (fine − coarse, once, at reflux) is canonical.
#[derive(Clone, Debug)]
struct FaceAcc {
    coarse: Vec<f64>,
    fine: Vec<f64>,
}

/// Accumulates coarse/fine flux mismatches over the coarse–fine interface of
/// one level pair.
#[derive(Clone, Debug)]
pub struct FluxRegister {
    ncomp: usize,
    ratio: IntVect,
    register: HashMap<InterfaceFace, FaceAcc>,
}

impl FluxRegister {
    /// Builds the register for the interface between `fine_ba` (fine index
    /// space) and the coarse level that contains it. Every fine boundary
    /// face whose coarse neighbor is *not* covered by the fine level becomes
    /// a register entry.
    pub fn new(fine_ba: &BoxArray, ratio: IntVect, ncomp: usize) -> Self {
        let mut register = HashMap::new();
        let coarsened = fine_ba.coarsen(ratio);
        for fb in coarsened.boxes() {
            for dir in 0..3 {
                for (outside, sign) in [
                    (fb.grow_lo(dir, 1).grow_hi(dir, -(fb.length(dir))), -1i8),
                    (fb.grow_hi(dir, 1).grow_lo(dir, -(fb.length(dir))), 1i8),
                ] {
                    for cell in outside.cells() {
                        if !coarsened.intersects_any(IndexBox::new(cell, cell)) {
                            register.insert(
                                InterfaceFace { cell, dir, sign },
                                FaceAcc {
                                    coarse: vec![0.0; ncomp],
                                    fine: vec![0.0; ncomp],
                                },
                            );
                        }
                    }
                }
            }
        }
        FluxRegister {
            ncomp,
            ratio,
            register,
        }
    }

    /// Number of interface faces being tracked.
    pub fn nfaces(&self) -> usize {
        self.register.len()
    }

    /// Number of components per face.
    pub fn ncomp(&self) -> usize {
        self.ncomp
    }

    /// Whether `face` is part of the tracked interface.
    pub fn contains(&self, face: &InterfaceFace) -> bool {
        self.register.contains_key(face)
    }

    /// Clears the accumulators.
    pub fn reset(&mut self) {
        for v in self.register.values_mut() {
            v.coarse.iter_mut().for_each(|x| *x = 0.0);
            v.fine.iter_mut().for_each(|x| *x = 0.0);
        }
    }

    /// The register face crossed by the *outward* boundary face of
    /// `fine_cell` in `dir`: its low face when `high` is false (the coarse
    /// neighbor sits below, `sign = −1` from that neighbor's viewpoint), its
    /// high face when `high` is true (`sign = +1`). The caller is
    /// responsible for only passing faces on the fine-union boundary; use
    /// [`contains`](Self::contains) to drop faces that border another fine
    /// patch or the domain exterior.
    pub fn fine_face(&self, fine_cell: IntVect, dir: usize, high: bool) -> InterfaceFace {
        let outside = if high {
            fine_cell + IntVect::unit(dir)
        } else {
            fine_cell - IntVect::unit(dir)
        };
        let cell = IntVect::new(
            outside[0].div_euclid(self.ratio[0]),
            outside[1].div_euclid(self.ratio[1]),
            outside[2].div_euclid(self.ratio[2]),
        );
        InterfaceFace {
            cell,
            dir,
            // From the coarse neighbor's viewpoint: a fine *low*-boundary
            // face is that neighbor's high face (sign −1), and vice versa.
            sign: if high { 1 } else { -1 },
        }
    }

    /// All register faces whose coarse cell lies in `bx`, in canonical order
    /// (cell z-major, then direction, then sign) — the deterministic face
    /// list per coarse patch that recording plans and the owned-mode reflux
    /// exchange are built from.
    pub fn faces_in(&self, bx: IndexBox) -> Vec<InterfaceFace> {
        let mut faces: Vec<InterfaceFace> = self
            .register
            .keys()
            .filter(|f| bx.contains(f.cell))
            .copied()
            .collect();
        faces.sort_by_key(|f| (f.cell[2], f.cell[1], f.cell[0], f.dir, f.sign));
        faces
    }

    /// Records the *coarse* flux through the interface face bordering
    /// `face.cell`: `coarse[c] += weight·flux[c]`. The subcycled driver
    /// passes the net RK flux weight of the recording stage.
    pub fn add_coarse_flux(&mut self, face: InterfaceFace, flux: &[f64], weight: f64) {
        if let Some(acc) = self.register.get_mut(&face) {
            for (a, f) in acc.coarse.iter_mut().zip(flux) {
                *a += weight * f;
            }
        }
    }

    /// Records one *fine* face flux crossing the coarse face:
    /// `fine[c] += weight·flux[c]`. The driver passes the net RK flux weight
    /// times `dt_fine/dt_coarse`; the `ratio²` fine faces crossing one
    /// coarse face all accumulate into the same entry (no area weight — the
    /// contravariant flux already carries the fine face metric).
    pub fn add_fine_flux(&mut self, face: InterfaceFace, flux: &[f64], weight: f64) {
        if let Some(acc) = self.register.get_mut(&face) {
            for (a, f) in acc.fine.iter_mut().zip(flux) {
                *a += weight * f;
            }
        }
    }

    /// The fine-side accumulation for `face`, if tracked — what the owned
    /// distributed path ships from the fine patch's owner to the coarse
    /// cell's owner before refluxing.
    pub fn fine_part(&self, face: &InterfaceFace) -> Option<&[f64]> {
        self.register.get(face).map(|a| a.fine.as_slice())
    }

    /// Merges a fine-side contribution received from another rank:
    /// `fine[c] += part[c]`. Each face has exactly one fine contributor
    /// patch, so the merge lands on an all-zero accumulator and the result
    /// is bitwise what the sender held.
    pub fn add_fine_part(&mut self, face: InterfaceFace, part: &[f64]) {
        if let Some(acc) = self.register.get_mut(&face) {
            for (a, p) in acc.fine.iter_mut().zip(part) {
                *a += p;
            }
        }
    }

    /// Applies the accumulated corrections to the coarse state:
    /// `U[cell] += sign · dt · (fine − coarse) / J(cell)` — the reflux pass,
    /// with the dt scaling the subcycled driver defers to here and the cell
    /// Jacobian (`metrics` component `jac_comp`) converting the
    /// computational-space face flux into a cell tendency. Iterates patches,
    /// cells, directions, and signs in a fixed order, so corrections to a
    /// cell with several interface faces are applied in a
    /// rank-count-independent sequence. Only allocated (owned) patches are
    /// touched.
    pub fn reflux(&self, coarse: &mut MultiFab, metrics: &MultiFab, jac_comp: usize, dt: f64) {
        for i in 0..coarse.nfabs() {
            if !coarse.is_allocated(i) {
                continue;
            }
            let vb = coarse.valid_box(i);
            for cell in vb.cells() {
                for dir in 0..3 {
                    for sign in [-1i8, 1i8] {
                        let face = InterfaceFace { cell, dir, sign };
                        if let Some(acc) = self.register.get(&face) {
                            let jac = metrics.fab(i).get(cell, jac_comp);
                            let fab = coarse.fab_mut(i);
                            for c in 0..self.ncomp {
                                let delta = acc.fine[c] - acc.coarse[c];
                                fab.add(cell, c, sign as f64 * dt * delta / jac);
                            }
                        }
                    }
                }
            }
        }
    }

    /// Sum of absolute accumulated mismatch `|fine − coarse|` over all faces
    /// and components (diagnostics). Exactly `0.0` when every face's fine
    /// fluxes cancel its coarse flux bitwise.
    pub fn total_mismatch(&self) -> f64 {
        self.register
            .values()
            .flat_map(|a| a.fine.iter().zip(&a.coarse))
            .map(|(f, c)| (f - c).abs())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crocco_fab::DistributionMapping;
    use std::sync::Arc;

    fn fine_ba() -> BoxArray {
        // One fine patch in the middle of a 16³ coarse domain.
        BoxArray::new(vec![IndexBox::new(
            IntVect::new(8, 8, 8),
            IntVect::new(23, 23, 23),
        )])
    }

    /// A unit-Jacobian "metrics" MultiFab matching `coarse`'s layout.
    fn unit_jac(like: &MultiFab) -> MultiFab {
        let mut m = MultiFab::new(like.boxarray().clone(), like.distribution().clone(), 1, 0);
        m.set_val(1.0);
        m
    }

    #[test]
    fn register_tracks_the_whole_interface_shell() {
        let r = FluxRegister::new(&fine_ba(), IntVect::splat(2), 5);
        // Coarsened patch is 8³: interface = 6 faces × 64 cells.
        assert_eq!(r.nfaces(), 6 * 64);
    }

    #[test]
    fn identical_coarse_and_fine_fluxes_give_bitwise_zero_correction() {
        // The satellite property: a coarse flux of 2.0 against the
        // physically identical fine fluxes — 4 fine faces of 0.5 (the
        // contravariant flux carries the quarter-area fine metric), over 2
        // substeps at weight dt_f/dt_c = 0.5 — cancels *bitwise*, because
        // 4·(2·0.5·0.5) is exact in binary floating point.
        let mut r = FluxRegister::new(&fine_ba(), IntVect::splat(2), 1);
        let face = InterfaceFace {
            cell: IntVect::new(3, 5, 5),
            dir: 0,
            sign: -1,
        };
        r.add_coarse_flux(face, &[2.0], 1.0);
        for _substep in 0..2 {
            for _fine_face in 0..4 {
                r.add_fine_flux(face, &[0.5], 0.5);
            }
        }
        assert_eq!(r.total_mismatch(), 0.0);

        // And the reflux pass leaves the coarse state bitwise untouched.
        let coarse_domain = IndexBox::from_extents(16, 16, 16);
        let ba = Arc::new(BoxArray::new(vec![coarse_domain]));
        let dm = Arc::new(DistributionMapping::all_on_root(&ba));
        let mut coarse = MultiFab::new(ba, dm, 1, 0);
        coarse.set_val(1.0);
        let jac = unit_jac(&coarse);
        r.reflux(&mut coarse, &jac, 0, 0.37);
        for p in coarse.valid_box(0).cells() {
            assert_eq!(coarse.fab(0).get(p, 0).to_bits(), 1.0f64.to_bits());
        }
    }

    #[test]
    fn reflux_restores_conservation() {
        // Coarse level loses mass through an interface face because the
        // coarse flux overestimated; the register repairs it exactly.
        let coarse_domain = IndexBox::from_extents(16, 16, 16);
        let ba = Arc::new(BoxArray::new(vec![coarse_domain]));
        let dm = Arc::new(DistributionMapping::all_on_root(&ba));
        let mut coarse = MultiFab::new(ba, dm, 1, 0);
        coarse.set_val(1.0);
        let before = coarse.sum(0);

        let mut r = FluxRegister::new(&fine_ba(), IntVect::splat(2), 1);
        let face = InterfaceFace {
            cell: IntVect::new(3, 9, 9),
            dir: 0,
            sign: -1,
        };
        // Coarse flux 3.0; the 4 fine faces sum to 2.0: δF = −1.0.
        r.add_coarse_flux(face, &[3.0], 1.0);
        for _ in 0..4 {
            r.add_fine_flux(face, &[0.5], 1.0);
        }
        let jac = unit_jac(&coarse);
        r.reflux(&mut coarse, &jac, 0, 1.0);
        // The adjacent coarse cell received sign·dt·δF = (−1)·(−1) = +1.
        assert!((coarse.fab(0).get(IntVect::new(3, 9, 9), 0) - 2.0).abs() < 1e-14);
        assert!((coarse.sum(0) - before - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reflux_scales_with_dt() {
        let coarse_domain = IndexBox::from_extents(16, 16, 16);
        let ba = Arc::new(BoxArray::new(vec![coarse_domain]));
        let dm = Arc::new(DistributionMapping::all_on_root(&ba));
        let mut coarse = MultiFab::new(ba, dm, 1, 0);
        coarse.set_val(0.0);
        let mut r = FluxRegister::new(&fine_ba(), IntVect::splat(2), 1);
        let face = InterfaceFace {
            cell: IntVect::new(3, 9, 9),
            dir: 0,
            sign: -1,
        };
        r.add_fine_flux(face, &[1.0], 1.0); // δ = +1 on that face
        let jac = unit_jac(&coarse);
        r.reflux(&mut coarse, &jac, 0, 0.25);
        assert!((coarse.fab(0).get(IntVect::new(3, 9, 9), 0) - (-0.25)).abs() < 1e-15);
    }

    #[test]
    fn fine_face_maps_boundary_faces_to_register_keys() {
        let r = FluxRegister::new(&fine_ba(), IntVect::splat(2), 1);
        // Fine cell (8,10,10) sits on the fine patch's low-x boundary: its
        // low-x face crosses the coarse face at uncovered cell (3,5,5).
        let f = r.fine_face(IntVect::new(8, 10, 10), 0, false);
        assert_eq!(f.cell, IntVect::new(3, 5, 5));
        assert_eq!((f.dir, f.sign), (0, -1));
        assert!(r.contains(&f));
        // Fine cell (23,10,10) on the high-x boundary: high-x face crosses
        // the coarse face at uncovered cell (12,5,5).
        let f = r.fine_face(IntVect::new(23, 10, 10), 0, true);
        assert_eq!(f.cell, IntVect::new(12, 5, 5));
        assert_eq!((f.dir, f.sign), (0, 1));
        assert!(r.contains(&f));
        // An interior fine face maps to a covered cell: not in the register.
        let f = r.fine_face(IntVect::new(12, 10, 10), 0, false);
        assert!(!r.contains(&f));
    }

    #[test]
    fn faces_in_is_deterministically_ordered() {
        let r = FluxRegister::new(&fine_ba(), IntVect::splat(2), 1);
        let all = r.faces_in(IndexBox::from_extents(16, 16, 16));
        assert_eq!(all.len(), r.nfaces());
        let mut sorted = all.clone();
        sorted.sort_by_key(|f| (f.cell[2], f.cell[1], f.cell[0], f.dir, f.sign));
        assert_eq!(all, sorted);
        // Restricting to a sub-box keeps only faces whose coarse cell is in.
        let half = IndexBox::new(IntVect::new(0, 0, 0), IntVect::new(7, 15, 15));
        for f in r.faces_in(half) {
            assert!(half.contains(f.cell));
        }
    }

    #[test]
    fn faces_not_on_the_interface_are_ignored() {
        let mut r = FluxRegister::new(&fine_ba(), IntVect::splat(2), 1);
        let inside = InterfaceFace {
            cell: IntVect::new(10, 10, 10), // covered by the fine patch
            dir: 0,
            sign: 1,
        };
        r.add_coarse_flux(inside, &[5.0], 1.0);
        assert_eq!(r.total_mismatch(), 0.0);
    }

    #[test]
    fn fine_parts_merge_bitwise_across_owners() {
        // Simulate the owned-mode exchange: the fine owner accumulates, the
        // coarse owner merges the shipped part onto zeros — bitwise equal to
        // single-rank accumulation.
        let face = InterfaceFace {
            cell: IntVect::new(3, 5, 5),
            dir: 0,
            sign: -1,
        };
        let mut serial = FluxRegister::new(&fine_ba(), IntVect::splat(2), 1);
        let mut fine_owner = serial.clone();
        let mut coarse_owner = serial.clone();
        for k in 0..8 {
            let f = [0.1 * (k as f64 + 1.0)];
            serial.add_fine_flux(face, &f, 0.5);
            fine_owner.add_fine_flux(face, &f, 0.5);
        }
        serial.add_coarse_flux(face, &[1.7], 1.0);
        coarse_owner.add_coarse_flux(face, &[1.7], 1.0);
        let part = fine_owner.fine_part(&face).unwrap().to_vec();
        coarse_owner.add_fine_part(face, &part);
        assert_eq!(
            serial.total_mismatch().to_bits(),
            coarse_owner.total_mismatch().to_bits()
        );
    }
}
