//! Berger–Rigoutsos clustering of tagged cells into patches.
//!
//! The classic signature-based algorithm AMReX uses to turn a tag field into
//! a set of logically rectangular patches: recursively split the bounding box
//! of the tags at signature holes (planes with no tags) or at the strongest
//! inflection of the signature's second difference, until every box meets the
//! grid-efficiency target. Split planes are snapped to the blocking factor so
//! every generated patch honours the §III-B input-deck constraints, and the
//! final boxes are chopped to the maximum grid size.

use crate::tagging::TagSet;
use crocco_geometry::decompose::{align_to_blocking, chop_to_max_size, ChopParams};
use crocco_geometry::{IndexBox, IntVect};

/// Clustering parameters.
#[derive(Clone, Copy, Debug)]
pub struct ClusterParams {
    /// Minimum fraction of cells in a generated box that must be tagged
    /// (AMReX `grid_eff`, default 0.7).
    pub efficiency: f64,
    /// Patch corner/extent alignment (the paper uses 8).
    pub blocking_factor: i64,
    /// Maximum patch extent in any direction (the paper uses 128).
    pub max_grid_size: i64,
    /// Level domain: generated boxes are clipped to it.
    pub domain: IndexBox,
}

impl ClusterParams {
    /// Paper defaults over `domain`.
    pub fn paper(domain: IndexBox) -> Self {
        ClusterParams {
            efficiency: 0.7,
            blocking_factor: 8,
            max_grid_size: 128,
            domain,
        }
    }
}

/// Clusters tagged cells into disjoint, blocking-aligned boxes covering every
/// tag, each at most `max_grid_size` long, targeting the efficiency bound.
pub fn cluster_tags(tags: &TagSet, params: ClusterParams) -> Vec<IndexBox> {
    if tags.is_empty() {
        return Vec::new();
    }
    let pts = tags.restrict(params.domain).to_vec();
    if pts.is_empty() {
        return Vec::new();
    }
    let mut accepted = Vec::new();
    recurse(pts, &params, &mut accepted, 0);
    // Enforce the maximum grid size.
    let chop = ChopParams::new(params.blocking_factor, aligned_max(params));
    let mut out = Vec::new();
    for b in accepted {
        out.extend(chop_to_max_size(b, chop));
    }
    out.sort_by_key(|b| (b.lo()[2], b.lo()[1], b.lo()[0]));
    out
}

/// Maximum grid size rounded down to a blocking-factor multiple (≥ one tile).
fn aligned_max(p: ClusterParams) -> i64 {
    ((p.max_grid_size / p.blocking_factor).max(1)) * p.blocking_factor
}

/// The aligned, domain-clipped bounding box of a point set.
fn aligned_bbox(pts: &[IntVect], params: &ClusterParams) -> IndexBox {
    let mut lo = pts[0];
    let mut hi = pts[0];
    for &p in pts {
        lo = lo.min(p);
        hi = hi.max(p);
    }
    align_to_blocking(IndexBox::new(lo, hi), params.blocking_factor)
        .intersection(&params.domain)
}

fn recurse(pts: Vec<IntVect>, params: &ClusterParams, out: &mut Vec<IndexBox>, depth: u32) {
    debug_assert!(!pts.is_empty());
    let bb = aligned_bbox(&pts, params);
    let eff = pts.len() as f64 / bb.num_points() as f64;
    // Accept when efficient enough, unsplittable, or suspiciously deep.
    if eff >= params.efficiency || depth > 60 {
        out.push(bb);
        return;
    }
    match choose_split(&pts, bb, params.blocking_factor) {
        None => out.push(bb),
        Some((dir, pos)) => {
            let (mut left, mut right) = (Vec::new(), Vec::new());
            for p in pts {
                if p[dir] < pos {
                    left.push(p);
                } else {
                    right.push(p);
                }
            }
            if left.is_empty() || right.is_empty() {
                // A degenerate split (can happen when alignment pushes the
                // plane past all points): accept the box as-is.
                out.push(bb);
                return;
            }
            recurse(left, params, out, depth + 1);
            recurse(right, params, out, depth + 1);
        }
    }
}

/// Picks a split `(direction, plane)` for the tags in `bb`, preferring
/// signature holes, then the strongest inflection, then bisection of the
/// longest direction. Returns `None` if no direction admits an aligned
/// interior split plane.
fn choose_split(pts: &[IntVect], bb: IndexBox, bf: i64) -> Option<(usize, i64)> {
    // Signatures per direction.
    let size = bb.size();
    let mut sig: [Vec<u32>; 3] = [
        vec![0; size[0] as usize],
        vec![0; size[1] as usize],
        vec![0; size[2] as usize],
    ];
    for p in pts {
        for d in 0..3 {
            let idx = p[d] - bb.lo()[d];
            if idx >= 0 && idx < size[d] {
                sig[d][idx as usize] += 1;
            }
        }
    }

    // 1. Hole split: an aligned interior plane position `pos` such that the
    // tile [pos, pos+bf) contains an all-zero signature run boundary. We look
    // for zero entries and snap outward.
    let mut best_hole: Option<(usize, i64, i64)> = None; // (dir, pos, centrality)
    for (d, sig_d) in sig.iter().enumerate() {
        for (i, &s) in sig_d.iter().enumerate() {
            if s != 0 {
                continue;
            }
            let abs = bb.lo()[d] + i as i64;
            if let Some(pos) = snap_interior(abs, bb, d, bf) {
                let central = -(pos - (bb.lo()[d] + bb.hi()[d]) / 2).abs();
                if best_hole.map(|(_, _, c)| central > c).unwrap_or(true) {
                    best_hole = Some((d, pos, central));
                }
            }
        }
    }
    if let Some((d, pos, _)) = best_hole {
        return Some((d, pos));
    }

    // 2. Inflection split: strongest sign change of the second difference.
    let mut best_inf: Option<(usize, i64, i64)> = None; // (dir, pos, strength)
    for (d, s) in sig.iter().enumerate() {
        if s.len() < 4 {
            continue;
        }
        let lap: Vec<i64> = (1..s.len() - 1)
            .map(|i| s[i + 1] as i64 - 2 * s[i] as i64 + s[i - 1] as i64)
            .collect();
        for w in 1..lap.len() {
            if (lap[w - 1] >= 0) != (lap[w] >= 0) {
                let strength = (lap[w] - lap[w - 1]).abs();
                let abs = bb.lo()[d] + (w + 1) as i64;
                if let Some(pos) = snap_interior(abs, bb, d, bf) {
                    if best_inf.map(|(_, _, st)| strength > st).unwrap_or(true) {
                        best_inf = Some((d, pos, strength));
                    }
                }
            }
        }
    }
    if let Some((d, pos, _)) = best_inf {
        return Some((d, pos));
    }

    // 3. Bisect the longest splittable direction.
    let mut dirs: Vec<usize> = (0..3).collect();
    dirs.sort_by_key(|&d| std::cmp::Reverse(size[d]));
    for d in dirs {
        let mid = bb.lo()[d] + size[d] / 2;
        if let Some(pos) = snap_interior(mid, bb, d, bf) {
            return Some((d, pos));
        }
    }
    None
}

/// Snaps `abs` to the nearest blocking-factor multiple strictly inside `bb`
/// along `dir`, or `None` if the box is too thin to split.
fn snap_interior(abs: i64, bb: IndexBox, dir: usize, bf: i64) -> Option<i64> {
    let lo = bb.lo()[dir];
    let hi = bb.hi()[dir];
    let min_pos = lo + bf;
    let max_pos = hi + 1 - bf;
    if min_pos > max_pos {
        return None;
    }
    let snapped = (abs.div_euclid(bf)) * bf;
    Some(snapped.clamp(min_pos, max_pos))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crocco_fab::BoxArray;

    fn params(domain: IndexBox) -> ClusterParams {
        ClusterParams {
            efficiency: 0.7,
            blocking_factor: 4,
            max_grid_size: 16,
            domain,
        }
    }

    fn check_invariants(tags: &TagSet, boxes: &[IndexBox], p: ClusterParams) {
        // Every tag covered.
        for t in tags.iter() {
            if !p.domain.contains(t) {
                continue;
            }
            assert!(
                boxes.iter().any(|b| b.contains(t)),
                "tag {t:?} uncovered by {boxes:?}"
            );
        }
        for b in boxes {
            assert!(b.is_blocked(p.blocking_factor), "{b:?} not blocked");
            assert!(b.size().max_component() <= p.max_grid_size);
            assert!(p.domain.contains_box(b));
        }
        // Disjointness (BoxArray construction asserts it).
        if !boxes.is_empty() {
            let _ = BoxArray::new(boxes.to_vec());
        }
    }

    #[test]
    fn empty_tags_give_no_boxes() {
        let domain = IndexBox::from_extents(32, 32, 32);
        assert!(cluster_tags(&TagSet::new(), params(domain)).is_empty());
    }

    #[test]
    fn single_cluster_is_one_tight_box() {
        let domain = IndexBox::from_extents(32, 32, 32);
        let mut t = TagSet::new();
        t.tag_box(IndexBox::new(IntVect::new(4, 4, 4), IntVect::new(11, 11, 11)));
        let boxes = cluster_tags(&t, params(domain));
        check_invariants(&t, &boxes, params(domain));
        assert_eq!(boxes.len(), 1);
        assert_eq!(
            boxes[0],
            IndexBox::new(IntVect::new(4, 4, 4), IntVect::new(11, 11, 11))
        );
    }

    #[test]
    fn two_separated_clusters_split_at_the_hole() {
        let domain = IndexBox::from_extents(64, 16, 16);
        let mut t = TagSet::new();
        t.tag_box(IndexBox::new(IntVect::new(0, 0, 0), IntVect::new(7, 7, 7)));
        t.tag_box(IndexBox::new(IntVect::new(48, 0, 0), IntVect::new(55, 7, 7)));
        let boxes = cluster_tags(&t, params(domain));
        check_invariants(&t, &boxes, params(domain));
        assert_eq!(boxes.len(), 2, "{boxes:?}");
        let total: u64 = boxes.iter().map(|b| b.num_points()).sum();
        assert_eq!(total, 2 * 512);
    }

    #[test]
    fn diagonal_tags_meet_efficiency() {
        let domain = IndexBox::from_extents(64, 64, 8);
        let mut t = TagSet::new();
        for i in 0..64 {
            t.tag(IntVect::new(i, i, 0)); // a shock-like diagonal front
        }
        let p = params(domain);
        let boxes = cluster_tags(&t, p);
        check_invariants(&t, &boxes, p);
        // The clusterer must do much better than one huge bounding box.
        let covered: u64 = boxes.iter().map(|b| b.num_points()).sum();
        assert!(
            covered < 64 * 64 * 8 / 4,
            "covered {covered} cells — clustering too loose"
        );
    }

    #[test]
    fn max_grid_size_enforced_on_large_blobs() {
        let domain = IndexBox::from_extents(64, 64, 64);
        let mut t = TagSet::new();
        t.tag_box(IndexBox::new(IntVect::new(0, 0, 0), IntVect::new(47, 31, 15)));
        let p = params(domain);
        let boxes = cluster_tags(&t, p);
        check_invariants(&t, &boxes, p);
        assert!(boxes.len() >= 6); // 48×32×16 with max 16 ⇒ ≥ 3×2×1
    }

    #[test]
    fn tags_outside_domain_are_ignored() {
        let domain = IndexBox::from_extents(16, 16, 16);
        let mut t = TagSet::new();
        t.tag(IntVect::new(100, 0, 0));
        assert!(cluster_tags(&t, params(domain)).is_empty());
    }

    #[test]
    fn random_tags_are_always_covered() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let domain = IndexBox::from_extents(48, 48, 24);
        for trial in 0..10 {
            let mut t = TagSet::new();
            let n = rng.gen_range(1..200);
            for _ in 0..n {
                t.tag(IntVect::new(
                    rng.gen_range(0..48),
                    rng.gen_range(0..48),
                    rng.gen_range(0..24),
                ));
            }
            let p = params(domain);
            let boxes = cluster_tags(&t, p);
            check_invariants(&t, &boxes, p);
            assert!(!boxes.is_empty(), "trial {trial}");
        }
    }
}
