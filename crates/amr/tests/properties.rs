//! Property-based tests of the AMR framework invariants.

use crocco_amr::interp::{
    ConservativeLinearInterp, Interpolator, PiecewiseConstantInterp, TrilinearInterp,
};
use crocco_amr::{cluster_tags, ClusterParams, TagSet};
use crocco_fab::{BoxArray, FArrayBox};
use crocco_geometry::{IndexBox, IntVect};
use proptest::prelude::*;

fn arb_tags(domain: IndexBox, max_tags: usize) -> impl Strategy<Value = TagSet> {
    prop::collection::vec(
        (
            0..domain.size()[0],
            0..domain.size()[1],
            0..domain.size()[2],
        ),
        1..max_tags,
    )
    .prop_map(|pts| {
        let mut t = TagSet::new();
        for (i, j, k) in pts {
            t.tag(IntVect::new(i, j, k));
        }
        t
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn clustering_covers_all_tags_with_valid_boxes(
        tags in arb_tags(IndexBox::from_extents(48, 48, 24), 120),
    ) {
        let domain = IndexBox::from_extents(48, 48, 24);
        let params = ClusterParams {
            efficiency: 0.7,
            blocking_factor: 4,
            max_grid_size: 16,
            domain,
        };
        let boxes = cluster_tags(&tags, params);
        for t in tags.iter() {
            prop_assert!(boxes.iter().any(|b| b.contains(t)), "tag {:?} uncovered", t);
        }
        for b in &boxes {
            prop_assert!(b.is_blocked(4));
            prop_assert!(b.size().max_component() <= 16);
            prop_assert!(domain.contains_box(b));
        }
        // Disjoint (BoxArray construction panics otherwise).
        let _ = BoxArray::new(boxes);
    }

    #[test]
    fn buffered_tags_remain_covered(
        tags in arb_tags(IndexBox::from_extents(32, 32, 16), 40),
        buffer in 0i64..3,
    ) {
        let domain = IndexBox::from_extents(32, 32, 16);
        let buffered = tags.buffer(buffer, domain);
        prop_assert!(buffered.len() >= tags.len());
        for t in tags.iter() {
            prop_assert!(buffered.contains(t));
        }
    }

    #[test]
    fn interpolators_are_exact_on_constants(
        value in -10.0f64..10.0,
    ) {
        let cbx = IndexBox::new(IntVect::new(-2, -2, -2), IntVect::new(5, 5, 5));
        let coarse = FArrayBox::filled(cbx, 2, value);
        let region = IndexBox::from_extents(8, 8, 8);
        let interps: Vec<Box<dyn Interpolator>> = vec![
            Box::new(PiecewiseConstantInterp),
            Box::new(TrilinearInterp),
            Box::new(ConservativeLinearInterp),
        ];
        for interp in interps {
            let mut fine = FArrayBox::new(region, 2);
            interp.interp(&coarse, &mut fine, region, IntVect::splat(2), None, None);
            for p in region.cells() {
                for c in 0..2 {
                    prop_assert!((fine.get(p, c) - value).abs() < 1e-12,
                        "{} at {:?}", interp.name(), p);
                }
            }
        }
    }

    #[test]
    fn conservative_interp_conserves_random_fields(seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let cbx = IndexBox::new(IntVect::new(-1, -1, -1), IntVect::new(4, 4, 4));
        let mut coarse = FArrayBox::new(cbx, 1);
        for p in cbx.cells() {
            coarse.set(p, 0, rng.gen_range(-1.0..1.0));
        }
        let cregion = IndexBox::from_extents(4, 4, 4);
        let fregion = cregion.refine(IntVect::splat(2));
        let mut fine = FArrayBox::new(fregion, 1);
        ConservativeLinearInterp.interp(&coarse, &mut fine, fregion, IntVect::splat(2), None, None);
        for cp in cregion.cells() {
            let children = IndexBox::new(cp, cp).refine(IntVect::splat(2));
            let mean: f64 = children.cells().map(|p| fine.get(p, 0)).sum::<f64>() / 8.0;
            prop_assert!((mean - coarse.get(cp, 0)).abs() < 1e-12);
        }
    }

    #[test]
    fn trilinear_respects_local_bounds(seed in any::<u64>()) {
        // Trilinear interpolation is a convex combination: every fine value
        // lies within the min/max of its 8 coarse neighbors.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let cbx = IndexBox::new(IntVect::new(-2, -2, -2), IntVect::new(5, 5, 5));
        let mut coarse = FArrayBox::new(cbx, 1);
        for p in cbx.cells() {
            coarse.set(p, 0, rng.gen_range(-5.0..5.0));
        }
        let region = IndexBox::from_extents(8, 8, 8);
        let mut fine = FArrayBox::new(region, 1);
        TrilinearInterp.interp(&coarse, &mut fine, region, IntVect::splat(2), None, None);
        let lo = coarse.min_region(cbx, 0);
        let hi = coarse.max_region(cbx, 0);
        for p in region.cells() {
            let v = fine.get(p, 0);
            prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn weno_conservative_interp_conserves_random_fields(seed in any::<u64>()) {
        use crocco_amr::interp::WenoConservativeInterp;
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let cbx = IndexBox::new(IntVect::new(-1, -1, -1), IntVect::new(4, 4, 4));
        let mut coarse = FArrayBox::new(cbx, 2);
        for c in 0..2 {
            for p in cbx.cells() {
                coarse.set(p, c, rng.gen_range(-3.0..3.0));
            }
        }
        let cregion = IndexBox::from_extents(4, 4, 4);
        let fregion = cregion.refine(IntVect::splat(2));
        let mut fine = FArrayBox::new(fregion, 2);
        WenoConservativeInterp.interp(&coarse, &mut fine, fregion, IntVect::splat(2), None, None);
        for c in 0..2 {
            for cp in cregion.cells() {
                let children = IndexBox::new(cp, cp).refine(IntVect::splat(2));
                let mean: f64 =
                    children.cells().map(|p| fine.get(p, c)).sum::<f64>() / 8.0;
                prop_assert!(
                    (mean - coarse.get(cp, c)).abs() < 1e-12,
                    "conservation violated at {:?} comp {}", cp, c
                );
            }
        }
    }
}
