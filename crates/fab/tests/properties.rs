//! Property-based tests of the container and communication-plan layer.

use crocco_fab::plan::fill_boundary_plan;
use crocco_fab::{BoxArray, DistributionMapping, DistributionStrategy, FArrayBox, MultiFab};
use crocco_geometry::decompose::ChopParams;
use crocco_geometry::{IndexBox, IntVect, ProblemDomain};
use proptest::prelude::*;
use std::sync::Arc;

fn arb_domain() -> impl Strategy<Value = IndexBox> {
    (1i64..5, 1i64..5, 1i64..5)
        .prop_map(|(a, b, c)| IndexBox::from_extents(a * 8, b * 8, c * 8))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn decomposition_counts_are_invariant(domain in arb_domain(), mg in prop::sample::select(vec![8i64, 16, 24])) {
        let ba = BoxArray::decompose(domain, ChopParams::new(4, mg));
        prop_assert_eq!(ba.num_points(), domain.num_points());
        prop_assert!(ba.covers(domain));
        prop_assert_eq!(ba.hull(), domain);
    }

    #[test]
    fn every_strategy_balances_within_one_box(
        domain in arb_domain(),
        nranks in 1usize..16,
        strat in prop::sample::select(vec![
            DistributionStrategy::RoundRobin,
            DistributionStrategy::MortonSfc,
            DistributionStrategy::Knapsack,
        ]),
    ) {
        let ba = BoxArray::decompose(domain, ChopParams::new(4, 8));
        let dm = DistributionMapping::new(&ba, nranks, strat);
        let loads = dm.rank_loads(&ba);
        prop_assert_eq!(loads.iter().sum::<u64>(), ba.num_points());
        // No rank exceeds the mean by more than the largest box (uniform
        // boxes here), for SFC and knapsack.
        if strat != DistributionStrategy::RoundRobin {
            let max_box = ba.boxes().iter().map(|b| b.num_points()).max().unwrap();
            let mean = ba.num_points() as f64 / nranks as f64;
            let max = *loads.iter().max().unwrap();
            prop_assert!(
                (max as f64) <= mean + max_box as f64,
                "max {} mean {} box {}", max, mean, max_box
            );
        }
    }

    #[test]
    fn fill_boundary_plan_conserves_data_motion_across_distributions(
        domain in arb_domain(),
        nranks in 1usize..9,
        periodic_z in any::<bool>(),
    ) {
        // Total bytes moved (local + remote) must not depend on ownership.
        let pd = ProblemDomain::new(domain, [false, false, periodic_z]);
        let ba = BoxArray::decompose(domain, ChopParams::new(4, 8));
        let serial = DistributionMapping::all_on_root(&ba);
        let dist = DistributionMapping::new(&ba, nranks, DistributionStrategy::MortonSfc);
        let s = fill_boundary_plan(&ba, &serial, &pd, 2, 5).stats();
        let d = fill_boundary_plan(&ba, &dist, &pd, 2, 5).stats();
        prop_assert_eq!(s.local_bytes + s.remote_bytes, d.local_bytes + d.remote_bytes);
        prop_assert_eq!(s.remote_bytes, 0);
    }

    #[test]
    fn fill_boundary_ghosts_match_a_global_field(
        domain in arb_domain(),
        nranks in 1usize..5,
    ) {
        // Fill valid cells from a global linear function, exchange, and
        // check every interior ghost agrees with the function.
        let pd = ProblemDomain::new(domain, [false, true, false]);
        let ba = Arc::new(BoxArray::decompose(domain, ChopParams::new(4, 8)));
        let dm = Arc::new(DistributionMapping::new(&ba, nranks, DistributionStrategy::MortonSfc));
        let mut mf = MultiFab::new(ba, dm, 1, 2);
        let f = |p: IntVect| p[0] as f64 + 17.0 * p[1] as f64 - 3.0 * p[2] as f64;
        for i in 0..mf.nfabs() {
            let valid = mf.valid_box(i);
            for p in valid.cells() {
                mf.fab_mut(i).set(p, 0, f(p));
            }
        }
        mf.fill_boundary(&pd);
        for i in 0..mf.nfabs() {
            let valid = mf.valid_box(i);
            for p in valid.grow(2).cells() {
                if valid.contains(p) || !pd.contains_wrapped(p) {
                    continue;
                }
                let mut q = p;
                // Unwrap periodic y.
                let ny = domain.size()[1];
                q[1] = q[1].rem_euclid(ny);
                prop_assert_eq!(mf.fab(i).get(p, 0), f(q));
            }
        }
    }

    #[test]
    fn fab_lincomb_matches_pointwise(a in -2.0f64..2.0, b in -2.0f64..2.0, seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let bx = IndexBox::from_extents(4, 4, 4);
        let mut x = FArrayBox::new(bx, 2);
        let mut y = FArrayBox::new(bx, 2);
        let mut expect = Vec::new();
        for c in 0..2 {
            for p in bx.cells() {
                let xv: f64 = rng.gen_range(-1.0..1.0);
                let yv: f64 = rng.gen_range(-1.0..1.0);
                x.set(p, c, xv);
                y.set(p, c, yv);
                expect.push(a * xv + b * yv);
            }
        }
        x.lincomb(a, b, &y);
        let mut it = expect.into_iter();
        for c in 0..2 {
            for p in bx.cells() {
                prop_assert_eq!(x.get(p, c), it.next().unwrap());
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tiles_partition_any_box(
        lo in prop::array::uniform3(-10i64..10),
        size in prop::array::uniform3(1i64..20),
        tile in prop::array::uniform3(1i64..9),
    ) {
        use crocco_fab::tiles::tile_boxes;
        let bx = IndexBox::new(
            IntVect::new(lo[0], lo[1], lo[2]),
            IntVect::new(lo[0] + size[0] - 1, lo[1] + size[1] - 1, lo[2] + size[2] - 1),
        );
        let t = IntVect::new(tile[0], tile[1], tile[2]);
        let tiles = tile_boxes(bx, t);
        let total: u64 = tiles.iter().map(|b| b.num_points()).sum();
        prop_assert_eq!(total, bx.num_points());
        for (i, a) in tiles.iter().enumerate() {
            prop_assert!(bx.contains_box(a));
            for d in 0..3 {
                prop_assert!(a.size()[d] <= t[d]);
            }
            for b in &tiles[i + 1..] {
                prop_assert!(!a.intersects(b));
            }
        }
    }
}
