//! Property-based tests of the container and communication-plan layer.

use crocco_fab::plan::{fill_boundary_plan, parallel_copy_plan};
use crocco_fab::plan_cache::PlanCache;
use crocco_fab::{BoxArray, DistributionMapping, DistributionStrategy, FArrayBox, MultiFab};
use crocco_geometry::decompose::ChopParams;
use crocco_geometry::{IndexBox, IntVect, ProblemDomain};
use proptest::prelude::*;
use std::sync::Arc;

fn arb_domain() -> impl Strategy<Value = IndexBox> {
    (1i64..5, 1i64..5, 1i64..5)
        .prop_map(|(a, b, c)| IndexBox::from_extents(a * 8, b * 8, c * 8))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn decomposition_counts_are_invariant(domain in arb_domain(), mg in prop::sample::select(vec![8i64, 16, 24])) {
        let ba = BoxArray::decompose(domain, ChopParams::new(4, mg));
        prop_assert_eq!(ba.num_points(), domain.num_points());
        prop_assert!(ba.covers(domain));
        prop_assert_eq!(ba.hull(), domain);
    }

    #[test]
    fn every_strategy_balances_within_one_box(
        domain in arb_domain(),
        nranks in 1usize..16,
        strat in prop::sample::select(vec![
            DistributionStrategy::RoundRobin,
            DistributionStrategy::MortonSfc,
            DistributionStrategy::Knapsack,
        ]),
    ) {
        let ba = BoxArray::decompose(domain, ChopParams::new(4, 8));
        let dm = DistributionMapping::new(&ba, nranks, strat);
        let loads = dm.rank_loads(&ba);
        prop_assert_eq!(loads.iter().sum::<u64>(), ba.num_points());
        // No rank exceeds the mean by more than the largest box (uniform
        // boxes here), for SFC and knapsack.
        if strat != DistributionStrategy::RoundRobin {
            let max_box = ba.boxes().iter().map(|b| b.num_points()).max().unwrap();
            let mean = ba.num_points() as f64 / nranks as f64;
            let max = *loads.iter().max().unwrap();
            prop_assert!(
                (max as f64) <= mean + max_box as f64,
                "max {} mean {} box {}", max, mean, max_box
            );
        }
    }

    #[test]
    fn fill_boundary_plan_conserves_data_motion_across_distributions(
        domain in arb_domain(),
        nranks in 1usize..9,
        periodic_z in any::<bool>(),
    ) {
        // Total bytes moved (local + remote) must not depend on ownership.
        let pd = ProblemDomain::new(domain, [false, false, periodic_z]);
        let ba = BoxArray::decompose(domain, ChopParams::new(4, 8));
        let serial = DistributionMapping::all_on_root(&ba);
        let dist = DistributionMapping::new(&ba, nranks, DistributionStrategy::MortonSfc);
        let s = fill_boundary_plan(&ba, &serial, &pd, 2, 5).stats();
        let d = fill_boundary_plan(&ba, &dist, &pd, 2, 5).stats();
        prop_assert_eq!(s.local_bytes + s.remote_bytes, d.local_bytes + d.remote_bytes);
        prop_assert_eq!(s.remote_bytes, 0);
    }

    #[test]
    fn fill_boundary_ghosts_match_a_global_field(
        domain in arb_domain(),
        nranks in 1usize..5,
    ) {
        // Fill valid cells from a global linear function, exchange, and
        // check every interior ghost agrees with the function.
        let pd = ProblemDomain::new(domain, [false, true, false]);
        let ba = Arc::new(BoxArray::decompose(domain, ChopParams::new(4, 8)));
        let dm = Arc::new(DistributionMapping::new(&ba, nranks, DistributionStrategy::MortonSfc));
        let mut mf = MultiFab::new(ba, dm, 1, 2);
        let f = |p: IntVect| p[0] as f64 + 17.0 * p[1] as f64 - 3.0 * p[2] as f64;
        for i in 0..mf.nfabs() {
            let valid = mf.valid_box(i);
            for p in valid.cells() {
                mf.fab_mut(i).set(p, 0, f(p));
            }
        }
        mf.fill_boundary(&pd);
        for i in 0..mf.nfabs() {
            let valid = mf.valid_box(i);
            for p in valid.grow(2).cells() {
                if valid.contains(p) || !pd.contains_wrapped(p) {
                    continue;
                }
                let mut q = p;
                // Unwrap periodic y.
                let ny = domain.size()[1];
                q[1] = q[1].rem_euclid(ny);
                prop_assert_eq!(mf.fab(i).get(p, 0), f(q));
            }
        }
    }

    #[test]
    fn fab_lincomb_matches_pointwise(a in -2.0f64..2.0, b in -2.0f64..2.0, seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let bx = IndexBox::from_extents(4, 4, 4);
        let mut x = FArrayBox::new(bx, 2);
        let mut y = FArrayBox::new(bx, 2);
        let mut expect = Vec::new();
        for c in 0..2 {
            for p in bx.cells() {
                let xv: f64 = rng.gen_range(-1.0..1.0);
                let yv: f64 = rng.gen_range(-1.0..1.0);
                x.set(p, c, xv);
                y.set(p, c, yv);
                expect.push(a * xv + b * yv);
            }
        }
        x.lincomb(a, b, &y);
        let mut it = expect.into_iter();
        for c in 0..2 {
            for p in bx.cells() {
                prop_assert_eq!(x.get(p, c), it.next().unwrap());
            }
        }
    }
}

/// Fill valid cells of every patch from a seeded pseudo-random field.
fn fill_random(mf: &mut MultiFab, seed: u64) {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let ncomp = mf.ncomp();
    for i in 0..mf.nfabs() {
        let valid = mf.valid_box(i);
        for p in valid.cells() {
            for c in 0..ncomp {
                let v: f64 = rng.gen_range(-1.0..1.0);
                mf.fab_mut(i).set(p, c, v);
            }
        }
    }
}

/// Bitwise equality of every patch's full data (valid + ghosts).
fn assert_bitwise_equal(a: &MultiFab, b: &MultiFab) {
    assert_eq!(a.nfabs(), b.nfabs());
    for i in 0..a.nfabs() {
        assert_eq!(a.fab(i).data(), b.fab(i).data(), "patch {i} diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A cached FillBoundary plan is the freshly built plan: identical chunk
    /// list and identical PlanStats (so the simulated-network pricing cannot
    /// drift), and the second lookup is a hit on the very same Arc.
    #[test]
    fn cached_fill_boundary_plan_equals_fresh(
        domain in arb_domain(),
        nranks in 1usize..9,
        nghost in 1i64..3,
        periodic_z in any::<bool>(),
    ) {
        let pd = ProblemDomain::new(domain, [false, false, periodic_z]);
        let ba = BoxArray::decompose(domain, ChopParams::new(4, 8));
        let dm = DistributionMapping::new(&ba, nranks, DistributionStrategy::MortonSfc);
        let fresh = fill_boundary_plan(&ba, &dm, &pd, nghost, 5);
        let cache = PlanCache::new();
        let cached = cache.fill_boundary(&ba, &dm, &pd, nghost, 5);
        prop_assert_eq!(&cached.plan.chunks, &fresh.chunks);
        prop_assert_eq!(cached.stats, fresh.stats());
        let again = cache.fill_boundary(&ba, &dm, &pd, nghost, 5);
        prop_assert!(Arc::ptr_eq(&cached, &again));
        prop_assert_eq!(cache.misses(), 1);
        prop_assert_eq!(cache.hits(), 1);
    }

    /// Same contract for cross-BoxArray ParallelCopy plans (coarse → fine
    /// decompositions of the same region).
    #[test]
    fn cached_parallel_copy_plan_equals_fresh(
        domain in arb_domain(),
        nranks in 1usize..9,
        nghost in 0i64..3,
        periodic_z in any::<bool>(),
    ) {
        let pd = ProblemDomain::new(domain, [false, false, periodic_z]);
        let src_ba = BoxArray::decompose(domain, ChopParams::new(8, 16));
        let src_dm = DistributionMapping::new(&src_ba, nranks, DistributionStrategy::MortonSfc);
        let dst_ba = BoxArray::decompose(domain, ChopParams::new(4, 8));
        let dst_dm = DistributionMapping::new(&dst_ba, nranks, DistributionStrategy::Knapsack);
        let fresh = parallel_copy_plan(&src_ba, &src_dm, &dst_ba, &dst_dm, &pd, nghost, 5);
        let cache = PlanCache::new();
        let cached = cache.parallel_copy(&src_ba, &src_dm, &dst_ba, &dst_dm, &pd, nghost, 5);
        prop_assert_eq!(&cached.plan.chunks, &fresh.chunks);
        prop_assert_eq!(cached.stats, fresh.stats());
        let again = cache.parallel_copy(&src_ba, &src_dm, &dst_ba, &dst_dm, &pd, nghost, 5);
        prop_assert!(Arc::ptr_eq(&cached, &again));
        prop_assert_eq!(cache.misses(), 1);
        prop_assert_eq!(cache.hits(), 1);
    }

    /// The cached + parallel execution path produces bitwise-identical ghost
    /// values to the uncached serial path, and keeps doing so across a
    /// regrid-style invalidation followed by new grids: stale plans can never
    /// leak through because fresh BoxArrays carry fresh identity tokens.
    #[test]
    fn cache_invalidation_on_regrid_keeps_ghosts_bitwise_correct(
        domain in arb_domain(),
        nranks in 1usize..5,
        threads in prop::sample::select(vec![1usize, 4]),
        seed in any::<u64>(),
    ) {
        let pd = ProblemDomain::new(domain, [false, true, false]);
        let cache = PlanCache::new();
        // Two "generations" of grids, as produced by an initial build and a
        // regrid (different max box size → genuinely different plans).
        for (generation, mg) in [(0u64, 8i64), (1, 16)] {
            let ba = Arc::new(BoxArray::decompose(domain, ChopParams::new(4, mg)));
            let dm = Arc::new(DistributionMapping::new(&ba, nranks, DistributionStrategy::MortonSfc));
            let mut template = MultiFab::new(ba, dm, 2, 2);
            fill_random(&mut template, seed ^ generation);
            let mut baseline = template.clone();
            baseline.fill_boundary(&pd);
            // Fill twice through the cache: miss then hit, both must match.
            let mut cached_mf = template.clone();
            cached_mf.fill_boundary_cached(&pd, &cache, threads);
            assert_bitwise_equal(&cached_mf, &baseline);
            let mut repeat = template.clone();
            repeat.fill_boundary_cached(&pd, &cache, threads);
            assert_bitwise_equal(&repeat, &baseline);
            prop_assert_eq!(cache.misses(), generation + 1);
            // Regrid: the hierarchy drops every cached plan.
            cache.invalidate();
            prop_assert!(cache.is_empty());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tiles_partition_any_box(
        lo in prop::array::uniform3(-10i64..10),
        size in prop::array::uniform3(1i64..20),
        tile in prop::array::uniform3(1i64..9),
    ) {
        use crocco_fab::tiles::tile_boxes;
        let bx = IndexBox::new(
            IntVect::new(lo[0], lo[1], lo[2]),
            IntVect::new(lo[0] + size[0] - 1, lo[1] + size[1] - 1, lo[2] + size[2] - 1),
        );
        let t = IntVect::new(tile[0], tile[1], tile[2]);
        let tiles = tile_boxes(bx, t);
        let total: u64 = tiles.iter().map(|b| b.num_points()).sum();
        prop_assert_eq!(total, bx.num_points());
        for (i, a) in tiles.iter().enumerate() {
            prop_assert!(bx.contains_box(a));
            for d in 0..3 {
                prop_assert!(a.size()[d] <= t[d]);
            }
            for b in &tiles[i + 1..] {
                prop_assert!(!a.intersects(b));
            }
        }
    }
}
