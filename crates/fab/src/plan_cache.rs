//! Memoized communication plans.
//!
//! Plans only change when a level's grids change (regrid), yet the hot loop
//! asks for the *same* `FillBoundary`/`ParallelCopy` plan every RK stage of
//! every step. AMReX amortizes this by caching the copy metadata in
//! `FabArrayBase`, keyed on `BoxArray`/`DistributionMapping` identity
//! (arXiv:2009.12009, §3); STREAmS-2 does the same for its halo-exchange
//! setup. [`PlanCache`] is that cache: plans are built once per
//! (grids, ghost width, component count, domain) combination and reused until
//! the hierarchy invalidates the cache at regrid.
//!
//! Identity tokens ([`BoxArray::id`], [`DistributionMapping::id`]) make the
//! key O(1): clones share the token, fresh constructions (i.e. new grids)
//! never do, so a stale plan can never be served for new grids even without
//! invalidation — `invalidate` exists to bound memory, not for correctness.

use crate::boxarray::BoxArray;
use crate::distribution::DistributionMapping;
use crate::plan::{fill_boundary_plan, parallel_copy_plan, CopyPlan, PlanStats};
use crocco_geometry::ProblemDomain;
use std::any::Any;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A plan plus everything derivable from it that callers need every
/// execution: precomputed [`PlanStats`] (the network-model input, previously
/// recomputed per call) and destination groups for parallel execution.
#[derive(Clone, Debug, Default)]
pub struct CachedPlan {
    /// The communication plan itself.
    pub plan: CopyPlan,
    /// Aggregate statistics, computed once at build time.
    pub stats: PlanStats,
    /// `dst_id`-grouped chunk ranges (see [`CopyPlan::dst_groups`]).
    pub groups: Vec<(usize, usize)>,
}

impl CachedPlan {
    /// Wraps a freshly built plan, precomputing stats and groups.
    pub fn new(plan: CopyPlan) -> Self {
        let stats = plan.stats();
        let groups = plan.dst_groups();
        CachedPlan {
            plan,
            stats,
            groups,
        }
    }
}

/// Which operation a cached plan belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PlanOp {
    /// Same-level ghost exchange.
    FillBoundary,
    /// Cross-BoxArray gather.
    ParallelCopy,
    /// Client-defined auxiliary entry (e.g. the AMR two-level gather plan);
    /// the tag namespaces independent clients.
    Aux(u32),
}

/// The full cache key. Identity tokens stand in for the grids; the remaining
/// fields capture every other input the plan builders read.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Operation discriminant.
    pub op: PlanOp,
    /// Source BoxArray identity.
    pub src_ba: u64,
    /// Source DistributionMapping identity.
    pub src_dm: u64,
    /// Destination BoxArray identity (same as src for FillBoundary).
    pub dst_ba: u64,
    /// Destination DistributionMapping identity.
    pub dst_dm: u64,
    /// Destination ghost width.
    pub nghost: i64,
    /// Components moved.
    pub ncomp: usize,
    /// Domain low corner.
    pub domain_lo: [i64; 3],
    /// Domain high corner.
    pub domain_hi: [i64; 3],
    /// Domain periodicity.
    pub periodic: [bool; 3],
    /// Extra client bits for `Aux` entries (0 otherwise).
    pub aux: u64,
}

impl PlanKey {
    fn domain_fields(domain: &ProblemDomain) -> ([i64; 3], [i64; 3], [bool; 3]) {
        (domain.bx.lo().0, domain.bx.hi().0, domain.periodic)
    }

    /// Key for a same-level `FillBoundary` plan.
    pub fn fill_boundary(
        ba: &BoxArray,
        dm: &DistributionMapping,
        domain: &ProblemDomain,
        nghost: i64,
        ncomp: usize,
    ) -> Self {
        let (domain_lo, domain_hi, periodic) = Self::domain_fields(domain);
        PlanKey {
            op: PlanOp::FillBoundary,
            src_ba: ba.id(),
            src_dm: dm.id(),
            dst_ba: ba.id(),
            dst_dm: dm.id(),
            nghost,
            ncomp,
            domain_lo,
            domain_hi,
            periodic,
            aux: 0,
        }
    }

    /// Key for a cross-BoxArray `ParallelCopy` plan.
    #[allow(clippy::too_many_arguments)]
    pub fn parallel_copy(
        src_ba: &BoxArray,
        src_dm: &DistributionMapping,
        dst_ba: &BoxArray,
        dst_dm: &DistributionMapping,
        domain: &ProblemDomain,
        dst_ghost: i64,
        ncomp: usize,
    ) -> Self {
        let (domain_lo, domain_hi, periodic) = Self::domain_fields(domain);
        PlanKey {
            op: PlanOp::ParallelCopy,
            src_ba: src_ba.id(),
            src_dm: src_dm.id(),
            dst_ba: dst_ba.id(),
            dst_dm: dst_dm.id(),
            nghost: dst_ghost,
            ncomp,
            domain_lo,
            domain_hi,
            periodic,
            aux: 0,
        }
    }
}

/// The memoization table. One instance lives in the AMR hierarchy and is
/// shared by every fill operation; `invalidate` is called at regrid.
#[derive(Default)]
pub struct PlanCache {
    plans: Mutex<HashMap<PlanKey, Arc<CachedPlan>>>,
    aux: Mutex<HashMap<PlanKey, Arc<dyn Any + Send + Sync>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    build_nanos: AtomicU64,
}

impl fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PlanCache")
            .field("len", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        PlanCache::default()
    }

    /// The cached `FillBoundary` plan for these grids, building it on miss.
    pub fn fill_boundary(
        &self,
        ba: &BoxArray,
        dm: &DistributionMapping,
        domain: &ProblemDomain,
        nghost: i64,
        ncomp: usize,
    ) -> Arc<CachedPlan> {
        let key = PlanKey::fill_boundary(ba, dm, domain, nghost, ncomp);
        self.get_or_build(key, || fill_boundary_plan(ba, dm, domain, nghost, ncomp))
    }

    /// The cached `ParallelCopy` plan for these grids, building it on miss.
    #[allow(clippy::too_many_arguments)]
    pub fn parallel_copy(
        &self,
        src_ba: &BoxArray,
        src_dm: &DistributionMapping,
        dst_ba: &BoxArray,
        dst_dm: &DistributionMapping,
        domain: &ProblemDomain,
        dst_ghost: i64,
        ncomp: usize,
    ) -> Arc<CachedPlan> {
        let key = PlanKey::parallel_copy(src_ba, src_dm, dst_ba, dst_dm, domain, dst_ghost, ncomp);
        self.get_or_build(key, || {
            parallel_copy_plan(src_ba, src_dm, dst_ba, dst_dm, domain, dst_ghost, ncomp)
        })
    }

    /// Generic memoization: returns the entry for `key`, invoking `build`
    /// (timed and counted as a miss) if absent.
    pub fn get_or_build(
        &self,
        key: PlanKey,
        build: impl FnOnce() -> CopyPlan,
    ) -> Arc<CachedPlan> {
        let mut map = self.plans.lock().unwrap();
        if let Some(hit) = map.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return hit.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let t0 = Instant::now();
        let entry = Arc::new(CachedPlan::new(build()));
        self.build_nanos
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        map.insert(key, entry.clone());
        entry
    }

    /// Memoizes an arbitrary client-owned value under an [`PlanOp::Aux`]
    /// key (the AMR layer caches its two-level gather plan this way).
    ///
    /// # Panics
    /// Panics if an entry under `key` exists with a different type `T`.
    pub fn get_or_build_aux<T: Send + Sync + 'static>(
        &self,
        key: PlanKey,
        build: impl FnOnce() -> T,
    ) -> Arc<T> {
        let mut map = self.aux.lock().unwrap();
        if let Some(hit) = map.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return hit
                .clone()
                .downcast::<T>()
                .expect("aux plan-cache type mismatch for key");
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let t0 = Instant::now();
        let entry = Arc::new(build());
        self.build_nanos
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        map.insert(key, entry.clone());
        entry
    }

    /// Drops every cached entry (called at regrid). Outstanding `Arc`s stay
    /// valid; they are simply no longer served.
    pub fn invalidate(&self) {
        self.plans.lock().unwrap().clear();
        self.aux.lock().unwrap().clear();
    }

    /// Number of cached entries (plans + aux).
    pub fn len(&self) -> usize {
        self.plans.lock().unwrap().len() + self.aux.lock().unwrap().len()
    }

    /// `true` if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cache hits served so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (= builds) so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Total wall-clock seconds spent building plans on misses — the cost
    /// the cache removes from the steady-state step loop.
    pub fn build_seconds(&self) -> f64 {
        self.build_nanos.load(Ordering::Relaxed) as f64 * 1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::DistributionStrategy;
    use crocco_geometry::decompose::ChopParams;
    use crocco_geometry::IndexBox;

    fn setup() -> (BoxArray, DistributionMapping, ProblemDomain) {
        let bx = IndexBox::from_extents(32, 16, 16);
        let ba = BoxArray::decompose(bx, ChopParams::new(8, 8));
        let dm = DistributionMapping::new(&ba, 4, DistributionStrategy::MortonSfc);
        (ba, dm, ProblemDomain::new(bx, [false, false, true]))
    }

    #[test]
    fn repeat_lookup_is_a_hit_returning_the_same_plan() {
        let (ba, dm, domain) = setup();
        let cache = PlanCache::new();
        let a = cache.fill_boundary(&ba, &dm, &domain, 2, 5);
        let b = cache.fill_boundary(&ba, &dm, &domain, 2, 5);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert!(cache.build_seconds() > 0.0);
    }

    #[test]
    fn distinct_parameters_get_distinct_entries() {
        let (ba, dm, domain) = setup();
        let cache = PlanCache::new();
        let a = cache.fill_boundary(&ba, &dm, &domain, 2, 5);
        let b = cache.fill_boundary(&ba, &dm, &domain, 3, 5); // nghost differs
        let c = cache.fill_boundary(&ba, &dm, &domain, 2, 1); // ncomp differs
        assert!(!Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.misses(), 3);
    }

    #[test]
    fn new_grids_never_reuse_old_entries_even_without_invalidation() {
        let (ba, dm, domain) = setup();
        let cache = PlanCache::new();
        let a = cache.fill_boundary(&ba, &dm, &domain, 2, 5);
        // Identical boxes, fresh construction — as after a no-op regrid that
        // still rebuilt the arrays.
        let ba2 = BoxArray::new(ba.boxes().to_vec());
        let dm2 = DistributionMapping::new(&ba2, 4, DistributionStrategy::MortonSfc);
        let b = cache.fill_boundary(&ba2, &dm2, &domain, 2, 5);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(b.plan.chunks, a.plan.chunks, "plans must still agree");
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn cached_plan_matches_direct_build() {
        let (ba, dm, domain) = setup();
        let cache = PlanCache::new();
        let cached = cache.fill_boundary(&ba, &dm, &domain, 4, 5);
        let fresh = fill_boundary_plan(&ba, &dm, &domain, 4, 5);
        assert_eq!(cached.plan.chunks, fresh.chunks);
        assert_eq!(cached.stats, fresh.stats());
        assert_eq!(cached.groups, fresh.dst_groups());
    }

    #[test]
    fn invalidate_clears_everything() {
        let (ba, dm, domain) = setup();
        let cache = PlanCache::new();
        cache.fill_boundary(&ba, &dm, &domain, 2, 5);
        let key = PlanKey {
            op: PlanOp::Aux(7),
            ..PlanKey::fill_boundary(&ba, &dm, &domain, 2, 5)
        };
        cache.get_or_build_aux(key, || 42usize);
        assert_eq!(cache.len(), 2);
        cache.invalidate();
        assert!(cache.is_empty());
        // Rebuild works after invalidation.
        cache.fill_boundary(&ba, &dm, &domain, 2, 5);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.misses(), 3);
    }

    #[test]
    fn aux_entries_roundtrip_by_type() {
        let (ba, dm, domain) = setup();
        let cache = PlanCache::new();
        let key = PlanKey {
            op: PlanOp::Aux(1),
            ..PlanKey::fill_boundary(&ba, &dm, &domain, 2, 5)
        };
        let v1: Arc<Vec<u64>> = cache.get_or_build_aux(key, || vec![1, 2, 3]);
        let v2: Arc<Vec<u64>> = cache.get_or_build_aux(key, || unreachable!());
        assert!(Arc::ptr_eq(&v1, &v2));
    }
}
