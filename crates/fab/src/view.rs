//! Read and read-write per-fab views for task-graph execution.
//!
//! During a barrier-free RK stage (see [`crate::overlap`]) several tasks
//! touch *disjoint cells* of the same [`FArrayBox`] concurrently: one task
//! writes a patch's ghost shell while another reads its valid cells. A
//! `&`/`&mut FArrayBox` would assert immutability/exclusivity over the whole
//! allocation and make that undefined behaviour, so — exactly like the
//! grouped plan executor in [`crate::multifab`] — all concurrent access goes
//! through raw-pointer views:
//!
//! * [`FabView`] — the read interface kernels are generic over, implemented
//!   by `&FArrayBox` (the barrier path) and [`FabRd`] (the task-graph path);
//! * [`FabRd`] — a read-only raw view of one fab;
//! * [`FabRw`] — a read-write raw view, handed to boundary-condition fills
//!   and interpolation copies inside halo tasks.
//!
//! Safety rests on the same invariant as the plan executor: the task graph's
//! dependency edges order every pair of conflicting accesses, and within one
//! unordered set of tasks the touched cells are disjoint (ghost writes vs
//! valid reads). The unsafe constructors (`FabRd::from_raw`,
//! `FabRw::from_raw`) carry that proof obligation; everything downstream
//! is bounds-checked in debug builds through `RawFab::offset`.

// The raw-view modules are the allowlisted unsafe surface of the workspace
// (`cargo xtask lint`, DESIGN.md §4d).
#![allow(unsafe_code)]

use crate::fab::FArrayBox;
use crate::multifab::RawFab;
use crocco_geometry::{IndexBox, IntVect};
use crocco_runtime::taskcheck::record_access;
use std::marker::PhantomData;

/// Runs `f` with a read-write view of `fab` and returns its result — the
/// safe entry point for code outside the raw-view modules (rule 6 of
/// `cargo xtask lint` confines direct `FabRd`/`FabRw`/`RawFab` construction
/// to this crate's view/overlap modules).
pub fn with_rw<R>(fab: &mut FArrayBox, f: impl FnOnce(&mut FabRw<'_>) -> R) -> R {
    let mut rw = FabRw::from_mut(fab);
    f(&mut rw)
}

/// Read access to one fab's cells — the interface the solver kernels are
/// generic over, so the same kernel source serves `&FArrayBox` (barrier
/// path) and [`FabRd`] (task-graph path).
pub trait FabView {
    /// The fab's full (valid + ghost) box.
    fn bx(&self) -> IndexBox;
    /// Number of components.
    fn ncomp(&self) -> usize;
    /// Value at cell `p`, component `c`.
    fn get(&self, p: IntVect, c: usize) -> f64;
    /// Copies the contiguous x-row of `out.len()` cells starting at `p`,
    /// component `c`, into `out`.
    ///
    /// Pencil-sweeping kernels use this to load a whole stencil row in one
    /// call instead of per-cell `get`s — for the SIMD-lane backend that one
    /// slice copy replaces the per-cell index arithmetic that otherwise
    /// dominates the gather. The default falls back to `get` so wrapper
    /// views (e.g. `fabcheck` instrumentation) still observe every access;
    /// the dense views below override it with a single slice copy.
    fn read_row(&self, p: IntVect, c: usize, out: &mut [f64]) {
        let mut q = p;
        for o in out.iter_mut() {
            *o = self.get(q, c);
            q[0] += 1;
        }
    }
}

impl FabView for FArrayBox {
    #[inline]
    fn bx(&self) -> IndexBox {
        FArrayBox::bx(self)
    }

    #[inline]
    fn ncomp(&self) -> usize {
        FArrayBox::ncomp(self)
    }

    #[inline]
    fn get(&self, p: IntVect, c: usize) -> f64 {
        FArrayBox::get(self, p, c)
    }

    #[inline]
    fn read_row(&self, p: IntVect, c: usize, out: &mut [f64]) {
        out.copy_from_slice(self.row(p, c, out.len()));
    }
}

/// A read-only raw view of one [`FArrayBox`].
///
/// Unlike `&FArrayBox`, holding a `FabRd` asserts nothing about cells it
/// never reads — a concurrent task may write *other* cells of the same fab
/// (its ghost shell) while this view reads valid cells.
#[derive(Clone, Copy)]
pub struct FabRd<'a> {
    raw: RawFab,
    _life: PhantomData<&'a FArrayBox>,
}

impl<'a> FabRd<'a> {
    /// Read view of `fab`. Safe: the shared borrow rules out any concurrent
    /// writer for `'a`.
    pub fn new(fab: &'a FArrayBox) -> Self {
        FabRd {
            raw: RawFab::capture_const(fab),
            _life: PhantomData,
        }
    }

    /// Read view from a raw capture.
    ///
    /// # Safety
    /// For the chosen lifetime `'a` the underlying allocation must stay
    /// live, and no thread may write any cell this view reads without a
    /// happens-before edge (in the task graph: a dependency path) separating
    /// the write from the read.
    // SAFETY: an unsafe fn — the constructor itself only stores the capture;
    // callers uphold the liveness and ordering contract documented above.
    pub(crate) unsafe fn from_raw(raw: RawFab) -> Self {
        FabRd {
            raw,
            _life: PhantomData,
        }
    }
}

impl FabView for FabRd<'_> {
    #[inline]
    fn bx(&self) -> IndexBox {
        self.raw.bx
    }

    #[inline]
    fn ncomp(&self) -> usize {
        self.raw.ncomp()
    }

    #[inline]
    fn get(&self, p: IntVect, c: usize) -> f64 {
        record_access(self.raw.ptr as usize as u64, false, IndexBox::new(p, p));
        // SAFETY: `offset` debug-asserts `p` inside the fab box; the
        // constructor's contract guarantees the allocation is live and no
        // unordered writer touches the cells this view reads.
        unsafe { *self.raw.ptr.add(self.raw.offset(p, c)) }
    }

    #[inline]
    fn read_row(&self, p: IntVect, c: usize, out: &mut [f64]) {
        debug_assert!(
            p[0] + out.len() as i64 - 1 <= self.raw.bx.hi()[0],
            "row leaves box"
        );
        let mut row_end = p;
        row_end[0] += out.len() as i64 - 1;
        record_access(
            self.raw.ptr as usize as u64,
            false,
            IndexBox::new(p, row_end),
        );
        // SAFETY: x-rows are contiguous in fab storage; `offset` debug-asserts
        // `p` inside the fab box and the assert above keeps the row end in
        // bounds. The constructor's contract guarantees the allocation is live
        // and no unordered writer touches the cells this view reads.
        let src = unsafe {
            std::slice::from_raw_parts(self.raw.ptr.add(self.raw.offset(p, c)), out.len())
        };
        out.copy_from_slice(src);
    }
}

/// A read-write raw view of one [`FArrayBox`], used by halo tasks to fill
/// ghost cells (physical BCs, coarse-fine interpolation copies) while other
/// tasks concurrently read the same fab's valid cells.
pub struct FabRw<'a> {
    raw: RawFab,
    _life: PhantomData<&'a mut FArrayBox>,
}

impl<'a> FabRw<'a> {
    /// Read-write view of `fab`. Safe: the exclusive borrow rules out any
    /// concurrent access for `'a`.
    pub fn from_mut(fab: &'a mut FArrayBox) -> Self {
        FabRw {
            raw: RawFab::capture(fab),
            _life: PhantomData,
        }
    }

    /// Read-write view from a raw capture.
    ///
    /// # Safety
    /// For the chosen lifetime `'a` the underlying allocation must stay
    /// live; no thread may access (read or write) any cell this view
    /// *writes*, nor write any cell it *reads*, without a happens-before
    /// edge separating the accesses. In the RK-stage graph this holds
    /// because a halo task writes only its own patch's ghost cells while
    /// unordered tasks read only valid cells.
    // SAFETY: an unsafe fn — the constructor itself only stores the capture;
    // callers uphold the liveness and ordering contract documented above.
    pub(crate) unsafe fn from_raw(raw: RawFab) -> Self {
        FabRw {
            raw,
            _life: PhantomData,
        }
    }

    /// The fab's full (valid + ghost) box.
    #[inline]
    pub fn bx(&self) -> IndexBox {
        self.raw.bx
    }

    /// Number of components.
    #[inline]
    pub fn ncomp(&self) -> usize {
        self.raw.ncomp()
    }

    /// Value at cell `p`, component `c`.
    #[inline]
    pub fn get(&self, p: IntVect, c: usize) -> f64 {
        record_access(self.raw.ptr as usize as u64, false, IndexBox::new(p, p));
        // SAFETY: bounds debug-asserted by `offset`; the constructor's
        // contract orders this read against any writer of the cell.
        unsafe { *self.raw.ptr.add(self.raw.offset(p, c)) }
    }

    /// Stores `v` at cell `p`, component `c`.
    #[inline]
    pub fn set(&mut self, p: IntVect, c: usize, v: f64) {
        record_access(self.raw.ptr as usize as u64, true, IndexBox::new(p, p));
        // SAFETY: bounds debug-asserted by `offset`; the constructor's
        // contract gives this view exclusive access to the cells it writes.
        unsafe { *self.raw.ptr.add(self.raw.offset(p, c)) = v };
    }

    /// Copies every component of `src` over `region` into this view
    /// (`region` must lie inside both boxes). Used to land per-region
    /// interpolation results computed in an owned scratch fab.
    pub fn copy_region_from(&mut self, src: &FArrayBox, region: IndexBox) {
        debug_assert!(src.bx().contains_box(&region));
        debug_assert!(self.raw.bx.contains_box(&region));
        for c in 0..src.ncomp() {
            for p in region.cells() {
                self.set(p, c, src.get(p, c));
            }
        }
    }
}

impl FabView for FabRw<'_> {
    #[inline]
    fn bx(&self) -> IndexBox {
        self.raw.bx
    }

    #[inline]
    fn ncomp(&self) -> usize {
        self.raw.ncomp()
    }

    #[inline]
    fn get(&self, p: IntVect, c: usize) -> f64 {
        FabRw::get(self, p, c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fab() -> FArrayBox {
        let bx = IndexBox::from_extents(4, 3, 2);
        let mut f = FArrayBox::new(bx, 2);
        for c in 0..2 {
            for p in bx.cells() {
                f.set(p, c, (c * 100) as f64 + p[0] as f64 + 10.0 * p[1] as f64);
            }
        }
        f
    }

    #[test]
    fn read_views_agree_with_the_fab() {
        let f = fab();
        let rd = FabRd::new(&f);
        assert_eq!(FabView::bx(&rd), f.bx());
        assert_eq!(FabView::ncomp(&rd), 2);
        for c in 0..2 {
            for p in f.bx().cells() {
                assert_eq!(rd.get(p, c).to_bits(), f.get(p, c).to_bits());
            }
        }
    }

    #[test]
    fn rw_view_writes_through() {
        let mut f = fab();
        let mut rw = FabRw::from_mut(&mut f);
        let p = IntVect::new(1, 2, 0);
        rw.set(p, 1, -7.5);
        assert_eq!(rw.get(p, 1), -7.5);
        assert_eq!(f.get(p, 1), -7.5);
    }

    #[test]
    fn copy_region_lands_exactly_the_region() {
        let mut dst = fab();
        let before = dst.clone();
        let region = IndexBox::new(IntVect::new(1, 1, 0), IntVect::new(2, 2, 1));
        let mut src = FArrayBox::new(region, 2);
        src.fill(42.0);
        FabRw::from_mut(&mut dst).copy_region_from(&src, region);
        for c in 0..2 {
            for p in dst.bx().cells() {
                if region.contains(p) {
                    assert_eq!(dst.get(p, c), 42.0);
                } else {
                    assert_eq!(dst.get(p, c).to_bits(), before.get(p, c).to_bits());
                }
            }
        }
    }
}
