//! Schedule specs and static verification for the RK-stage task graphs
//! (DESIGN.md §4i).
//!
//! [`crate::overlap`] and [`crate::dist_overlap`] hand-wire one task graph
//! per RK stage; their safety arguments are prose. This module turns the
//! prose into a checkable artifact: for each skeleton it derives a
//! [`ScheduleSpec`] — the same tasks, in the same insertion order, with the
//! same dependency edges, plus a declared [`Footprint`] per task built from
//! the exact plan regions the executors copy — and
//! [`ScheduleSpec::verify`] then proves every conflicting pair ordered.
//! [`verify_dist`] replays the derivation for *all* ranks (skeletons are
//! pure metadata, identically replicated) and additionally proves
//! tag-completeness and cross-rank acyclicity via
//! [`verify_cross_rank`].
//!
//! The spec builders are parameterized over fab identities
//! ([`FabIds`]): the memoized static pass uses symbolic ids (patch index +
//! space tag), while the executors instantiate the same spec with live
//! allocation base pointers and attach its footprints to their
//! [`TaskGraph`](crocco_runtime::TaskGraph) tasks — one derivation serves
//! both, so the declared footprints cannot drift from the verified ones.
//! The executors also assert (under the `taskcheck` feature) that the
//! graph they built has exactly the spec's dependency lists.
//!
//! Footprint shapes, per patch `i` with valid box `V`, full box
//! `B = V.grow(nghost)`:
//!
//! * `halo[i]` reads `B` of `i` (BC corner mirrors read ghosts and valid
//!   cells), writes the ghost shell `B \ V` (pre-halo interpolation, chunk
//!   copies, BC fills), and reads `region - shift` of every source patch in
//!   its chunk range — valid cells, by the FillBoundary plan invariant.
//! * `interior[i]` reads `V` (the sweep region is shrunk by the ghost width,
//!   so the widest stencil stays inside valid cells) and writes `rhs[i]`.
//! * `boundary[i]` reads `B` (band stencils reach into ghosts) and writes
//!   `rhs[i]`.
//! * `update[i]` reads `rhs[i]` and writes `V` of `i` and `du[i]` — the
//!   writes whose ordering against every reader of `i` is exactly what the
//!   `readers`/`send_readers` fences exist to guarantee.
//! * `send[c]` (distributed) reads `region - shift` of its source patch;
//!   receive events touch nothing.

use crate::dist_overlap::DistSkeleton;
use crate::overlap::StageSkeleton;
use crate::plan::CopyPlan;
use crate::plan_cache::CachedPlan;
use crocco_geometry::IndexBox;
use crocco_runtime::taskcheck::{subtract, Footprint, RankSchedule, ScheduleSpec};
use crocco_runtime::{verify_cross_rank, Violation};
use std::fmt;

/// Fab identities for one spec instantiation: one id per patch for the
/// state, RHS-scratch, and `du` spaces. Ids are opaque — the verifier only
/// compares them for equality — but must be distinct across every
/// `(space, patch)` pair.
#[derive(Clone, Debug)]
pub struct FabIds {
    /// Per-patch state fab ids.
    pub state: Vec<u64>,
    /// Per-patch RHS-scratch fab ids.
    pub rhs: Vec<u64>,
    /// Per-patch `du` fab ids.
    pub du: Vec<u64>,
}

impl FabIds {
    /// Symbolic ids for the memoized static pass: patch index tagged with a
    /// per-space high bit well clear of patch counts.
    pub fn symbolic(npatches: usize) -> FabIds {
        FabIds {
            state: (0..npatches).map(|i| i as u64).collect(),
            rhs: (0..npatches).map(|i| (1 << 32) | i as u64).collect(),
            du: (0..npatches).map(|i| (2 << 32) | i as u64).collect(),
        }
    }
}

/// The footprint of one halo task: reads the patch's full box and its
/// chunk-range sources, writes the ghost shell.
#[allow(clippy::too_many_arguments)]
fn halo_footprint(
    label: String,
    plan: &CopyPlan,
    chunk_range: (usize, usize),
    local_only_rank: Option<usize>,
    i: usize,
    valid: &[IndexBox],
    nghost: i64,
    ids: &FabIds,
) -> Footprint {
    let comp = (0, plan.ncomp);
    let bx = valid[i].grow(nghost);
    let mut fp = Footprint::new(label).reads(ids.state[i], comp, bx);
    for shell in subtract(bx, valid[i]) {
        fp = fp.writes(ids.state[i], comp, shell);
    }
    let (s, e) = chunk_range;
    for c in &plan.chunks[s..e] {
        // On the distributed path only locally-copied chunks read a source
        // fab; remote chunks arrive as payloads (their ghost writes are
        // already covered by the shell above).
        if local_only_rank.is_some_and(|rank| c.src_rank != rank) {
            continue;
        }
        fp = fp.reads(ids.state[c.src_id], comp, c.region.shift(-c.shift));
    }
    fp
}

/// The interior/boundary/update triple for patch `i`, appended in executor
/// insertion order. `halo` and `send_deps` are the spec indices of the
/// patch's fences.
#[allow(clippy::too_many_arguments)]
fn sweep_update_triple(
    spec: &mut ScheduleSpec,
    i: usize,
    valid: &[IndexBox],
    nghost: i64,
    ncomp: usize,
    halo_i: usize,
    reader_halos: &[usize],
    send_deps: &[usize],
    ids: &FabIds,
) {
    let comp = (0, ncomp);
    let bx = valid[i].grow(nghost);
    let interior = spec.add(
        &[],
        Footprint::new(format!("interior[{i}]"))
            .reads(ids.state[i], comp, valid[i])
            .writes(ids.rhs[i], comp, valid[i]),
    );
    let boundary = spec.add(
        &[halo_i, interior],
        Footprint::new(format!("boundary[{i}]"))
            .reads(ids.state[i], comp, bx)
            .writes(ids.rhs[i], comp, valid[i]),
    );
    let mut deps = vec![boundary];
    deps.extend_from_slice(reader_halos);
    deps.extend_from_slice(send_deps);
    spec.add(
        &deps,
        Footprint::new(format!("update[{i}]"))
            .reads(ids.rhs[i], comp, valid[i])
            .writes(ids.state[i], comp, valid[i])
            .writes(ids.du[i], comp, valid[i]),
    );
}

/// The schedule spec of one on-node RK-stage graph
/// ([`crate::overlap::run_rk_stage_with_skeleton`]): same tasks, same
/// insertion order, same dependency edges, with footprints from the plan
/// regions. `valid[i]` is patch `i`'s valid box; `nghost` the ghost width.
pub fn stage_spec(
    plan: &CopyPlan,
    skel: &StageSkeleton,
    valid: &[IndexBox],
    nghost: i64,
    ids: &FabIds,
) -> ScheduleSpec {
    let mut spec = ScheduleSpec::new();
    let mut halo = Vec::with_capacity(valid.len());
    for (i, &range) in skel.chunk_range.iter().enumerate() {
        let fp = halo_footprint(
            format!("halo[{i}]"),
            plan,
            range,
            None,
            i,
            valid,
            nghost,
            ids,
        );
        halo.push(spec.add(&[], fp));
    }
    for i in 0..valid.len() {
        let reader_halos: Vec<usize> = skel.readers[i].iter().map(|&d| halo[d]).collect();
        sweep_update_triple(
            &mut spec,
            i,
            valid,
            nghost,
            plan.ncomp,
            halo[i],
            &reader_halos,
            &[],
            ids,
        );
    }
    spec
}

/// One rank's slice of the distributed overlapped stage
/// ([`crate::dist_overlap::run_dist_rk_stage`] with `overlap = true`):
/// send tasks, receive events (with their channel keys — the plan chunk
/// index, exactly the varying coordinate of
/// [`crocco_runtime::tags::halo`]), then halo/interior/boundary/update for
/// every owned patch, in executor insertion order.
pub fn dist_rank_schedule(
    plan: &CopyPlan,
    skel: &DistSkeleton,
    valid: &[IndexBox],
    nghost: i64,
    ids: &FabIds,
) -> RankSchedule {
    let comp = (0, plan.ncomp);
    let chunks = &plan.chunks;
    let mut rs = RankSchedule::default();
    let mut send_tasks = Vec::with_capacity(skel.sends.len());
    for &c in &skel.sends {
        let chunk = &chunks[c];
        let t = rs.spec.add(
            &[],
            Footprint::new(format!("send[{c}]")).reads(
                ids.state[chunk.src_id],
                comp,
                chunk.region.shift(-chunk.shift),
            ),
        );
        rs.sends.push((t, c as u64));
        send_tasks.push(t);
    }
    let n = valid.len();
    let mut recv_events: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &i in &skel.owned {
        for &c in &skel.recvs[i] {
            let t = rs.spec.add(&[], Footprint::new(format!("recv[{c}]")));
            rs.recvs.push((t, c as u64));
            recv_events[i].push(t);
        }
    }
    let mut halo = vec![usize::MAX; n];
    for &i in &skel.owned {
        let fp = halo_footprint(
            format!("halo[{i}]"),
            plan,
            skel.chunk_range[i],
            Some(skel.rank),
            i,
            valid,
            nghost,
            ids,
        );
        halo[i] = rs.spec.add(&recv_events[i], fp);
    }
    for &i in &skel.owned {
        let reader_halos: Vec<usize> = skel.readers[i].iter().map(|&d| halo[d]).collect();
        let send_deps: Vec<usize> = skel.send_readers[i].iter().map(|&k| send_tasks[k]).collect();
        sweep_update_triple(
            &mut rs.spec,
            i,
            valid,
            nghost,
            plan.ncomp,
            halo[i],
            &reader_halos,
            &send_deps,
            ids,
        );
    }
    rs
}

/// The outcome of one static verification pass over a real skeleton: what
/// the plan cache memoizes beside the skeleton and the drivers consult once
/// per (grids, plan) generation.
#[derive(Clone, Debug)]
pub struct VerifyReport {
    /// Total tasks across all verified schedules.
    pub tasks: usize,
    /// Conflicting region pairs checked against happens-before.
    pub pairs_checked: u64,
    /// Violations found (empty ⇔ the schedule is proven sound).
    pub violations: Vec<Violation>,
    /// Wall-clock cost of the verification, microseconds.
    pub micros: u64,
}

impl VerifyReport {
    /// `true` when no violation was found.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Panics with every violation listed if the report is not clean — the
    /// drivers' response to a broken skeleton (fail loudly at first
    /// verification, not as a bitwise divergence later).
    pub fn assert_clean(&self, what: &str) {
        assert!(
            self.is_clean(),
            "taskcheck: schedule verification failed for {what}:\n{}",
            self.violations
                .iter()
                .map(|v| format!("  - {v}"))
                .collect::<Vec<_>>()
                .join("\n"),
        );
    }
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} tasks, {} conflict pairs checked, {} violation(s), {} µs",
            self.tasks,
            self.pairs_checked,
            self.violations.len(),
            self.micros
        )
    }
}

/// Statically verifies the on-node RK-stage graph a
/// [`StageSkeleton`] will produce: every conflicting task pair ordered by a
/// happens-before path.
pub fn verify_stage(
    fb: &CachedPlan,
    skel: &StageSkeleton,
    valid: &[IndexBox],
    nghost: i64,
) -> VerifyReport {
    let t0 = std::time::Instant::now();
    let spec = stage_spec(&fb.plan, skel, valid, nghost, &FabIds::symbolic(valid.len()));
    let v = spec.verify();
    VerifyReport {
        tasks: spec.len(),
        pairs_checked: v.pairs_checked,
        violations: v.violations,
        micros: t0.elapsed().as_micros() as u64,
    }
}

/// Statically verifies the *whole* distributed stage: rebuilds every rank's
/// skeleton from the replicated metadata (`owner` map), verifies each
/// rank's graph, and proves tag-completeness plus cross-rank acyclicity of
/// the union — the lost-wakeup/deadlock check no single rank can run alone.
pub fn verify_dist(
    fb: &CachedPlan,
    owner: &[usize],
    nranks: usize,
    valid: &[IndexBox],
    nghost: i64,
) -> VerifyReport {
    let t0 = std::time::Instant::now();
    let ids = FabIds::symbolic(valid.len());
    let ranks: Vec<RankSchedule> = (0..nranks)
        .map(|r| {
            dist_rank_schedule(&fb.plan, &DistSkeleton::build(fb, owner, r), valid, nghost, &ids)
        })
        .collect();
    let mut tasks = 0;
    let mut pairs_checked = 0;
    let mut violations = Vec::new();
    for rs in &ranks {
        tasks += rs.spec.len();
        let v = rs.spec.verify();
        pairs_checked += v.pairs_checked;
        violations.extend(v.violations);
    }
    violations.extend(verify_cross_rank(&ranks));
    VerifyReport {
        tasks,
        pairs_checked,
        violations,
        micros: t0.elapsed().as_micros() as u64,
    }
}

/// Asserts the executor-built graph has exactly the spec's dependency
/// structure (labels and footprints aside) — the anti-drift check run by
/// the executors under the `taskcheck` feature: if graph construction and
/// spec derivation ever disagree, the static proof would be about the wrong
/// graph.
pub fn assert_spec_matches(graph: &ScheduleSpec, spec: &ScheduleSpec, what: &str) {
    assert_eq!(
        graph.len(),
        spec.len(),
        "taskcheck drift: {what}: graph has {} tasks, spec {}",
        graph.len(),
        spec.len()
    );
    for i in 0..graph.len() {
        assert_eq!(
            graph.deps(i),
            spec.deps(i),
            "taskcheck drift: {what}: task {i} ('{}') dependency mismatch",
            spec.label(i)
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boxarray::BoxArray;
    use crate::distribution::{DistributionMapping, DistributionStrategy};
    use crate::plan_cache::PlanCache;
    use crocco_geometry::decompose::ChopParams;
    use crocco_geometry::ProblemDomain;
    use std::sync::Arc;

    fn setup(nranks: usize) -> (Arc<BoxArray>, Arc<DistributionMapping>, ProblemDomain) {
        let domain = ProblemDomain::non_periodic(IndexBox::from_extents(16, 8, 8));
        let ba = Arc::new(BoxArray::decompose(domain.bx, ChopParams::new(4, 8)));
        let dm = Arc::new(DistributionMapping::new(
            &ba,
            nranks,
            DistributionStrategy::RoundRobin,
        ));
        (ba, dm, domain)
    }

    fn valid_boxes(ba: &BoxArray) -> Vec<IndexBox> {
        (0..ba.len()).map(|i| ba.get(i)).collect()
    }

    #[test]
    fn real_stage_skeleton_verifies_clean() {
        let (ba, dm, domain) = setup(1);
        let cache = PlanCache::new();
        let nghost = 2;
        let fb = cache.fill_boundary(&ba, &dm, &domain, nghost, 2);
        let skel = StageSkeleton::build(&fb, ba.len());
        let valid = valid_boxes(&ba);
        let report = verify_stage(&fb, &skel, &valid, nghost);
        assert_eq!(report.tasks, 4 * ba.len());
        assert!(report.pairs_checked > 0, "stage must have conflict pairs");
        report.assert_clean("test stage skeleton");
    }

    #[test]
    fn real_dist_skeletons_verify_clean_at_multiple_rank_counts() {
        for nranks in [1usize, 2, 4] {
            let (ba, dm, domain) = setup(nranks);
            let cache = PlanCache::new();
            let nghost = 2;
            let fb = cache.fill_boundary(&ba, &dm, &domain, nghost, 2);
            let valid = valid_boxes(&ba);
            let report = verify_dist(&fb, dm.owners(), nranks, &valid, nghost);
            report.assert_clean("test dist skeleton");
            assert!(report.tasks >= 4 * ba.len());
        }
    }

    #[test]
    fn deleting_a_reader_edge_is_flagged_as_the_exact_pair() {
        let (ba, dm, domain) = setup(1);
        let cache = PlanCache::new();
        let nghost = 2;
        let fb = cache.fill_boundary(&ba, &dm, &domain, nghost, 2);
        let mut skel = StageSkeleton::build(&fb, ba.len());
        // Drop one update fence: halo[d] reads patch i while update[i]
        // rewrites it, now unordered.
        let (i, d) = skel
            .readers
            .iter()
            .enumerate()
            .find_map(|(i, r)| r.iter().find(|&&d| d != i).map(|&d| (i, d)))
            .expect("setup must produce a cross-patch reader");
        skel.readers[i].retain(|&x| x != d);
        let valid = valid_boxes(&ba);
        let report = verify_stage(&fb, &skel, &valid, nghost);
        assert!(!report.is_clean(), "deleted edge must be flagged");
        let hit = report.violations.iter().any(|v| match v {
            Violation::UnorderedConflict {
                first_label,
                second_label,
                ..
            } => {
                first_label == &format!("halo[{d}]") && second_label == &format!("update[{i}]")
                    || second_label == &format!("halo[{d}]")
                        && first_label == &format!("update[{i}]")
            }
            _ => false,
        });
        assert!(
            hit,
            "expected halo[{d}]/update[{i}] in {:?}",
            report.violations
        );
    }

    #[test]
    fn dropping_a_send_makes_a_receive_unmatched() {
        let (ba, dm, domain) = setup(2);
        let cache = PlanCache::new();
        let nghost = 2;
        let fb = cache.fill_boundary(&ba, &dm, &domain, nghost, 2);
        let valid = valid_boxes(&ba);
        let ids = FabIds::symbolic(valid.len());
        let mut ranks: Vec<RankSchedule> = (0..2)
            .map(|r| {
                dist_rank_schedule(
                    &fb.plan,
                    &DistSkeleton::build(&fb, dm.owners(), r),
                    &valid,
                    nghost,
                    &ids,
                )
            })
            .collect();
        let dropped = ranks[0].sends.pop().expect("rank 0 must send something").1;
        let violations = verify_cross_rank(&ranks);
        assert!(
            violations.iter().any(|v| matches!(
                v,
                Violation::ChannelMismatch { chan, sends: 0, recvs: 1 } if *chan == dropped
            )),
            "lost send on channel {dropped} must be flagged: {violations:?}"
        );
    }
}
