//! Rank-crossing RK-stage execution over a [`crocco_runtime::LocalCluster`]
//! endpoint:
//! pack/send/receive/unpack halo traffic woven into the per-stage task graph.
//!
//! The on-node overlap module ([`crate::overlap`]) removes the per-stage
//! barrier between patches of one address space. This module removes the
//! *level fence* between ranks: each rank executes only the patches its
//! [`DistributionMapping`](crate::distribution::DistributionMapping)
//! assigns to it, halo chunks whose source and
//! destination live on different ranks travel as tag-matched messages
//! ([`crocco_runtime::tags::halo`]), and — in overlapped mode — each
//! boundary sweep becomes ready as soon as *its* remote ghost payloads land,
//! while interior sweeps of every owned patch run immediately
//! (DESIGN.md §4f; the paper's §IV-B GPU-aware-MPI overlap at rank scope).
//!
//! Two executors share one [`DistSkeleton`]:
//!
//! * **fenced** — post every receive, pack and send every outgoing chunk,
//!   then run fill → sweep → update as sequential phases, blocking on each
//!   remote payload in plan order. The distributed analog of the barrier
//!   path, and the baseline of `ablation_distoverlap`.
//! * **overlapped** — one [`TaskGraph`] per stage: send tasks and interior
//!   sweeps start immediately; each receive is an *event* task gated on its
//!   [`RecvHandle`], pumped by [`GroupEndpoint::pump`]; `halo[i]` depends
//!   only on patch `i`'s receive events.
//!
//! Both produce bitwise-identical state to the single-rank executors: every
//! cell is written by the same arithmetic in the same per-cell order, and
//! `f64 → le-bytes → f64` round-trips exactly
//! (`tests/dist_overlap_invariance.rs` proves this end-to-end, across a
//! regrid, at 1/2/4 ranks).
//!
//! # Ownership contract
//!
//! Callers keep *metadata* replicated — every rank holds identical
//! `BoxArray`s, `DistributionMapping`s, and cached plans — but data is
//! **owned**: an owned MultiFab ([`MultiFab::new_owned`]) allocates storage
//! only for the patches this rank's mapping entry assigns to it, and both
//! executors dereference exactly the owned patches (local chunks have an
//! owned source and destination; remote payloads unpack into owned ghosts),
//! so the non-owned [`crate::fab::FArrayBox::unallocated`] placeholders are
//! never touched. Cross-rank motion outside the stage graphs (FillPatch
//! coarse gathers, regrid redistribution, checkpoint assembly) goes through
//! [`crate::owned`]. The legacy replicated mode — every rank holding full
//! data and [`allgather_fabs`] restoring replication after each stage —
//! survives as the *test-only oracle* the owned path is proven
//! bitwise-identical against (`tests/owned_dist_invariance.rs`).
//!
//! # Safety argument
//!
//! The overlapped graph extends the [`crate::overlap`] argument with three
//! new access kinds, all ordered by dependency edges:
//!
//! * `send[k]` *reads* valid cells of its source patch; `update[i]`
//!   (the only writer of valid cells of `i`) depends on every send reading
//!   `i` (`send_readers`), so the read completes first;
//! * receive events touch no fab at all — the payload parks in the
//!   [`RecvHandle`] until `halo[i]` (their dependent) unpacks it into ghost
//!   cells of `i`;
//! * non-owned patches are never dereferenced at all in owned mode (every
//!   chunk with a non-owned source is received off the wire instead); in
//!   the replicated oracle mode they are read-only for the whole stage
//!   (halo copies and packs read their valid cells; nothing writes them
//!   until the post-stage [`allgather_fabs`], which runs after the graph
//!   joins).

// Allowlisted unsafe surface of the workspace (`cargo xtask lint`): raw
// views let graph tasks touch disjoint fab regions concurrently.
#![allow(unsafe_code)]

use crate::fab::FArrayBox;
use crate::multifab::{copy_chunk_raw, MultiFab, RawFab};
use crate::overlap::{StageFabs, SweepPhase};
use crate::plan::{CopyChunk, CopyPlan};
use crate::plan_cache::CachedPlan;
use crate::taskcheck::{dist_rank_schedule, FabIds};
use crate::view::{FabRd, FabRw};
use bytes::Bytes;
use crocco_runtime::cluster::CommError;
use crocco_runtime::taskcheck::record_access;
use crocco_runtime::{tags, GroupEndpoint, RecvHandle, Schedule, StageError, TaskGraph};

/// The rank-local, stage-invariant structure of a level's distributed RK
/// stage: which patches this rank owns, which plan chunks it copies locally,
/// receives, or sends, and the dependency edges among them. Derived once per
/// (plan, rank) and memoized in the plan cache (`PlanOp::Aux`), so per-stage
/// construction re-binds only RK coefficients and message tags.
#[derive(Clone, Debug, Default)]
pub struct DistSkeleton {
    /// The rank this skeleton was built for.
    pub rank: usize,
    /// Patch indices owned by `rank`, ascending.
    pub owned: Vec<usize>,
    /// Owner rank of every patch (copy of the distribution's owner map).
    pub owner: Vec<usize>,
    /// Per destination patch: the contiguous `[s, e)` chunk range of the
    /// plan that writes its ghost shell (`(0, 0)` when none).
    pub chunk_range: Vec<(usize, usize)>,
    /// Plan chunk indices this rank must pack and send (`src_rank == rank`,
    /// `dst_rank != rank`), in plan order.
    pub sends: Vec<usize>,
    /// Per owned destination patch: plan chunk indices arriving from remote
    /// ranks (`dst_id == patch`, `src_rank != rank`). Empty for non-owned
    /// patches.
    pub recvs: Vec<Vec<usize>>,
    /// Per source patch `i`: owned destination patches whose halo task
    /// copies out of `i` locally — update fences, as in
    /// [`crate::overlap::StageSkeleton`].
    pub readers: Vec<Vec<usize>>,
    /// Per source patch `i`: positions in [`Self::sends`] that pack out of
    /// `i` — the rank-crossing update fences.
    pub send_readers: Vec<Vec<usize>>,
}

impl DistSkeleton {
    /// Derives the rank-`rank` skeleton of `fb` for a level whose patches
    /// are assigned by `owner` (one rank per patch).
    pub fn build(fb: &CachedPlan, owner: &[usize], rank: usize) -> Self {
        let npatches = owner.len();
        let owned: Vec<usize> = (0..npatches).filter(|&i| owner[i] == rank).collect();
        let mut chunk_range = vec![(0usize, 0usize); npatches];
        for &(s, e) in &fb.groups {
            if s < e {
                chunk_range[fb.plan.chunks[s].dst_id] = (s, e);
            }
        }
        let mut sends = Vec::new();
        let mut recvs: Vec<Vec<usize>> = vec![Vec::new(); npatches];
        let mut readers: Vec<Vec<usize>> = vec![Vec::new(); npatches];
        let mut send_readers: Vec<Vec<usize>> = vec![Vec::new(); npatches];
        for (c, chunk) in fb.plan.chunks.iter().enumerate() {
            if chunk.dst_rank == rank && chunk.src_rank != rank {
                recvs[chunk.dst_id].push(c);
            }
            if chunk.src_rank == rank {
                if chunk.dst_rank != rank {
                    send_readers[chunk.src_id].push(sends.len());
                    sends.push(c);
                } else {
                    readers[chunk.src_id].push(chunk.dst_id);
                }
            }
        }
        for r in &mut readers {
            r.sort_unstable();
            r.dedup();
        }
        DistSkeleton {
            rank,
            owned,
            owner: owner.to_vec(),
            chunk_range,
            sends,
            recvs,
            readers,
            send_readers,
        }
    }

    /// Number of remote chunks this rank receives per stage.
    pub fn nrecv_chunks(&self) -> usize {
        self.recvs.iter().map(Vec::len).sum()
    }
}

/// Per-stage identity of one distributed execution: the endpoint to move
/// bytes through, the tag coordinates every rank derives identically, and
/// the schedule flavor.
///
/// The endpoint is a [`GroupEndpoint`]: all ranks here are *logical* ranks
/// within the current communicator group, so after a chaos recovery shrinks
/// the group the same stepping code runs unchanged over the survivors.
pub struct DistStage<'a> {
    /// This rank's group-scoped cluster endpoint.
    pub ep: &'a GroupEndpoint<'a>,
    /// AMR level (a tag coordinate).
    pub level: usize,
    /// Monotone per-stage counter agreed across ranks (e.g.
    /// `step * nstages + stage`); a tag coordinate separating stages.
    pub epoch: u64,
    /// `true` → task-graph overlap; `false` → sequential fenced phases.
    pub overlap: bool,
    /// Schedule for the overlapped graph — thread pool or seeded
    /// adversarial linearization (the fenced path is always serial).
    pub sched: Schedule,
}

/// Packs one plan chunk through a raw view: component-major, then
/// `region.cells()` order, each source cell `p - shift` as little-endian
/// `f64` bytes. The inverse of [`unpack_chunk_raw`]; both round-trip
/// bitwise.
///
/// # Safety
/// `chunk.region - chunk.shift` must lie in `src`'s box, and no concurrent
/// task may *write* the read cells (valid cells of the source patch, whose
/// only writer — `update` — is fenced behind this read).
// SAFETY: an unsafe fn — every dereference below is bounds-checked in debug
// builds; callers uphold the aliasing contract documented above.
unsafe fn pack_chunk_raw(src: &RawFab, chunk: &CopyChunk, ncomp: usize) -> Bytes {
    record_access(
        src.ptr as usize as u64,
        false,
        chunk.region.shift(-chunk.shift),
    );
    let mut out = Vec::with_capacity((chunk.region.num_points() as usize) * ncomp * 8);
    for c in 0..ncomp {
        for p in chunk.region.cells() {
            let off = src.offset(p - chunk.shift, c);
            debug_assert!(off < src.len, "pack read overruns allocation");
            out.extend_from_slice(&(*src.ptr.add(off)).to_le_bytes());
        }
    }
    Bytes::from(out)
}

/// Unpacks a [`pack_chunk`] payload into the destination ghost region,
/// through a raw view.
///
/// # Safety
/// `chunk.region` must lie in `dst`'s box, the payload must carry exactly
/// `region.num_points() * ncomp` doubles, and no concurrent task may touch
/// the written cells (ghost cells of the destination patch, written only by
/// its own halo task).
// SAFETY: an unsafe fn — every dereference below is bounds-checked in debug
// builds; callers uphold the aliasing contract documented above.
unsafe fn unpack_chunk_raw(dst: &RawFab, chunk: &CopyChunk, ncomp: usize, payload: &[u8]) {
    debug_assert_eq!(
        payload.len() as u64,
        chunk.bytes(ncomp),
        "halo payload size mismatch for chunk into patch {}",
        chunk.dst_id
    );
    record_access(dst.ptr as usize as u64, true, chunk.region);
    let mut words = payload.chunks_exact(8);
    for c in 0..ncomp {
        for p in chunk.region.cells() {
            let w = words.next().expect("payload shorter than chunk");
            let off = dst.offset(p, c);
            debug_assert!(off < dst.len, "unpack write overruns allocation");
            *dst.ptr.add(off) = f64::from_le_bytes(w.try_into().unwrap());
        }
    }
}

/// Serializes a fab's full (valid + ghost) box: the raw `f64` slice as
/// little-endian bytes. Inverse of [`unpack_fab`].
fn pack_fab(fab: &FArrayBox) -> Bytes {
    let data = fab.data();
    let mut out = Vec::with_capacity(data.len() * 8);
    for v in data {
        out.extend_from_slice(&v.to_le_bytes());
    }
    Bytes::from(out)
}

/// Overwrites a fab's full box from a [`pack_fab`] payload.
fn unpack_fab(fab: &mut FArrayBox, payload: &[u8]) {
    let data = fab.data_mut();
    assert_eq!(
        payload.len(),
        data.len() * 8,
        "gathered fab payload size mismatch"
    );
    for (v, w) in data.iter_mut().zip(payload.chunks_exact(8)) {
        *v = f64::from_le_bytes(w.try_into().unwrap());
    }
}

/// Restores full replication of `mf` after a stage: each fab's owner sends
/// its complete (valid + ghost) box to every other rank of the group;
/// non-owners overwrite their stale copy. Bitwise-exact (`f64` ↔ le-bytes),
/// so after this call all group members hold identical `MultiFab`s again. A
/// no-op on a single-rank group. Ranks are *logical* group ranks; a
/// detected fault (dead member, starved receive) aborts the gather.
///
/// **Test-only oracle.** Since the owned-data conversion, the production
/// step loop never calls this — steady-state stepping allocates O(owned
/// cells) per rank and moves only plan chunks ([`crate::owned`]). The
/// replicated mode (and this gather) is retained solely as the reference
/// the owned path is proven bitwise-identical against
/// (`tests/owned_dist_invariance.rs`); it requires fully-allocated
/// MultiFabs and panics on owned ones.
pub fn allgather_fabs(
    mf: &mut MultiFab,
    ep: &GroupEndpoint<'_>,
    level: usize,
    epoch: u64,
) -> Result<(), CommError> {
    let nranks = ep.nranks();
    if nranks == 1 {
        return Ok(());
    }
    let rank = ep.rank();
    let owners: Vec<usize> = mf.distribution().owners().to_vec();
    // All sends first: with every rank following the same discipline, the
    // blocking receive loop below always has matching traffic in flight.
    for (i, &owner) in owners.iter().enumerate() {
        if owner == rank {
            let payload = pack_fab(mf.fab(i));
            for dst in (0..nranks).filter(|&d| d != rank) {
                ep.send(dst, tags::gather(epoch, level, i), payload.clone());
            }
        }
    }
    for (i, &owner) in owners.iter().enumerate() {
        if owner != rank {
            let payload = ep.recv_matched(owner, tags::gather(epoch, level, i))?;
            unpack_fab(mf.fab_mut(i), &payload);
        }
    }
    Ok(())
}

/// Executes one distributed RK stage for this rank: the rank-crossing
/// counterpart of [`crate::overlap::run_rk_stage_with_skeleton`], fenced or
/// overlapped per `st.overlap`.
///
/// The four physics closures have the same contracts as on the on-node
/// path, and are invoked only for patches `skel` assigns to this rank.
/// `fabs` must be fully replicated on entry (see the module docs); on exit
/// only owned patches' valid cells and `du` are current — run
/// [`allgather_fabs`] before the next stage.
///
/// A detected fault — dead group member, starved receive, or a panicking
/// kernel task — returns a typed [`StageError`] instead of hanging peers;
/// partially-written fabs are then meaningless and the caller must roll
/// back to a checkpoint (DESIGN.md §4g).
///
/// `extra_halo` carries per-patch read-only `(fab id, region)` declarations
/// for the halo tasks, exactly as on
/// [`crate::overlap::run_rk_stage_with_skeleton`]: the subcycled two-level
/// fill passes the *locally read* coarse old-state gather regions (remote
/// chunks arrive as pre-exchanged payloads and touch no fab). Footprints
/// only exist on the overlapped executor; the fenced path runs no graph and
/// ignores the declarations.
#[allow(clippy::too_many_arguments)]
pub fn run_dist_rk_stage(
    fabs: StageFabs<'_>,
    fb: &CachedPlan,
    skel: &DistSkeleton,
    st: &DistStage<'_>,
    extra_halo: &[Vec<(u64, crocco_geometry::IndexBox)>],
    pre_halo: &(dyn Fn(usize, &mut FabRw<'_>) + Sync),
    bc_fill: &(dyn Fn(usize, &mut FabRw<'_>) + Sync),
    sweep: &(dyn Fn(usize, FabRd<'_>, SweepPhase, &mut FArrayBox) + Sync),
    update: &(dyn Fn(usize, &mut FArrayBox, &mut FArrayBox, &FArrayBox) + Sync),
) -> Result<(), StageError> {
    let n = fabs.state.nfabs();
    assert_eq!(fabs.du.nfabs(), n, "state/du patch-count mismatch");
    assert_eq!(fabs.rhs.len(), n, "state/rhs patch-count mismatch");
    assert_eq!(skel.chunk_range.len(), n, "skeleton/patch-count mismatch");
    assert_eq!(skel.rank, st.ep.rank(), "skeleton built for another rank");
    assert!(
        extra_halo.is_empty() || extra_halo.len() == n,
        "extra halo reads must cover every patch or none"
    );
    fabs.state.check_plan_gated(&fb.plan, true);
    if st.overlap {
        run_overlapped(
            fabs, &fb.plan, skel, st, extra_halo, pre_halo, bc_fill, sweep, update,
        )
    } else {
        run_fenced(fabs, &fb.plan, skel, st, pre_halo, bc_fill, sweep, update)
    }
}

/// The fenced executor: post receives, send everything, then run the four
/// phases as strict sequential loops over owned patches, blocking on each
/// remote payload as the fill loop reaches its chunk.
#[allow(clippy::too_many_arguments)]
fn run_fenced(
    fabs: StageFabs<'_>,
    plan: &CopyPlan,
    skel: &DistSkeleton,
    st: &DistStage<'_>,
    pre_halo: &(dyn Fn(usize, &mut FabRw<'_>) + Sync),
    bc_fill: &(dyn Fn(usize, &mut FabRw<'_>) + Sync),
    sweep: &(dyn Fn(usize, FabRd<'_>, SweepPhase, &mut FArrayBox) + Sync),
    update: &(dyn Fn(usize, &mut FArrayBox, &mut FArrayBox, &FArrayBox) + Sync),
) -> Result<(), StageError> {
    let ncomp = plan.ncomp;
    let rank = skel.rank;
    let n = fabs.state.nfabs();

    // One raw view per patch, every later access derived from the slice
    // base pointer (same provenance discipline as the overlapped executor).
    // The whole function is sequential, so the views never race; they exist
    // so local chunk copies may read one patch while writing another.
    let state_base = fabs.state.fabs_mut().as_mut_ptr();
    let state_raw: Vec<RawFab> = (0..n)
        // SAFETY: `i < n` indexes the live slice; the `&mut` is temporary.
        .map(|i| unsafe { RawFab::capture(&mut *state_base.add(i)) })
        .collect();

    // Post every receive up front, then pack and send every outgoing chunk
    // — the mirror discipline of the remote ranks, so the blocking waits in
    // the fill loop always have matching traffic in flight.
    let mut handles: Vec<Option<RecvHandle>> = vec![None; plan.chunks.len()];
    for &i in &skel.owned {
        for &c in &skel.recvs[i] {
            let chunk = &plan.chunks[c];
            handles[c] = Some(st.ep.irecv(chunk.src_rank, tags::halo(st.epoch, st.level, c)));
        }
    }
    for &c in &skel.sends {
        let chunk = &plan.chunks[c];
        // SAFETY: sequential read of the source patch's valid cells.
        let payload = unsafe { pack_chunk_raw(&state_raw[chunk.src_id], chunk, ncomp) };
        st.ep
            .send(chunk.dst_rank, tags::halo(st.epoch, st.level, c), payload);
    }

    // Fill phase, in plan order within each owned patch's chunk range:
    // local chunks copy directly, remote chunks block on their handle.
    for &i in &skel.owned {
        // SAFETY: sequential phase — the view is the only live access path.
        let mut rw = unsafe { FabRw::from_raw(state_raw[i]) };
        pre_halo(i, &mut rw);
        let (s, e) = skel.chunk_range[i];
        for (c, chunk) in plan.chunks.iter().enumerate().take(e).skip(s) {
            if chunk.src_rank == rank {
                // SAFETY: reads valid cells of the source patch, writes
                // ghost cells of patch `i`; no concurrency in this phase.
                unsafe {
                    copy_chunk_raw(
                        &state_raw[chunk.dst_id],
                        &state_raw[chunk.src_id],
                        chunk.region,
                        chunk.shift,
                        ncomp,
                    )
                };
            } else {
                let payload = st.ep.wait(handles[c].as_ref().expect("receive was posted"))?;
                // SAFETY: writes ghost cells of patch `i` only; sequential.
                unsafe { unpack_chunk_raw(&state_raw[i], chunk, ncomp, &payload) };
            }
        }
        bc_fill(i, &mut rw);
    }

    // Sweep and update phases — plain sequential loops over owned patches.
    for &i in &skel.owned {
        // SAFETY: read-only view; nothing mutates the patch in this phase.
        let u = unsafe { FabRd::from_raw(state_raw[i]) };
        let rhs_i = &mut fabs.rhs[i];
        sweep(i, u, SweepPhase::Interior, rhs_i);
        // SAFETY: as above.
        let u = unsafe { FabRd::from_raw(state_raw[i]) };
        sweep(i, u, SweepPhase::BoundaryBand, rhs_i);
    }
    let du_base = fabs.du.fabs_mut().as_mut_ptr();
    for &i in &skel.owned {
        // SAFETY: sequential; these are the only live references, each
        // derived fresh from its slice base pointer.
        let st_fab = unsafe { &mut *state_base.add(i) };
        // SAFETY: as above.
        let du = unsafe { &mut *du_base.add(i) };
        update(i, du, st_fab, &fabs.rhs[i]);
    }
    Ok(())
}

/// List of raw fab views shareable across worker threads.
struct RawList<'a>(&'a [RawFab]);
// SAFETY: the raw pointers inside are dereferenced only inside graph tasks
// whose conflicting accesses are ordered by dependency edges (module-level
// safety argument); sending the list to workers cannot itself race.
unsafe impl Send for RawList<'_> {}
// SAFETY: shared references expose only `Copy` geometry and raw pointers;
// all dereferences are governed by the task-graph ordering above.
unsafe impl Sync for RawList<'_> {}

impl RawList<'_> {
    #[inline]
    fn get(&self, i: usize) -> &RawFab {
        &self.0[i]
    }
}

/// Base pointer of a fab slice, shareable across worker threads.
#[derive(Clone, Copy)]
struct BasePtr(*mut FArrayBox);
// SAFETY: dereferenced only by `update` tasks, each the unique last task
// touching its element (module-level argument).
unsafe impl Send for BasePtr {}
// SAFETY: as for `Send` — each element is touched by exactly one ordered
// task chain.
unsafe impl Sync for BasePtr {}

impl BasePtr {
    #[inline]
    fn get(self) -> *mut FArrayBox {
        self.0
    }
}

/// The overlapped executor: one task graph per stage, receives as event
/// tasks pumped by [`GroupEndpoint::pump`].
#[allow(clippy::too_many_arguments)]
fn run_overlapped(
    fabs: StageFabs<'_>,
    plan: &CopyPlan,
    skel: &DistSkeleton,
    st: &DistStage<'_>,
    extra_halo: &[Vec<(u64, crocco_geometry::IndexBox)>],
    pre_halo: &(dyn Fn(usize, &mut FabRw<'_>) + Sync),
    bc_fill: &(dyn Fn(usize, &mut FabRw<'_>) + Sync),
    sweep: &(dyn Fn(usize, FabRd<'_>, SweepPhase, &mut FArrayBox) + Sync),
    update: &(dyn Fn(usize, &mut FArrayBox, &mut FArrayBox, &FArrayBox) + Sync),
) -> Result<(), StageError> {
    let n = fabs.state.nfabs();
    let ncomp = plan.ncomp;
    let rank = skel.rank;

    // Raw captures, as in `run_rk_stage_with_skeleton`: derive every later
    // reference from the slice base pointers so no per-capture borrow is
    // revived. `fabs_mut()` bumps the fabcheck data epoch exactly as the
    // fenced path does.
    let state_base = BasePtr(fabs.state.fabs_mut().as_mut_ptr());
    let state_raw: Vec<RawFab> = (0..n)
        // SAFETY: `i < n` indexes the live slice; the `&mut` is temporary
        // and expires before any task runs.
        .map(|i| unsafe { RawFab::capture(&mut *state_base.get().add(i)) })
        .collect();
    let state_list = &RawList(&state_raw);
    let du_base = BasePtr(fabs.du.fabs_mut().as_mut_ptr());
    let rhs_base = BasePtr(fabs.rhs.as_mut_ptr());

    let chunks = &plan.chunks;
    let mut graph = TaskGraph::new();

    // Declared footprints: the same per-rank spec the static verifier checks
    // (`taskcheck::verify_dist`), instantiated with live data addresses so
    // the dynamic detector (feature `taskcheck`) can match executed accesses
    // against the declarations. Pulling each footprint at `graph.len()`
    // keeps the graph and the spec aligned by construction.
    let valid: Vec<crocco_geometry::IndexBox> =
        (0..n).map(|i| fabs.state.valid_box(i)).collect();
    let ids = FabIds {
        state: state_raw.iter().map(|r| r.ptr as usize as u64).collect(),
        rhs: (0..n)
            .map(|i| rhs_base.get().wrapping_add(i) as usize as u64)
            .collect(),
        du: (0..n)
            .map(|i| du_base.get().wrapping_add(i) as usize as u64)
            .collect(),
    };
    let rs = dist_rank_schedule(plan, skel, &valid, fabs.state.nghost(), &ids);

    // Post all receives before building the graph: a handle per remote
    // chunk, polled by its event task and drained by its halo task.
    let mut handles: Vec<Option<RecvHandle>> = vec![None; chunks.len()];
    for &i in &skel.owned {
        for &c in &skel.recvs[i] {
            handles[c] = Some(
                st.ep
                    .irecv(chunks[c].src_rank, tags::halo(st.epoch, st.level, c)),
            );
        }
    }

    // Send tasks first — the serial (threads ≤ 1) schedule runs tasks in
    // insertion order, so every rank's outgoing traffic is on the wire
    // before any rank spins on a receive event. Remote reads of this rank's
    // patches happen here, so sends are also update fences (`send_readers`).
    let mut send_tasks = Vec::with_capacity(skel.sends.len());
    for &c in &skel.sends {
        let ep = st.ep;
        let fp = rs.spec.footprint(graph.len()).clone();
        send_tasks.push(graph.add_task_with(&[], fp, move || {
            let chunk = &chunks[c];
            // SAFETY: reads valid cells of the (owned) source patch; its
            // only writer, `update[src_id]`, depends on this task.
            let payload = unsafe { pack_chunk_raw(state_list.get(chunk.src_id), chunk, ncomp) };
            ep.send(chunk.dst_rank, tags::halo(st.epoch, st.level, c), payload);
        }));
    }

    // Receive events: ready when the payload has landed (the coordinator
    // pumps `ep.progress()` between polls). They touch no fab.
    let mut recv_events: Vec<Vec<crocco_runtime::TaskHandle>> = vec![Vec::new(); n];
    for &i in &skel.owned {
        for &c in &skel.recvs[i] {
            let h = handles[c].clone().expect("receive was posted");
            recv_events[i].push(graph.add_event(move || h.is_ready()));
        }
    }

    // Per owned patch: halo (gated on its receive events), interior,
    // boundary, update — the same shape as the on-node graph.
    let mut halo = vec![None; n];
    for &i in &skel.owned {
        let (s, e) = skel.chunk_range[i];
        // Handles are `Arc`-backed: each patch's halo task gets its own
        // clones of the handles for its chunk range, all observing the
        // same completion slot.
        let patch_handles: Vec<Option<RecvHandle>> = handles[s..e].to_vec();
        let mut fp = rs.spec.footprint(graph.len()).clone();
        let extras = extra_halo.get(i).cloned().unwrap_or_default();
        for &(id, bx) in &extras {
            fp = fp.reads(id, (0, ncomp), bx);
        }
        let h_i = graph.add_task_with(&recv_events[i], fp, move || {
            // The time-interpolated fill inside `pre_halo` reads its extra
            // fabs below the instrumented views — record the declared reads
            // explicitly so the dynamic detector sees them.
            for &(id, bx) in &extras {
                record_access(id, false, bx);
            }
            // SAFETY: writes only ghost cells of patch `i` (plan invariant
            // + pre_halo/bc_fill contracts); unordered tasks read only
            // valid cells, and all later access depends on this task.
            let mut rw = unsafe { FabRw::from_raw(*state_list.get(i)) };
            pre_halo(i, &mut rw);
            for (c, chunk) in chunks.iter().enumerate().take(e).skip(s) {
                if chunk.src_rank == rank {
                    // SAFETY: reads valid cells of the source patch, writes
                    // ghost cells of patch `i` — disjoint from every
                    // unordered access (module-level argument).
                    unsafe {
                        copy_chunk_raw(
                            state_list.get(chunk.dst_id),
                            state_list.get(chunk.src_id),
                            chunk.region,
                            chunk.shift,
                            ncomp,
                        )
                    };
                } else if chunk.dst_rank == rank {
                    let payload = patch_handles[c - s]
                        .as_ref()
                        .and_then(|h| h.payload())
                        .expect("receive event fired before its halo task");
                    // SAFETY: writes ghost cells of patch `i` only, ordered
                    // after the event and before all readers.
                    unsafe { unpack_chunk_raw(state_list.get(i), chunk, ncomp, &payload) };
                }
                // Chunks into `i` from other ranks to other ranks cannot
                // exist (dst_id == i ⇒ dst_rank == owner(i) == rank).
            }
            bc_fill(i, &mut rw);
        });
        halo[i] = Some(h_i);
    }

    for &i in &skel.owned {
        let halo_i = halo[i].expect("owned patch has a halo task");
        let fp = rs.spec.footprint(graph.len()).clone();
        let interior = graph.add_task_with(&[], fp, move || {
            // SAFETY: read-only view; unordered tasks write only ghost
            // cells of `i` while the interior sweep reads only valid cells.
            let u = unsafe { FabRd::from_raw(*state_list.get(i)) };
            // SAFETY: `rhs[i]` is touched only by the chain
            // interior → boundary → update, ordered by dependency edges.
            let rhs_i = unsafe { &mut *rhs_base.get().add(i) };
            sweep(i, u, SweepPhase::Interior, rhs_i);
        });
        let fp = rs.spec.footprint(graph.len()).clone();
        let boundary = graph.add_task_with(&[halo_i, interior], fp, move || {
            // SAFETY: as for the interior task; ghost reads are ordered
            // after `halo[i]` by the dependency edge.
            let u = unsafe { FabRd::from_raw(*state_list.get(i)) };
            // SAFETY: see the interior task.
            let rhs_i = unsafe { &mut *rhs_base.get().add(i) };
            sweep(i, u, SweepPhase::BoundaryBand, rhs_i);
        });
        let mut deps = vec![boundary];
        deps.extend(
            skel.readers[i]
                .iter()
                .map(|&d| halo[d].expect("local reader is owned")),
        );
        deps.extend(skel.send_readers[i].iter().map(|&k| send_tasks[k]));
        let fp = rs.spec.footprint(graph.len()).clone();
        let sid = ids.state[i];
        let vb = valid[i];
        graph.add_task_with(&deps, fp, move || {
            // SAFETY: every reader of patch `i`'s state — its own sweeps,
            // each local halo copy out of `i`, and each send packing out of
            // `i` — is a dependency, so this is the unique last task
            // touching these three fabs and may hold real references.
            let st_fab = unsafe { &mut *state_base.get().add(i) };
            // SAFETY: `du[i]` is touched by this task alone.
            let du = unsafe { &mut *du_base.get().add(i) };
            // SAFETY: the writers of `rhs[i]` are dependencies (see above).
            let rhs_i = unsafe { &*rhs_base.get().add(i) };
            // The update writes through `&mut FArrayBox`, below the
            // instrumented views — record the state write explicitly so the
            // dynamic detector sees it.
            record_access(sid, true, vb);
            update(i, du, st_fab, rhs_i);
        });
    }

    // If graph construction and spec derivation ever disagree, the static
    // proof would be about the wrong graph — fail here, not silently.
    #[cfg(feature = "taskcheck")]
    crate::taskcheck::assert_spec_matches(&graph.schedule_spec(), &rs.spec, "distributed RK stage");

    let ep = st.ep;
    graph.try_run_schedule_with_progress(st.sched, &mut || {
        ep.pump().map(|_| ()).map_err(StageError::Comm)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boxarray::BoxArray;
    use crate::distribution::{DistributionMapping, DistributionStrategy};
    use crate::overlap::band_slabs;
    use crate::plan_cache::PlanCache;
    use crate::view::FabView;
    use crocco_geometry::decompose::ChopParams;
    use crocco_geometry::{IndexBox, IntVect, ProblemDomain};
    use crocco_runtime::LocalCluster;
    use std::sync::Arc;

    /// A 16×8×8 domain chopped into 8³ patches, distributed round-robin.
    fn setup(nranks: usize) -> (Arc<BoxArray>, Arc<DistributionMapping>, ProblemDomain) {
        let domain = ProblemDomain::non_periodic(IndexBox::from_extents(16, 8, 8));
        let ba = Arc::new(BoxArray::decompose(domain.bx, ChopParams::new(4, 8)));
        let dm = Arc::new(DistributionMapping::new(
            &ba,
            nranks,
            DistributionStrategy::RoundRobin,
        ));
        (ba, dm, domain)
    }

    fn fill_linear(mf: &mut MultiFab) {
        let ncomp = mf.ncomp();
        for i in 0..mf.nfabs() {
            let vb = mf.valid_box(i);
            let fab = mf.fab_mut(i);
            for c in 0..ncomp {
                for p in vb.cells() {
                    fab.set(
                        p,
                        c,
                        (c as f64) * 1e6 + (p[0] * 10_000 + p[1] * 100 + p[2]) as f64,
                    );
                }
            }
        }
    }

    #[test]
    fn chunk_pack_roundtrips_bitwise() {
        let (ba, dm, domain) = setup(1);
        let mut mf = MultiFab::new(ba, dm, 2, 2);
        fill_linear(&mut mf);
        let plan = mf.fill_boundary(&domain);
        let chunk = plan.chunks.iter().find(|c| !c.region.is_empty()).unwrap();
        let src_raw = RawFab::capture_const(mf.fab(chunk.src_id));
        // SAFETY: exclusive access in a single-threaded test; the region
        // lies in the fab boxes by plan construction.
        let payload = unsafe { pack_chunk_raw(&src_raw, chunk, 2) };
        assert_eq!(payload.len() as u64, chunk.bytes(2));
        // Unpacking into a scratch destination must match a direct copy.
        let mut direct = mf.fab(chunk.dst_id).clone();
        for c in 0..2 {
            for p in chunk.region.cells() {
                direct.set(p, c, mf.fab(chunk.src_id).get(p - chunk.shift, c));
            }
        }
        let mut via_bytes = mf.fab(chunk.dst_id).clone();
        let raw = RawFab::capture(&mut via_bytes);
        // SAFETY: as above.
        unsafe { unpack_chunk_raw(&raw, chunk, 2, &payload) };
        assert_eq!(via_bytes.data(), direct.data());
    }

    #[test]
    fn skeleton_partitions_every_remote_chunk_exactly_once() {
        let (ba, dm, domain) = setup(3);
        let cache = PlanCache::new();
        let fb = cache.fill_boundary(&ba, &dm, &domain, 2, 1);
        let mut recv_total = 0;
        let mut send_total = 0;
        for rank in 0..3 {
            let skel = DistSkeleton::build(&fb, dm.owners(), rank);
            assert_eq!(skel.rank, rank);
            recv_total += skel.nrecv_chunks();
            send_total += skel.sends.len();
            for &i in &skel.owned {
                assert_eq!(dm.owner(i), rank);
            }
            for (i, rs) in skel.recvs.iter().enumerate() {
                if !rs.is_empty() {
                    assert_eq!(dm.owner(i), rank, "receive targets a non-owned patch");
                }
            }
            // Send fences point back at their source patches.
            for (i, srs) in skel.send_readers.iter().enumerate() {
                for &k in srs {
                    assert_eq!(fb.plan.chunks[skel.sends[k]].src_id, i);
                }
            }
        }
        let remote = fb.plan.chunks.iter().filter(|c| !c.is_local()).count();
        assert!(remote > 0, "setup must produce rank-crossing chunks");
        assert_eq!(recv_total, remote, "each remote chunk received once");
        assert_eq!(send_total, remote, "each remote chunk sent once");
    }

    /// Fenced and overlapped distributed stages both reproduce a
    /// single-address-space reference stage bitwise on a real 2-rank
    /// cluster. The sweep is a cross-patch stencil, so wrong or missing
    /// halo traffic corrupts the comparison.
    #[test]
    fn distributed_stage_matches_local_execution_bitwise() {
        let ncomp = 2usize;
        let nghost = 2i64;
        let (ba, dm, domain) = setup(2);

        // Reference: fill ghosts, then state += stencil(state) over valid.
        let mut reference = MultiFab::new(ba.clone(), dm.clone(), ncomp, nghost);
        fill_linear(&mut reference);
        let plan = reference.fill_boundary(&domain);
        reference.execute_plan(&plan, 1);
        let snapshot: Vec<FArrayBox> = (0..reference.nfabs())
            .map(|i| reference.fab(i).clone())
            .collect();
        for (i, u) in snapshot.iter().enumerate() {
            let vb = reference.valid_box(i);
            let fab = reference.fab_mut(i);
            for c in 0..ncomp {
                for p in vb.cells() {
                    let lap = u.get(p + IntVect::new(1, 0, 0), c)
                        + u.get(p - IntVect::new(1, 0, 0), c)
                        - 2.0 * u.get(p, c);
                    fab.set(p, c, u.get(p, c) + 0.125 * lap);
                }
            }
        }

        for overlap in [false, true] {
            let ba = ba.clone();
            let dm = dm.clone();
            let results = LocalCluster::run(2, |ep| {
                let cache = PlanCache::new();
                let fb = cache.fill_boundary(&ba, &dm, &domain, nghost, ncomp);
                let skel = DistSkeleton::build(&fb, dm.owners(), ep.rank());
                let mut state = MultiFab::new(ba.clone(), dm.clone(), ncomp, nghost);
                fill_linear(&mut state);
                let mut du = MultiFab::new(ba.clone(), dm.clone(), ncomp, 0);
                let mut rhs: Vec<FArrayBox> = (0..ba.len())
                    .map(|i| FArrayBox::new(ba.get(i), ncomp))
                    .collect();
                let gep = GroupEndpoint::full(&ep);
                let st = DistStage {
                    ep: &gep,
                    level: 0,
                    epoch: 7,
                    overlap,
                    sched: Schedule::pool(2),
                };
                let sweep = |_i: usize, u: FabRd<'_>, phase: SweepPhase, rhs: &mut FArrayBox| {
                    let valid = u.bx().grow(-nghost);
                    let interior = valid.grow(-nghost);
                    let regions = match phase {
                        SweepPhase::Interior => {
                            rhs.fill(0.0);
                            vec![interior]
                        }
                        SweepPhase::BoundaryBand => band_slabs(valid, interior),
                    };
                    for region in regions {
                        for c in 0..ncomp {
                            for p in region.cells() {
                                let lap = u.get(p + IntVect::new(1, 0, 0), c)
                                    + u.get(p - IntVect::new(1, 0, 0), c)
                                    - 2.0 * u.get(p, c);
                                rhs.set(p, c, 0.125 * lap);
                            }
                        }
                    }
                };
                let update =
                    |_i: usize, _du: &mut FArrayBox, state: &mut FArrayBox, rhs: &FArrayBox| {
                        let vb = state.bx().grow(-nghost);
                        for c in 0..ncomp {
                            for p in vb.cells() {
                                let v = state.get(p, c) + rhs.get(p, c);
                                state.set(p, c, v);
                            }
                        }
                    };
                run_dist_rk_stage(
                    StageFabs {
                        state: &mut state,
                        du: &mut du,
                        rhs: &mut rhs,
                    },
                    &fb,
                    &skel,
                    &st,
                    &[],
                    &|_i, _rw| {},
                    &|_i, _rw| {},
                    &sweep,
                    &update,
                )
                .expect("fault-free stage");
                allgather_fabs(&mut state, &gep, 0, 7).expect("fault-free gather");
                state
            });
            for (rank, state) in results.iter().enumerate() {
                for i in 0..state.nfabs() {
                    assert_eq!(
                        state.fab(i).data(),
                        reference.fab(i).data(),
                        "overlap={overlap} rank={rank} patch={i} diverged"
                    );
                }
            }
        }
    }
}
