//! Communication plans: the exact data-motion behind `FillBoundary` and
//! `ParallelCopy`.
//!
//! The paper's scaling analysis (§VI-B/§VI-C, Figs. 5–7) hinges on *which*
//! messages these two operations generate: `FillBoundary` is point-to-point
//! between neighboring patches, while the curvilinear interpolator's
//! `ParallelCopy` is effectively global. A [`CopyPlan`] captures that message
//! list exactly — source/destination box, owning ranks, region, and byte
//! count — so the same object both executes the copy locally and prices it on
//! the simulated Summit network.

use crate::boxarray::BoxArray;
use crate::distribution::DistributionMapping;
use crocco_geometry::{IndexBox, IntVect, ProblemDomain};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One contiguous region copied from a source box to a destination box.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CopyChunk {
    /// Index of the source box in its BoxArray.
    pub src_id: usize,
    /// Index of the destination box in its BoxArray.
    pub dst_id: usize,
    /// Rank owning the source box.
    pub src_rank: usize,
    /// Rank owning the destination box.
    pub dst_rank: usize,
    /// Region to fill, in *destination* index space.
    pub region: IndexBox,
    /// Source cell for destination cell `p` is `p - shift` (non-zero only for
    /// periodic wraps).
    pub shift: IntVect,
}

impl CopyChunk {
    /// Payload size in bytes for `ncomp` double-precision components.
    pub fn bytes(&self, ncomp: usize) -> u64 {
        self.region.num_points() * ncomp as u64 * 8
    }

    /// `true` if source and destination live on the same rank.
    pub fn is_local(&self) -> bool {
        self.src_rank == self.dst_rank
    }
}

/// A full communication plan: every chunk needed by one collective data-motion
/// operation, plus the component count it will move.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct CopyPlan {
    /// All copy chunks (local and remote).
    pub chunks: Vec<CopyChunk>,
    /// Number of components moved per cell.
    pub ncomp: usize,
}

/// Aggregate statistics of a plan, used by the network cost model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PlanStats {
    /// Number of distinct (src_rank, dst_rank) message pairs, excluding local.
    pub num_messages: u64,
    /// Total off-rank payload bytes.
    pub remote_bytes: u64,
    /// Total on-rank payload bytes.
    pub local_bytes: u64,
    /// Largest total payload received by any single rank.
    pub max_rank_recv_bytes: u64,
    /// Largest number of distinct message partners (sends + receives) of any
    /// single rank — the per-rank latency term of the α–β model.
    pub max_rank_msgs: u64,
    /// Number of distinct ranks that communicate (send or receive).
    pub ranks_involved: u64,
}

impl CopyPlan {
    /// Chunk-index ranges grouped by destination box: each `(start, end)`
    /// pair delimits a run of chunks sharing one `dst_id`. Distinct groups
    /// write distinct destination fabs, so groups can execute concurrently.
    ///
    /// Both plan builders emit chunks ordered by destination, giving one run
    /// per `dst_id`. If a hand-built plan interleaves destinations, the runs
    /// are collapsed to a single serial group so parallel execution stays
    /// race-free.
    pub fn dst_groups(&self) -> Vec<(usize, usize)> {
        let n = self.chunks.len();
        let mut groups = Vec::new();
        let mut start = 0;
        for i in 1..=n {
            if i == n || self.chunks[i].dst_id != self.chunks[start].dst_id {
                groups.push((start, i));
                start = i;
            }
        }
        let mut seen = std::collections::HashSet::with_capacity(groups.len());
        if groups
            .iter()
            .any(|&(s, _)| !seen.insert(self.chunks[s].dst_id))
        {
            return vec![(0, n)];
        }
        groups
    }

    /// Computes per-rank aggregate statistics for cost modeling.
    pub fn stats(&self) -> PlanStats {
        let mut pairs: HashMap<(usize, usize), u64> = HashMap::new();
        let mut recv: HashMap<usize, u64> = HashMap::new();
        let mut ranks: std::collections::HashSet<usize> = std::collections::HashSet::new();
        let mut local = 0u64;
        let mut remote = 0u64;
        for c in &self.chunks {
            let b = c.bytes(self.ncomp);
            if c.is_local() {
                local += b;
            } else {
                remote += b;
                *pairs.entry((c.src_rank, c.dst_rank)).or_default() += b;
                *recv.entry(c.dst_rank).or_default() += b;
                ranks.insert(c.src_rank);
                ranks.insert(c.dst_rank);
            }
        }
        let mut per_rank_msgs: HashMap<usize, u64> = HashMap::new();
        for (src, dst) in pairs.keys() {
            *per_rank_msgs.entry(*src).or_default() += 1;
            *per_rank_msgs.entry(*dst).or_default() += 1;
        }
        PlanStats {
            num_messages: pairs.len() as u64,
            remote_bytes: remote,
            local_bytes: local,
            max_rank_recv_bytes: recv.values().copied().max().unwrap_or(0),
            max_rank_msgs: per_rank_msgs.values().copied().max().unwrap_or(0),
            ranks_involved: ranks.len() as u64,
        }
    }
}

/// Builds the `FillBoundary` plan: for every destination box, fill its ghost
/// shell from the valid regions of every same-level neighbor, including
/// periodic images. Point-to-point only — this is the cheap path in Fig. 7.
pub fn fill_boundary_plan(
    ba: &BoxArray,
    dm: &DistributionMapping,
    domain: &ProblemDomain,
    nghost: i64,
    ncomp: usize,
) -> CopyPlan {
    let shifts = domain.periodic_shifts();
    let mut chunks = Vec::new();
    for dst_id in 0..ba.len() {
        let valid = ba.get(dst_id);
        let grown = valid.grow(nghost);
        // Ghost region = grown minus valid, handled per-source to keep chunks
        // rectangular: intersect each neighbor's (shifted) valid box with the
        // grown box, then discard the part inside our own valid box.
        for &shift in &shifts {
            // Source boxes appear shifted by `shift` in destination space.
            let probe = grown.shift(-shift);
            for (src_id, overlap_src) in ba.intersections(probe) {
                let overlap_dst = overlap_src.shift(shift);
                if shift == IntVect::ZERO && src_id == dst_id {
                    continue; // our own valid data
                }
                // Split off any part that lies inside the destination's valid
                // region (it is already correct there).
                for region in subtract(overlap_dst, valid) {
                    chunks.push(CopyChunk {
                        src_id,
                        dst_id,
                        src_rank: dm.owner(src_id),
                        dst_rank: dm.owner(dst_id),
                        region,
                        shift,
                    });
                }
            }
        }
    }
    CopyPlan { chunks, ncomp }
}

/// Builds a `ParallelCopy` plan: fill each destination box (grown by
/// `dst_ghost`) from the valid regions of a *different* BoxArray. With a
/// coarse, widely-distributed source this is the global communication the
/// paper blames for CRoCCo 2.0's weak-scaling loss.
pub fn parallel_copy_plan(
    src_ba: &BoxArray,
    src_dm: &DistributionMapping,
    dst_ba: &BoxArray,
    dst_dm: &DistributionMapping,
    domain: &ProblemDomain,
    dst_ghost: i64,
    ncomp: usize,
) -> CopyPlan {
    let shifts = domain.periodic_shifts();
    let mut chunks = Vec::new();
    for dst_id in 0..dst_ba.len() {
        let grown = dst_ba.get(dst_id).grow(dst_ghost);
        for &shift in &shifts {
            let probe = grown.shift(-shift);
            for (src_id, overlap_src) in src_ba.intersections(probe) {
                chunks.push(CopyChunk {
                    src_id,
                    dst_id,
                    src_rank: src_dm.owner(src_id),
                    dst_rank: dst_dm.owner(dst_id),
                    region: overlap_src.shift(shift),
                    shift,
                });
            }
        }
    }
    CopyPlan { chunks, ncomp }
}

/// Subtracts `cut` from `from`, returning disjoint remainder boxes.
fn subtract(from: IndexBox, cut: IndexBox) -> Vec<IndexBox> {
    let mut out = Vec::new();
    crate::boxarray::subtract_box(from, cut, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::DistributionStrategy;
    use crocco_geometry::decompose::ChopParams;

    fn setup(nranks: usize) -> (BoxArray, DistributionMapping, ProblemDomain) {
        let domain_box = IndexBox::from_extents(32, 32, 16);
        let ba = BoxArray::decompose(domain_box, ChopParams::new(8, 16));
        let dm = DistributionMapping::new(&ba, nranks, DistributionStrategy::MortonSfc);
        let domain = ProblemDomain::new(domain_box, [false, false, true]);
        (ba, dm, domain)
    }

    #[test]
    fn fill_boundary_regions_lie_in_ghost_shell() {
        let (ba, dm, domain) = setup(4);
        let plan = fill_boundary_plan(&ba, &dm, &domain, 4, 5);
        assert!(!plan.chunks.is_empty());
        for c in &plan.chunks {
            let valid = ba.get(c.dst_id);
            assert!(valid.grow(4).contains_box(&c.region));
            assert!(!valid.intersects(&c.region), "chunk inside valid region");
            // Source data must exist: region - shift inside src box.
            assert!(ba.get(c.src_id).contains_box(&c.region.shift(-c.shift)));
        }
    }

    #[test]
    fn fill_boundary_chunks_for_one_box_are_disjoint() {
        let (ba, dm, domain) = setup(2);
        let plan = fill_boundary_plan(&ba, &dm, &domain, 2, 1);
        for dst in 0..ba.len() {
            let regions: Vec<IndexBox> = plan
                .chunks
                .iter()
                .filter(|c| c.dst_id == dst)
                .map(|c| c.region)
                .collect();
            for (i, a) in regions.iter().enumerate() {
                for b in &regions[i + 1..] {
                    assert!(!a.intersects(b), "{a:?} overlaps {b:?} for dst {dst}");
                }
            }
        }
    }

    #[test]
    fn interior_box_ghosts_fully_covered() {
        // With enough neighbors + z-periodicity, a truly interior box's ghost
        // shell must be fully covered by incoming chunks.
        let domain_box = IndexBox::from_extents(32, 32, 16);
        let ba = BoxArray::decompose(domain_box, ChopParams::new(8, 8));
        let dm = DistributionMapping::all_on_root(&ba);
        let domain = ProblemDomain::new(domain_box, [false, false, true]);
        let nghost = 4;
        let plan = fill_boundary_plan(&ba, &dm, &domain, nghost, 1);
        // Find a box strictly interior in x and y.
        let interior = (0..ba.len())
            .find(|&i| {
                let b = ba.get(i);
                b.lo()[0] > 0 && b.hi()[0] < 31 && b.lo()[1] > 0 && b.hi()[1] < 31
            })
            .expect("no interior box");
        let valid = ba.get(interior);
        let covered: u64 = plan
            .chunks
            .iter()
            .filter(|c| c.dst_id == interior)
            .map(|c| c.region.num_points())
            .sum();
        let shell = valid.grow(nghost).num_points() - valid.num_points();
        assert_eq!(covered, shell);
    }

    #[test]
    fn periodic_wrap_generates_shifted_chunks() {
        let (ba, dm, domain) = setup(1);
        let plan = fill_boundary_plan(&ba, &dm, &domain, 2, 1);
        assert!(
            plan.chunks.iter().any(|c| c.shift != IntVect::ZERO),
            "expected periodic chunks in z"
        );
        // But none in x or y (non-periodic).
        assert!(plan
            .chunks
            .iter()
            .all(|c| c.shift[0] == 0 && c.shift[1] == 0));
    }

    #[test]
    fn plan_stats_classify_local_vs_remote() {
        let (ba, dm, domain) = setup(4);
        let plan = fill_boundary_plan(&ba, &dm, &domain, 2, 5);
        let stats = plan.stats();
        assert!(stats.remote_bytes > 0);
        assert!(stats.local_bytes > 0);
        assert!(stats.num_messages > 0);
        assert!(stats.ranks_involved <= 4);
        let serial = DistributionMapping::all_on_root(&ba);
        let plan1 = fill_boundary_plan(&ba, &serial, &domain, 2, 5);
        let s1 = plan1.stats();
        assert_eq!(s1.remote_bytes, 0);
        assert_eq!(s1.num_messages, 0);
        assert_eq!(
            s1.local_bytes,
            stats.local_bytes + stats.remote_bytes,
            "total data motion must not depend on the distribution"
        );
    }

    #[test]
    fn parallel_copy_reaches_across_box_arrays() {
        let (src_ba, src_dm, domain) = setup(4);
        // Destination: one fine-level-style box somewhere in the middle.
        let dst_ba = BoxArray::new(vec![IndexBox::new(
            IntVect::new(8, 8, 4),
            IntVect::new(23, 23, 11),
        )]);
        let dst_dm = DistributionMapping::all_on_root(&dst_ba);
        let plan = parallel_copy_plan(&src_ba, &src_dm, &dst_ba, &dst_dm, &domain, 4, 3);
        let covered: u64 = plan.chunks.iter().map(|c| c.region.num_points()).sum();
        assert_eq!(covered, dst_ba.get(0).grow(4).num_points());
        // Many source ranks feed one destination rank: that is the global
        // pattern the paper identifies.
        let src_ranks: std::collections::HashSet<_> =
            plan.chunks.iter().map(|c| c.src_rank).collect();
        assert!(src_ranks.len() > 1);
    }
}
