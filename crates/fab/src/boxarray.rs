//! `BoxArray`: the patch list of one AMR level.

use crocco_geometry::{decompose::ChopParams, IndexBox, IntVect};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic source of BoxArray/DistributionMapping identity tokens. Zero is
/// reserved for "unassigned" (freshly deserialized values).
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// Draws a fresh, process-unique identity token.
pub(crate) fn next_identity() -> u64 {
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

/// The collection of patch boxes at one AMR level (AMReX `BoxArray`).
///
/// Boxes are disjoint (validated on construction) and carry a bucket-grid
/// spatial index so the `O(patches²)` intersection queries behind
/// `FillBoundary`, `ParallelCopy`, and two-level interpolation stay fast at
/// Summit scale (tens of thousands of patches at 1024 nodes).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BoxArray {
    boxes: Vec<IndexBox>,
    /// Edge length of the bucket grid used by the spatial index.
    bucket: i64,
    /// Bucket coordinate → indices of boxes that touch the bucket.
    #[serde(skip)]
    index: HashMap<IntVect, Vec<u32>>,
    /// Process-unique identity token assigned at construction and shared by
    /// clones. Two arrays with the same id hold the same boxes, so the id is
    /// a cheap communication-plan cache key (AMReX caches FillBoundary
    /// metadata the same way, keyed on `BoxArray` identity).
    #[serde(skip)]
    id: u64,
}

impl PartialEq for BoxArray {
    fn eq(&self, other: &Self) -> bool {
        self.boxes == other.boxes
    }
}

impl BoxArray {
    /// Builds a box array from disjoint boxes.
    ///
    /// # Panics
    /// Panics if any box is empty or any two boxes overlap (checked via the
    /// spatial index, so construction is near-linear).
    pub fn new(boxes: Vec<IndexBox>) -> Self {
        assert!(!boxes.is_empty(), "a BoxArray needs at least one box");
        for b in &boxes {
            assert!(!b.is_empty(), "BoxArray cannot hold empty boxes");
        }
        // Bucket size: the median box edge is a good compromise.
        let mut edges: Vec<i64> = boxes.iter().map(|b| b.size().max_component()).collect();
        edges.sort_unstable();
        let bucket = edges[edges.len() / 2].max(1);
        let mut ba = BoxArray {
            boxes,
            bucket,
            index: HashMap::new(),
            id: next_identity(),
        };
        ba.rebuild_index();
        // Disjointness check using the index.
        for (i, b) in ba.boxes.iter().enumerate() {
            for j in ba.candidate_ids(*b) {
                if (j as usize) > i {
                    assert!(
                        !ba.boxes[j as usize].intersects(b),
                        "BoxArray boxes {i} and {j} overlap: {b:?} vs {:?}",
                        ba.boxes[j as usize]
                    );
                }
            }
        }
        ba
    }

    /// Builds the level-0 box array by chopping a whole domain.
    pub fn decompose(domain: IndexBox, params: ChopParams) -> Self {
        BoxArray::new(crocco_geometry::decompose::decompose_domain(domain, params))
    }

    fn rebuild_index(&mut self) {
        self.index.clear();
        for (i, b) in self.boxes.iter().enumerate() {
            let lo = b.lo().coarsen(IntVect::splat(self.bucket));
            let hi = b.hi().coarsen(IntVect::splat(self.bucket));
            for bc in IndexBox::new(lo, hi).cells() {
                self.index.entry(bc).or_default().push(i as u32);
            }
        }
    }

    /// Rebuilds the spatial index (needed after deserialization, which skips
    /// the index field) and assigns a fresh identity token if none is set.
    pub fn ensure_index(&mut self) {
        if self.index.is_empty() && !self.boxes.is_empty() {
            self.rebuild_index();
        }
        if self.id == 0 {
            self.id = next_identity();
        }
    }

    /// The identity token: process-unique, assigned at construction, shared
    /// by clones. Used to key cached communication plans.
    #[inline]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Candidate box ids whose bucket footprint intersects `probe`'s.
    fn candidate_ids(&self, probe: IndexBox) -> Vec<u32> {
        let lo = probe.lo().coarsen(IntVect::splat(self.bucket));
        let hi = probe.hi().coarsen(IntVect::splat(self.bucket));
        let mut ids = Vec::new();
        for bc in IndexBox::new(lo, hi).cells() {
            if let Some(v) = self.index.get(&bc) {
                ids.extend_from_slice(v);
            }
        }
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Number of boxes.
    #[inline]
    pub fn len(&self) -> usize {
        self.boxes.len()
    }

    /// `true` if there are no boxes (cannot happen for a constructed array,
    /// but useful for `Option<BoxArray>` call sites).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.boxes.is_empty()
    }

    /// The `i`-th box.
    #[inline]
    pub fn get(&self, i: usize) -> IndexBox {
        self.boxes[i]
    }

    /// All boxes.
    #[inline]
    pub fn boxes(&self) -> &[IndexBox] {
        &self.boxes
    }

    /// Total number of cells across all boxes.
    pub fn num_points(&self) -> u64 {
        self.boxes.iter().map(|b| b.num_points()).sum()
    }

    /// The bounding hull of all boxes.
    pub fn hull(&self) -> IndexBox {
        self.boxes
            .iter()
            .fold(IndexBox::EMPTY, |acc, b| acc.hull(b))
    }

    /// All `(box_id, overlap)` pairs where a box overlaps `probe`.
    pub fn intersections(&self, probe: IndexBox) -> Vec<(usize, IndexBox)> {
        if probe.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::new();
        for id in self.candidate_ids(probe) {
            let isect = self.boxes[id as usize].intersection(&probe);
            if !isect.is_empty() {
                out.push((id as usize, isect));
            }
        }
        out
    }

    /// `true` if `probe` is fully covered by the union of the boxes.
    pub fn covers(&self, probe: IndexBox) -> bool {
        let covered: u64 = self
            .intersections(probe)
            .iter()
            .map(|(_, b)| b.num_points())
            .sum();
        covered == probe.num_points()
    }

    /// `true` if any box intersects `probe`.
    pub fn intersects_any(&self, probe: IndexBox) -> bool {
        self.candidate_ids(probe)
            .iter()
            .any(|&id| self.boxes[id as usize].intersects(&probe))
    }

    /// A new array with every box refined by `ratio`.
    pub fn refine(&self, ratio: IntVect) -> BoxArray {
        BoxArray::new(self.boxes.iter().map(|b| b.refine(ratio)).collect())
    }

    /// A new array with every box coarsened by `ratio`. The caller must
    /// ensure the boxes are `ratio`-aligned or the result may overlap.
    pub fn coarsen(&self, ratio: IntVect) -> BoxArray {
        BoxArray::new(self.boxes.iter().map(|b| b.coarsen(ratio)).collect())
    }

    /// The parts of `probe` *not* covered by any box, as a disjoint box list.
    /// This is the complement operation behind proper-nesting enforcement.
    pub fn complement_in(&self, probe: IndexBox) -> Vec<IndexBox> {
        let mut remaining = vec![probe];
        for id in self.candidate_ids(probe) {
            let cut = self.boxes[id as usize];
            let mut next = Vec::with_capacity(remaining.len());
            for r in remaining {
                subtract_box(r, cut, &mut next);
            }
            remaining = next;
            if remaining.is_empty() {
                break;
            }
        }
        remaining
    }
}

/// Subtracts `cut` from `from`, pushing the (disjoint) remainder onto `out`.
pub fn subtract_box(from: IndexBox, cut: IndexBox, out: &mut Vec<IndexBox>) {
    let isect = from.intersection(&cut);
    if isect.is_empty() {
        out.push(from);
        return;
    }
    // Slice `from` along each direction around the intersection.
    let mut core = from;
    for dir in 0..3 {
        if core.lo()[dir] < isect.lo()[dir] {
            let (low, rest) = core.chop(dir, isect.lo()[dir]);
            out.push(low);
            core = rest;
        }
        if core.hi()[dir] > isect.hi()[dir] {
            let (rest, high) = core.chop(dir, isect.hi()[dir] + 1);
            out.push(high);
            core = rest;
        }
    }
    debug_assert_eq!(core, isect);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(lo: [i64; 3], hi: [i64; 3]) -> IndexBox {
        IndexBox::new(IntVect(lo), IntVect(hi))
    }

    #[test]
    fn decompose_roundtrip() {
        let domain = IndexBox::from_extents(64, 32, 16);
        let ba = BoxArray::decompose(domain, ChopParams::new(8, 16));
        assert_eq!(ba.num_points(), domain.num_points());
        assert_eq!(ba.hull(), domain);
        assert!(ba.covers(domain));
    }

    #[test]
    #[should_panic]
    fn overlapping_boxes_rejected() {
        BoxArray::new(vec![b([0, 0, 0], [3, 3, 3]), b([2, 2, 2], [5, 5, 5])]);
    }

    #[test]
    fn intersections_find_all_neighbors() {
        let ba = BoxArray::new(vec![
            b([0, 0, 0], [7, 7, 7]),
            b([8, 0, 0], [15, 7, 7]),
            b([0, 8, 0], [7, 15, 7]),
        ]);
        // A ghost shell around box 0 must touch boxes 1 and 2.
        let probe = ba.get(0).grow(2);
        let hits = ba.intersections(probe);
        let ids: Vec<usize> = hits.iter().map(|(i, _)| *i).collect();
        assert!(ids.contains(&0) && ids.contains(&1) && ids.contains(&2));
        // Overlap with box 1 is the 2-wide strip.
        let (_, isect) = hits.iter().find(|(i, _)| *i == 1).unwrap();
        assert_eq!(*isect, b([8, 0, 0], [9, 7, 7]));
    }

    #[test]
    fn covers_detects_holes() {
        let ba = BoxArray::new(vec![b([0, 0, 0], [7, 7, 7]), b([16, 0, 0], [23, 7, 7])]);
        assert!(ba.covers(b([0, 0, 0], [7, 7, 7])));
        assert!(!ba.covers(b([0, 0, 0], [23, 7, 7]))); // gap in the middle
    }

    #[test]
    fn refine_coarsen_roundtrip() {
        let ba = BoxArray::decompose(IndexBox::from_extents(32, 32, 32), ChopParams::new(8, 16));
        let r = IntVect::splat(2);
        let fine = ba.refine(r);
        assert_eq!(fine.num_points(), ba.num_points() * 8);
        assert_eq!(fine.coarsen(r), ba);
    }

    #[test]
    fn complement_of_full_cover_is_empty() {
        let domain = IndexBox::from_extents(32, 32, 32);
        let ba = BoxArray::decompose(domain, ChopParams::new(8, 8));
        assert!(ba.complement_in(domain).is_empty());
    }

    #[test]
    fn complement_partitions_probe() {
        let ba = BoxArray::new(vec![b([8, 8, 8], [15, 15, 15])]);
        let probe = b([0, 0, 0], [23, 23, 23]);
        let rest = ba.complement_in(probe);
        let total: u64 = rest.iter().map(|r| r.num_points()).sum();
        assert_eq!(total + ba.get(0).num_points(), probe.num_points());
        for r in &rest {
            assert!(!r.intersects(&ba.get(0)));
            assert!(probe.contains_box(r));
        }
        // Pieces are mutually disjoint.
        for (i, a) in rest.iter().enumerate() {
            for c in &rest[i + 1..] {
                assert!(!a.intersects(c));
            }
        }
    }

    #[test]
    fn identity_tokens_are_unique_and_shared_by_clones() {
        let a = BoxArray::new(vec![b([0, 0, 0], [7, 7, 7])]);
        let c = a.clone();
        assert_ne!(a.id(), 0);
        assert_eq!(a.id(), c.id(), "clones must share identity");
        // An equal-by-value but independently constructed array gets its own
        // identity: plans keyed on ids are never shared across regrids.
        let d = BoxArray::new(vec![b([0, 0, 0], [7, 7, 7])]);
        assert_eq!(a, d);
        assert_ne!(a.id(), d.id());
    }

    #[test]
    fn subtract_box_disjoint_cut_keeps_original() {
        let mut out = Vec::new();
        subtract_box(b([0, 0, 0], [3, 3, 3]), b([10, 10, 10], [12, 12, 12]), &mut out);
        assert_eq!(out, vec![b([0, 0, 0], [3, 3, 3])]);
    }
}
