//! Logical tiling of patches (BoxLib/AMReX tiling, the paper's ref. \[24\]).
//!
//! Large patches are traversed as a sequence of cache-sized *tiles*: the
//! `MFIter`-with-tiling pattern that keeps stencil working sets resident in
//! cache and exposes finer-grained parallelism than whole patches. Tiles are
//! a pure index-space decomposition — no data is copied.

use crate::multifab::MultiFab;
use crocco_geometry::{IndexBox, IntVect};

/// Default AMReX tile shape: pencils long in x (the unit-stride direction),
/// short in y/z.
pub const DEFAULT_TILE: IntVect = IntVect([1_000_000, 8, 8]);

/// Splits `bx` into tiles no larger than `tile` in each direction. Tiles
/// partition the box exactly (no overlap, full coverage), in z-then-y-then-x
/// order.
pub fn tile_boxes(bx: IndexBox, tile: IntVect) -> Vec<IndexBox> {
    assert!((0..3).all(|d| tile[d] > 0), "tile extents must be positive");
    let mut out = Vec::new();
    let lo = bx.lo();
    let hi = bx.hi();
    let mut kz = lo[2];
    while kz <= hi[2] {
        let z1 = (kz + tile[2] - 1).min(hi[2]);
        let mut ky = lo[1];
        while ky <= hi[1] {
            let y1 = (ky + tile[1] - 1).min(hi[1]);
            let mut kx = lo[0];
            while kx <= hi[0] {
                let x1 = (kx + tile[0] - 1).min(hi[0]);
                out.push(IndexBox::new(
                    IntVect::new(kx, ky, kz),
                    IntVect::new(x1, y1, z1),
                ));
                kx = x1 + 1;
            }
            ky = y1 + 1;
        }
        kz = z1 + 1;
    }
    out
}

/// A `(patch index, tile box)` work item.
pub type TileItem = (usize, IndexBox);

/// Builds the tiled work list over a MultiFab's valid regions — the MFIter
/// loop order with tiling enabled. The flat list is what on-node workers
/// (threads in this reproduction, GPU blocks in the paper's) consume.
pub fn tiled_work_list(mf: &MultiFab, tile: IntVect) -> Vec<TileItem> {
    let mut out = Vec::new();
    for (i, valid) in mf.iter_valid() {
        for t in tile_boxes(valid, tile) {
            out.push((i, t));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boxarray::BoxArray;
    use crate::distribution::DistributionMapping;
    use crocco_geometry::decompose::ChopParams;
    use std::sync::Arc;

    #[test]
    fn tiles_partition_the_box() {
        let bx = IndexBox::from_extents(20, 12, 10);
        let tiles = tile_boxes(bx, IntVect::new(8, 5, 4));
        let total: u64 = tiles.iter().map(|t| t.num_points()).sum();
        assert_eq!(total, bx.num_points());
        for (i, a) in tiles.iter().enumerate() {
            assert!(bx.contains_box(a));
            assert!(a.size()[0] <= 8 && a.size()[1] <= 5 && a.size()[2] <= 4);
            for b in &tiles[i + 1..] {
                assert!(!a.intersects(b));
            }
        }
        // ceil(20/8)·ceil(12/5)·ceil(10/4) = 3·3·3.
        assert_eq!(tiles.len(), 27);
    }

    #[test]
    fn default_tile_is_pencil_shaped() {
        let bx = IndexBox::from_extents(64, 32, 32);
        let tiles = tile_boxes(bx, DEFAULT_TILE);
        // Never split in x.
        assert!(tiles.iter().all(|t| t.size()[0] == 64));
        assert_eq!(tiles.len(), (32 / 8) * (32 / 8));
    }

    #[test]
    fn one_cell_tiles_enumerate_cells() {
        let bx = IndexBox::from_extents(3, 2, 2);
        let tiles = tile_boxes(bx, IntVect::ONE);
        assert_eq!(tiles.len(), 12);
        assert!(tiles.iter().all(|t| t.num_points() == 1));
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

        /// The exact-partition contract under arbitrary box origins, box
        /// extents, and tile shapes — including every remainder case: no
        /// overlap, no gap, every tile within bounds and within the
        /// requested shape, and each direction split into full-size tiles
        /// plus at most one remainder of exactly `extent mod tile` cells.
        #[test]
        fn tiles_partition_exactly(
            ox in -5i64..5,
            oy in -5i64..5,
            oz in -5i64..5,
            nx in 1i64..24,
            ny in 1i64..16,
            nz in 1i64..12,
            tx in 1i64..30,
            ty in 1i64..20,
            tz in 1i64..14,
        ) {
            use proptest::prelude::prop_assert;
            use proptest::prelude::prop_assert_eq;
            let lo = IntVect::new(ox, oy, oz);
            let bx = IndexBox::new(lo, lo + IntVect::new(nx - 1, ny - 1, nz - 1));
            let tile = IntVect::new(tx, ty, tz);
            let tiles = tile_boxes(bx, tile);

            // Expected tile count: ceil(n/t) per direction.
            let ceil = |n: i64, t: i64| (n + t - 1) / t;
            prop_assert_eq!(
                tiles.len() as i64,
                ceil(nx, tx) * ceil(ny, ty) * ceil(nz, tz)
            );

            // No gap: total points match. No overlap: pairwise disjoint.
            // Together: every cell lies in exactly one tile.
            let total: u64 = tiles.iter().map(|t| t.num_points()).sum();
            prop_assert_eq!(total, bx.num_points());
            for (i, a) in tiles.iter().enumerate() {
                prop_assert!(bx.contains_box(a));
                for d in 0..3 {
                    prop_assert!(a.size()[d] <= tile[d]);
                }
                for b in &tiles[i + 1..] {
                    prop_assert!(!a.intersects(b));
                }
            }

            // Remainder handling per direction: interior tiles are
            // full-size; only a tile touching the high edge may be the
            // (nonzero) remainder.
            for t in &tiles {
                for d in 0..3 {
                    let n = [nx, ny, nz][d];
                    let want = [tx, ty, tz][d].min(n);
                    if t.hi()[d] == bx.hi()[d] {
                        let rem = n % [tx, ty, tz][d];
                        let edge = if rem == 0 { want } else { rem };
                        prop_assert_eq!(t.size()[d], edge);
                    } else {
                        prop_assert_eq!(t.size()[d], want);
                    }
                }
            }
        }
    }

    #[test]
    fn work_list_covers_every_patch() {
        let ba = Arc::new(BoxArray::decompose(
            IndexBox::from_extents(32, 32, 16),
            ChopParams::new(4, 16),
        ));
        let dm = Arc::new(DistributionMapping::all_on_root(&ba));
        let mf = MultiFab::new(ba.clone(), dm, 1, 0);
        let work = tiled_work_list(&mf, IntVect::new(16, 8, 8));
        let total: u64 = work.iter().map(|(_, t)| t.num_points()).sum();
        assert_eq!(total, ba.num_points());
        // Every patch contributes.
        for i in 0..ba.len() {
            assert!(work.iter().any(|(p, _)| *p == i));
        }
    }
}
