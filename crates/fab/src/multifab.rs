//! `MultiFab`: the distributed multi-patch field container.
//!
//! This is the workspace's only module allowed to contain `unsafe` code (the
//! raw per-fab views behind parallel plan execution); the allowlist is
//! enforced by `cargo xtask lint`, and the aliasing assumptions the unsafe
//! blocks rely on are dynamically provable with the `fabcheck` feature
//! ([`crate::fabcheck`]).
#![allow(unsafe_code)]

use crate::boxarray::BoxArray;
use crate::distribution::DistributionMapping;
use crate::fab::FArrayBox;
#[cfg(feature = "fabcheck")]
use crate::fabcheck;
use crate::plan::{fill_boundary_plan, parallel_copy_plan, CopyPlan};
use crate::plan_cache::{CachedPlan, PlanCache};
use crocco_geometry::{IndexBox, IntVect, ProblemDomain};
use crocco_runtime::parallel_for;
use std::sync::Arc;

/// A multi-component field distributed over the patches of one AMR level
/// (AMReX `MultiFab`).
///
/// The paper stores four of these per level for the curvilinear solver: the
/// conserved state, the 5-component `dU` update, the 3-component physical
/// coordinates, and the 27-component grid metrics (§III-C "Data management").
///
/// This reproduction executes single-process: every patch's data lives here,
/// while the [`DistributionMapping`] still records which *simulated rank*
/// owns each patch so communication plans can be priced on the Summit model.
#[derive(Clone, Debug)]
pub struct MultiFab {
    ba: Arc<BoxArray>,
    dm: Arc<DistributionMapping>,
    ncomp: usize,
    nghost: i64,
    fabs: Vec<FArrayBox>,
    /// Sanitizer bookkeeping (ghost-freshness epochs, master switch); see
    /// [`crate::fabcheck::CheckState`] for the freshness model.
    #[cfg(feature = "fabcheck")]
    check: fabcheck::CheckState,
}

impl MultiFab {
    /// Allocates a zero-initialized MultiFab: one fab per box, each grown by
    /// `nghost` ghost cells.
    pub fn new(ba: Arc<BoxArray>, dm: Arc<DistributionMapping>, ncomp: usize, nghost: i64) -> Self {
        assert_eq!(ba.len(), dm.owners().len(), "BoxArray/DistributionMapping size mismatch");
        let fabs = ba
            .boxes()
            .iter()
            .map(|b| FArrayBox::new(b.grow(nghost), ncomp))
            .collect();
        MultiFab {
            ba,
            dm,
            ncomp,
            nghost,
            fabs,
            #[cfg(feature = "fabcheck")]
            check: fabcheck::CheckState::default(),
        }
    }

    /// Allocates an *owned-data* MultiFab: metadata (boxes, owners) for every
    /// patch, but storage only for the patches `dm` assigns to `rank` — the
    /// other entries are [`FArrayBox::unallocated`] placeholders. This is the
    /// scalable construction of the owned-data distributed path: memory per
    /// rank is O(owned cells + ghosts), not O(global cells).
    ///
    /// Whole-level operations that touch every patch (`set_val`, the global
    /// reductions, `fill_boundary`, `parallel_copy_from`) must not be used on
    /// an owned MultiFab; the owned step path routes all cross-rank motion
    /// through `dist_overlap`/`owned` exchanges instead, and panics on an
    /// unallocated dereference make accidental whole-level use loud.
    pub fn new_owned(
        ba: Arc<BoxArray>,
        dm: Arc<DistributionMapping>,
        ncomp: usize,
        nghost: i64,
        rank: usize,
    ) -> Self {
        assert_eq!(ba.len(), dm.owners().len(), "BoxArray/DistributionMapping size mismatch");
        let fabs = ba
            .boxes()
            .iter()
            .enumerate()
            .map(|(i, b)| {
                if dm.owner(i) == rank {
                    FArrayBox::new(b.grow(nghost), ncomp)
                } else {
                    FArrayBox::unallocated(b.grow(nghost), ncomp)
                }
            })
            .collect();
        MultiFab {
            ba,
            dm,
            ncomp,
            nghost,
            fabs,
            #[cfg(feature = "fabcheck")]
            check: fabcheck::CheckState::default(),
        }
    }

    /// [`MultiFab::new_owned`] with the `fabcheck` signaling-NaN allocation
    /// poison applied to the owned patches (see [`MultiFab::new_poisoned`]).
    /// Without the feature this is exactly `new_owned`.
    pub fn new_owned_poisoned(
        ba: Arc<BoxArray>,
        dm: Arc<DistributionMapping>,
        ncomp: usize,
        nghost: i64,
        rank: usize,
    ) -> Self {
        #[allow(unused_mut)]
        let mut mf = Self::new_owned(ba, dm, ncomp, nghost, rank);
        #[cfg(feature = "fabcheck")]
        for f in &mut mf.fabs {
            if f.is_allocated() {
                f.fill(fabcheck::SNAN);
            }
        }
        mf
    }

    /// `true` when patch `i` has storage on this rank (always `true` for
    /// replicated MultiFabs built with [`MultiFab::new`]; owner-gated for
    /// [`MultiFab::new_owned`] ones).
    #[inline]
    pub fn is_allocated(&self, i: usize) -> bool {
        self.fabs[i].is_allocated()
    }

    /// Bytes of fab storage actually allocated in this MultiFab — the
    /// memory-per-rank observable the owned-data tests assert on
    /// (O(owned cells + ghosts), not O(global)).
    pub fn local_data_bytes(&self) -> usize {
        self.fabs
            .iter()
            .map(|f| std::mem::size_of_val(f.data()))
            .sum()
    }

    /// Like [`MultiFab::new`], but with the `fabcheck` feature every cell is
    /// poisoned with a signaling NaN ([`crate::fabcheck::SNAN`]) instead of
    /// zero, so any kernel consuming a never-written value propagates NaN and
    /// is caught by the next [`crate::fabcheck::check_for_nan`] sweep (the
    /// AMReX `fab.initval` discipline). Without the feature this is exactly
    /// `new` — callers may use it unconditionally.
    pub fn new_poisoned(
        ba: Arc<BoxArray>,
        dm: Arc<DistributionMapping>,
        ncomp: usize,
        nghost: i64,
    ) -> Self {
        #[allow(unused_mut)]
        let mut mf = Self::new(ba, dm, ncomp, nghost);
        #[cfg(feature = "fabcheck")]
        for f in &mut mf.fabs {
            f.fill(fabcheck::SNAN);
        }
        mf
    }

    /// The box array.
    #[inline]
    pub fn boxarray(&self) -> &Arc<BoxArray> {
        &self.ba
    }

    /// The distribution mapping.
    #[inline]
    pub fn distribution(&self) -> &Arc<DistributionMapping> {
        &self.dm
    }

    /// Number of components.
    #[inline]
    pub fn ncomp(&self) -> usize {
        self.ncomp
    }

    /// Ghost width.
    #[inline]
    pub fn nghost(&self) -> i64 {
        self.nghost
    }

    /// Number of local patches.
    #[inline]
    pub fn nfabs(&self) -> usize {
        self.fabs.len()
    }

    /// The valid (ghost-free) box of patch `i`.
    #[inline]
    pub fn valid_box(&self, i: usize) -> IndexBox {
        self.ba.get(i)
    }

    /// Patch `i`'s fab (valid + ghost data).
    #[inline]
    pub fn fab(&self, i: usize) -> &FArrayBox {
        &self.fabs[i]
    }

    /// Patch `i`'s fab, mutably.
    #[inline]
    pub fn fab_mut(&mut self, i: usize) -> &mut FArrayBox {
        self.note_data_mutation();
        &mut self.fabs[i]
    }

    /// Split-borrow: mutable access to fab `i` plus shared access to all fabs,
    /// for neighbor-reading updates. (Returns `(dst, all_others)` where
    /// `all_others[i]` must not be used.)
    pub fn fabs_mut(&mut self) -> &mut [FArrayBox] {
        self.note_data_mutation();
        &mut self.fabs
    }

    /// Switches the `fabcheck` sanitizer on/off for this MultiFab (the config
    /// knob). No-op without the `fabcheck` feature.
    pub fn set_fabcheck(&mut self, _on: bool) {
        #[cfg(feature = "fabcheck")]
        {
            self.check.enabled = _on;
        }
    }

    /// Declares the ghost regions coherent with the current valid data.
    /// `fill_boundary` calls this itself; fill-patch sequences that apply
    /// physical BCs through `fabs_mut` afterwards must call it once the whole
    /// ghost shell is in its final state. No-op without `fabcheck`.
    pub fn mark_ghosts_filled(&mut self) {
        #[cfg(feature = "fabcheck")]
        {
            self.check.ghost_epoch = Some(self.check.data_epoch);
        }
    }

    /// Traps a stale-ghost read: panics (under the `fabcheck` feature, when
    /// enabled) if valid data changed since the last ghost fill, or if ghosts
    /// were never filled at all. Kernels that consume ghost cells call this
    /// on entry; `_label` names the call site in the panic message.
    pub fn assert_ghosts_fresh(&self, _label: &str) {
        #[cfg(feature = "fabcheck")]
        if self.check.enabled {
            assert!(
                self.check.ghosts_fresh(),
                "fabcheck: stale ghost read in {_label}: data epoch {}, ghosts filled at {:?} \
                 (None = never) — a fill_boundary/fill_patch is missing",
                self.check.data_epoch,
                self.check.ghost_epoch
            );
        }
    }

    /// `true` when ghosts are coherent with the valid data. Always `true`
    /// without the `fabcheck` feature (no bookkeeping to consult).
    pub fn ghosts_fresh(&self) -> bool {
        #[cfg(feature = "fabcheck")]
        {
            self.check.ghosts_fresh()
        }
        #[cfg(not(feature = "fabcheck"))]
        {
            true
        }
    }

    #[inline]
    fn note_data_mutation(&mut self) {
        #[cfg(feature = "fabcheck")]
        {
            self.check.data_epoch += 1;
        }
    }

    #[inline]
    pub(crate) fn check_plan_gated(&self, _plan: &CopyPlan, _in_place: bool) {
        #[cfg(feature = "fabcheck")]
        if self.check.enabled {
            fabcheck::check_plan(_plan, _in_place);
        }
    }

    /// Iterator over `(patch_id, valid_box)` pairs — the MFIter analog.
    pub fn iter_valid(&self) -> impl Iterator<Item = (usize, IndexBox)> + '_ {
        (0..self.fabs.len()).map(|i| (i, self.ba.get(i)))
    }

    /// Sets every component of every patch (including ghosts) to `v`.
    pub fn set_val(&mut self, v: f64) {
        for f in &mut self.fabs {
            f.fill(v);
        }
        // Ghosts were written too: the whole fab is coherent.
        self.note_data_mutation();
        self.mark_ghosts_filled();
    }

    /// Fills ghost cells of every patch from same-level neighbors (and
    /// periodic images): the `FillBoundary` operation. Returns the executed
    /// [`CopyPlan`] so callers can price it on the network model.
    ///
    /// Builds a fresh plan every call; steady-state loops should use
    /// [`MultiFab::fill_boundary_cached`] instead.
    pub fn fill_boundary(&mut self, domain: &ProblemDomain) -> CopyPlan {
        let plan = fill_boundary_plan(&self.ba, &self.dm, domain, self.nghost, self.ncomp);
        let groups = plan.dst_groups();
        self.check_plan_gated(&plan, true);
        execute_grouped(&mut self.fabs, None, &plan, &groups, 1);
        self.mark_ghosts_filled();
        plan
    }

    /// [`MultiFab::fill_boundary`] with a memoized plan and parallel
    /// execution: the plan is looked up in (or built into) `cache`, then its
    /// destination groups fan out over up to `threads` workers.
    pub fn fill_boundary_cached(
        &mut self,
        domain: &ProblemDomain,
        cache: &PlanCache,
        threads: usize,
    ) -> Arc<CachedPlan> {
        let cp = cache.fill_boundary(&self.ba, &self.dm, domain, self.nghost, self.ncomp);
        self.check_plan_gated(&cp.plan, true);
        execute_grouped(&mut self.fabs, None, &cp.plan, &cp.groups, threads);
        self.mark_ghosts_filled();
        cp
    }

    /// Copies data from `src` (a MultiFab over a *different* BoxArray) into
    /// this MultiFab's valid+ghost regions wherever they overlap: the
    /// `ParallelCopy` operation. Returns the executed plan.
    pub fn parallel_copy_from(&mut self, src: &MultiFab, domain: &ProblemDomain) -> CopyPlan {
        assert_eq!(self.ncomp, src.ncomp, "ParallelCopy component mismatch");
        let plan = parallel_copy_plan(
            &src.ba,
            &src.dm,
            &self.ba,
            &self.dm,
            domain,
            self.nghost,
            self.ncomp,
        );
        let groups = plan.dst_groups();
        self.check_plan_gated(&plan, false);
        execute_grouped(&mut self.fabs, Some(&src.fabs), &plan, &groups, 1);
        self.note_data_mutation();
        plan
    }

    /// Executes a caller-supplied *in-place* plan over this MultiFab (each
    /// chunk copies `region - shift` → `region` between this MultiFab's own
    /// fabs). A testing/tooling hook: the cached execution paths build their
    /// plans internally, but seeded-fault tests and future plan surgeries
    /// need to run a hand-built plan through the same grouped executor —
    /// under `fabcheck` the plan is proven alias-free first, so a seeded
    /// aliasing bug panics here instead of corrupting data.
    pub fn execute_plan(&mut self, plan: &CopyPlan, threads: usize) {
        self.check_plan_gated(plan, true);
        let groups = plan.dst_groups();
        execute_grouped(&mut self.fabs, None, plan, &groups, threads);
        self.note_data_mutation();
    }

    /// [`MultiFab::parallel_copy_from`] with a memoized plan and parallel
    /// execution.
    pub fn parallel_copy_from_cached(
        &mut self,
        src: &MultiFab,
        domain: &ProblemDomain,
        cache: &PlanCache,
        threads: usize,
    ) -> Arc<CachedPlan> {
        assert_eq!(self.ncomp, src.ncomp, "ParallelCopy component mismatch");
        let cp = cache.parallel_copy(
            &src.ba,
            &src.dm,
            &self.ba,
            &self.dm,
            domain,
            self.nghost,
            self.ncomp,
        );
        self.check_plan_gated(&cp.plan, false);
        execute_grouped(&mut self.fabs, Some(&src.fabs), &cp.plan, &cp.groups, threads);
        self.note_data_mutation();
        cp
    }

    /// Global minimum of `comp` over valid regions.
    pub fn min(&self, comp: usize) -> f64 {
        self.iter_valid()
            .map(|(i, b)| self.fabs[i].min_region(b, comp))
            .fold(f64::INFINITY, f64::min)
    }

    /// Global maximum of `comp` over valid regions.
    pub fn max(&self, comp: usize) -> f64 {
        self.iter_valid()
            .map(|(i, b)| self.fabs[i].max_region(b, comp))
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Global sum of `comp` over valid regions.
    pub fn sum(&self, comp: usize) -> f64 {
        self.iter_valid()
            .map(|(i, b)| self.fabs[i].sum_region(b, comp))
            .sum()
    }

    /// Global L2 norm of `comp` over valid regions.
    pub fn norm2(&self, comp: usize) -> f64 {
        self.iter_valid()
            .map(|(i, b)| self.fabs[i].norm2_sq_region(b, comp))
            .sum::<f64>()
            .sqrt()
    }

    /// L2 norm of the difference of one component between two compatible
    /// MultiFabs — the validation metric of §IV-A/§IV-C.
    pub fn l2_diff(&self, other: &MultiFab, comp: usize) -> f64 {
        assert_eq!(self.ba.boxes(), other.ba.boxes(), "incompatible BoxArrays");
        let mut acc = 0.0;
        let mut n = 0u64;
        for (i, b) in self.iter_valid() {
            for p in b.cells() {
                let d = self.fabs[i].get(p, comp) - other.fabs[i].get(p, comp);
                acc += d * d;
                n += 1;
            }
        }
        (acc / n.max(1) as f64).sqrt()
    }

    /// `true` if any valid-region value is NaN/∞.
    pub fn has_nonfinite(&self) -> bool {
        self.iter_valid()
            .any(|(i, b)| self.fabs[i].has_nonfinite(b))
    }
}

/// Raw view of one fab: box geometry plus the data base pointer. Plan
/// execution works through these instead of `&`/`&mut FArrayBox` so that a
/// thread writing ghost cells of fab X never materializes a `&mut` that
/// aliases another thread's `&` into X's valid cells.
#[derive(Clone, Copy)]
pub(crate) struct RawFab {
    /// The fab's full (valid + ghost) box, kept for index-bounds
    /// `debug_assert`s on every chunk — raw-view construction must not rely
    /// on caller discipline alone even with `fabcheck` off.
    pub(crate) bx: IndexBox,
    lo: IntVect,
    nx: usize,
    ny: usize,
    nz: usize,
    /// Allocation length in `f64`s (`nx·ny·nz·ncomp`).
    pub(crate) len: usize,
    pub(crate) ptr: *mut f64,
}

impl RawFab {
    pub(crate) fn capture(f: &mut FArrayBox) -> Self {
        let bx = f.bx();
        let s = bx.size();
        let len = f.data().len();
        RawFab {
            bx,
            lo: bx.lo(),
            nx: s[0] as usize,
            ny: s[1] as usize,
            nz: s[2] as usize,
            len,
            ptr: f.data_mut().as_mut_ptr(),
        }
    }

    /// Read-only capture (the pointer is only ever read through).
    pub(crate) fn capture_const(f: &FArrayBox) -> Self {
        let bx = f.bx();
        let s = bx.size();
        let len = f.data().len();
        RawFab {
            bx,
            lo: bx.lo(),
            nx: s[0] as usize,
            ny: s[1] as usize,
            nz: s[2] as usize,
            len,
            ptr: f.data().as_ptr() as *mut f64,
        }
    }

    /// Number of components in the underlying allocation.
    #[inline]
    pub(crate) fn ncomp(&self) -> usize {
        self.len / (self.nx * self.ny * self.nz)
    }

    /// Flat offset of `(p, comp)` — mirrors [`FArrayBox::offset`].
    #[inline]
    pub(crate) fn offset(&self, p: IntVect, comp: usize) -> usize {
        debug_assert!(
            self.bx.contains(p),
            "raw-view index {p:?} outside fab box {:?}",
            self.bx
        );
        let i = (p[0] - self.lo[0]) as usize;
        let j = (p[1] - self.lo[1]) as usize;
        let k = (p[2] - self.lo[2]) as usize;
        ((comp * self.nz + k) * self.ny + j) * self.nx + i
    }
}

/// `&[RawFab]` wrapper asserting cross-thread shareability. Safe because the
/// executor's access pattern is disjoint (see [`execute_grouped`]).
struct RawFabs<'a>(&'a [RawFab]);
// SAFETY: the raw pointers inside are only dereferenced by `copy_chunk_raw`
// on chunk regions proven disjoint per destination group (see the safety
// argument on `execute_grouped`), so handing the view to another thread
// cannot create a data race.
unsafe impl Send for RawFabs<'_> {}
// SAFETY: shared references to `RawFabs` only expose `Copy` geometry data and
// raw pointers; all mutation goes through `copy_chunk_raw` under the same
// disjointness argument as `Send` above.
unsafe impl Sync for RawFabs<'_> {}

impl RawFabs<'_> {
    // Accessor (rather than direct `.0[i]` indexing in the worker closure) so
    // the closure captures the whole `Sync` wrapper, not the raw inner slice.
    #[inline]
    fn get(&self, i: usize) -> &RawFab {
        &self.0[i]
    }
}

/// Executes `plan` over `dst` (reading from `src`, or from `dst` itself when
/// `None`), fanning the destination groups out over up to `threads` workers.
///
/// # Safety argument
/// Writes go only to chunk regions of the group's own destination fab, and
/// each destination appears in exactly one group ([`CopyPlan::dst_groups`]
/// falls back to a single serial group otherwise), so no two threads write
/// the same fab. Reads target source regions (`region - shift`):
/// * `FillBoundary` plans read only *valid* cells and write only *ghost*
///   cells, which are disjoint sets within every fab — a concurrent read of
///   fab X's valid data and write of X's ghosts never touch the same `f64`.
/// * `ParallelCopy` plans read a different MultiFab entirely.
///
/// All access is through raw pointers (never `&mut`), so the disjointness of
/// the touched *cells* is the only requirement.
fn execute_grouped(
    dst: &mut [FArrayBox],
    src: Option<&[FArrayBox]>,
    plan: &CopyPlan,
    groups: &[(usize, usize)],
    threads: usize,
) {
    let ncomp = plan.ncomp;
    let dst_raw: Vec<RawFab> = dst.iter_mut().map(RawFab::capture).collect();
    let src_raw: Vec<RawFab> = match src {
        Some(s) => s.iter().map(RawFab::capture_const).collect(),
        None => dst_raw.clone(),
    };
    let d = RawFabs(&dst_raw);
    let s = RawFabs(&src_raw);
    parallel_for(groups.len(), threads, |g| {
        let (start, end) = groups[g];
        for c in &plan.chunks[start..end] {
            debug_assert!(
                c.region.is_empty() || d.get(c.dst_id).bx.contains_box(&c.region),
                "chunk writes {:?}, outside destination fab {} box {:?}",
                c.region,
                c.dst_id,
                d.get(c.dst_id).bx
            );
            debug_assert!(
                c.region.is_empty()
                    || s.get(c.src_id).bx.contains_box(&c.region.shift(-c.shift)),
                "chunk reads {:?}, outside source fab {} box {:?}",
                c.region.shift(-c.shift),
                c.src_id,
                s.get(c.src_id).bx
            );
            // SAFETY: the region lies in the destination fab's box and the
            // shifted region in the source fab's box (asserted above in debug
            // builds, guaranteed by the plan builders), and no other thread
            // touches these cells — each destination fab belongs to exactly
            // one group, and in-place reads target valid cells while writes
            // target ghost cells (see the function-level safety argument;
            // dynamically proven per-execution under `fabcheck`).
            unsafe { copy_chunk_raw(d.get(c.dst_id), s.get(c.src_id), c.region, c.shift, ncomp) };
        }
    });
}

/// Copies one chunk row-by-row through raw pointers: for every destination
/// cell `p` in `region`, `dst[p] = src[p - shift]`.
///
/// # Safety
/// `region` must lie in `dst`'s box and `region - shift` in `src`'s box, and
/// no other thread may concurrently access the touched cells (guaranteed by
/// [`execute_grouped`]'s grouping). Source and destination rows never
/// overlap: either the fabs differ, or (periodic self-copy) the source rows
/// lie in valid cells and the destination rows in ghost cells.
// SAFETY: an unsafe fn — every dereference below is bounds-checked in debug
// builds against the captured allocation length, and callers uphold the
// contract documented above.
pub(crate) unsafe fn copy_chunk_raw(
    dst: &RawFab,
    src: &RawFab,
    region: IndexBox,
    shift: IntVect,
    ncomp: usize,
) {
    if region.is_empty() {
        return;
    }
    crocco_runtime::taskcheck::record_access(dst.ptr as usize as u64, true, region);
    crocco_runtime::taskcheck::record_access(
        src.ptr as usize as u64,
        false,
        region.shift(-shift),
    );
    let nx = region.size()[0] as usize;
    for c in 0..ncomp {
        for k in region.lo()[2]..=region.hi()[2] {
            for j in region.lo()[1]..=region.hi()[1] {
                let dp = IntVect::new(region.lo()[0], j, k);
                let soff = src.offset(dp - shift, c);
                let doff = dst.offset(dp, c);
                debug_assert!(soff + nx <= src.len, "source row overruns allocation");
                debug_assert!(doff + nx <= dst.len, "destination row overruns allocation");
                let srow = src.ptr.add(soff);
                let drow = dst.ptr.add(doff);
                std::ptr::copy_nonoverlapping(srow, drow, nx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::DistributionStrategy;
    use crocco_geometry::{decompose::ChopParams, IntVect};

    fn setup(nghost: i64) -> (MultiFab, ProblemDomain) {
        let domain_box = IndexBox::from_extents(16, 16, 8);
        let ba = Arc::new(BoxArray::decompose(domain_box, ChopParams::new(4, 8)));
        let dm = Arc::new(DistributionMapping::new(
            &ba,
            3,
            DistributionStrategy::MortonSfc,
        ));
        let mf = MultiFab::new(ba, dm, 2, nghost);
        let domain = ProblemDomain::new(domain_box, [false, false, true]);
        (mf, domain)
    }

    /// Fill valid regions with a global linear function of the index.
    fn fill_linear(mf: &mut MultiFab) {
        for i in 0..mf.nfabs() {
            let b = mf.valid_box(i);
            for p in b.cells() {
                let v0 = p[0] as f64 + 100.0 * p[1] as f64 + 10_000.0 * p[2] as f64;
                mf.fab_mut(i).set(p, 0, v0);
                mf.fab_mut(i).set(p, 1, -v0);
            }
        }
    }

    #[test]
    fn fill_boundary_reproduces_interior_values() {
        let (mut mf, domain) = setup(2);
        fill_linear(&mut mf);
        mf.fill_boundary(&domain);
        // Every ghost cell that maps into the domain interior must equal the
        // linear function there.
        for i in 0..mf.nfabs() {
            let valid = mf.valid_box(i);
            for p in valid.grow(2).cells() {
                if valid.contains(p) {
                    continue;
                }
                if !domain.bx.contains(p) {
                    continue; // physical boundary ghost, untouched
                }
                let expect = p[0] as f64 + 100.0 * p[1] as f64 + 10_000.0 * p[2] as f64;
                assert_eq!(mf.fab(i).get(p, 0), expect, "patch {i} cell {p:?}");
                assert_eq!(mf.fab(i).get(p, 1), -expect);
            }
        }
    }

    #[test]
    fn fill_boundary_periodic_wraps_in_z() {
        let (mut mf, domain) = setup(2);
        fill_linear(&mut mf);
        mf.fill_boundary(&domain);
        // A ghost cell below z=0 must hold the value from z wrapped to 7.
        let i = (0..mf.nfabs())
            .find(|&i| mf.valid_box(i).lo() == IntVect::new(0, 0, 0))
            .unwrap();
        let ghost = IntVect::new(0, 0, -1);
        let wrapped = IntVect::new(0, 0, 7);
        let expect = wrapped[0] as f64 + 100.0 * wrapped[1] as f64 + 10_000.0 * wrapped[2] as f64;
        assert_eq!(mf.fab(i).get(ghost, 0), expect);
    }

    #[test]
    fn parallel_copy_moves_across_boxarrays() {
        let (mut src, domain) = setup(0);
        fill_linear(&mut src);
        // Destination: a single box straddling several source patches.
        let dst_ba = Arc::new(BoxArray::new(vec![IndexBox::new(
            IntVect::new(2, 2, 2),
            IntVect::new(13, 13, 5),
        )]));
        let dst_dm = Arc::new(DistributionMapping::all_on_root(&dst_ba));
        let mut dst = MultiFab::new(dst_ba, dst_dm, 2, 1);
        let plan = dst.parallel_copy_from(&src, &domain);
        assert!(!plan.chunks.is_empty());
        for p in dst.valid_box(0).grow(1).cells() {
            let expect = p[0] as f64 + 100.0 * p[1] as f64 + 10_000.0 * p[2] as f64;
            assert_eq!(dst.fab(0).get(p, 0), expect);
        }
    }

    #[test]
    fn reductions_match_closed_forms() {
        let (mut mf, _domain) = setup(1);
        mf.set_val(3.0);
        let n = mf.boxarray().num_points() as f64;
        assert_eq!(mf.sum(0), 3.0 * n);
        assert_eq!(mf.min(0), 3.0);
        assert_eq!(mf.max(1), 3.0);
        assert!((mf.norm2(0) - 3.0 * n.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn l2_diff_is_zero_for_identical_and_positive_otherwise() {
        let (mut a, _d) = setup(0);
        fill_linear(&mut a);
        let b = a.clone();
        assert_eq!(a.l2_diff(&b, 0), 0.0);
        let lo = a.valid_box(0).lo();
        a.fab_mut(0).add(lo, 0, 1e-6);
        let d = a.l2_diff(&b, 0);
        assert!(d > 0.0 && d < 1e-6);
    }

    #[test]
    fn ghost_cells_not_counted_in_reductions() {
        let (mut mf, domain) = setup(2);
        mf.set_val(0.0);
        fill_linear(&mut mf);
        let sum_before = mf.sum(0);
        mf.fill_boundary(&domain); // populates ghosts
        assert_eq!(mf.sum(0), sum_before);
    }

    #[test]
    fn cached_fill_boundary_bitwise_matches_uncached() {
        let (mut a, domain) = setup(2);
        fill_linear(&mut a);
        let mut b = a.clone();
        let plan = a.fill_boundary(&domain);
        let cache = crate::plan_cache::PlanCache::new();
        let cp = b.fill_boundary_cached(&domain, &cache, 4);
        assert_eq!(cp.plan.chunks, plan.chunks);
        for i in 0..a.nfabs() {
            assert_eq!(a.fab(i).data(), b.fab(i).data(), "patch {i} differs");
        }
        // Second call hits the cache and leaves the data fixed-point.
        b.fill_boundary_cached(&domain, &cache, 4);
        assert_eq!(cache.hits(), 1);
        for i in 0..a.nfabs() {
            assert_eq!(a.fab(i).data(), b.fab(i).data());
        }
    }

    #[test]
    fn parallel_execution_matches_serial_for_all_thread_counts() {
        let (reference, domain) = {
            let (mut mf, domain) = setup(3);
            fill_linear(&mut mf);
            mf.fill_boundary(&domain);
            (mf, domain)
        };
        for threads in [1usize, 2, 3, 8, 32] {
            let (mut mf, _) = setup(3);
            fill_linear(&mut mf);
            let cache = crate::plan_cache::PlanCache::new();
            mf.fill_boundary_cached(&domain, &cache, threads);
            for i in 0..mf.nfabs() {
                assert_eq!(
                    mf.fab(i).data(),
                    reference.fab(i).data(),
                    "threads={threads} patch {i}"
                );
            }
        }
    }

    /// Tentpole acceptance: a deliberately-overlapping hand-built plan must
    /// be rejected before the unsafe executor ever runs it.
    #[cfg(feature = "fabcheck")]
    #[test]
    #[should_panic(expected = "plan aliasing")]
    fn seeded_overlapping_plan_is_caught() {
        use crate::plan::CopyChunk;
        let (mut mf, _domain) = setup(2);
        fill_linear(&mut mf);
        let valid = mf.valid_box(0);
        // Two chunks whose write regions overlap by one cell row.
        let r1 = IndexBox::new(valid.lo(), valid.lo() + IntVect::new(2, 1, 0));
        let r2 = r1.shift(IntVect::new(1, 0, 0));
        let chunks = [r1, r2]
            .into_iter()
            .map(|region| CopyChunk {
                src_id: 0,
                dst_id: 0,
                src_rank: 0,
                dst_rank: 0,
                region,
                shift: IntVect::new(0, 0, 2),
            })
            .collect();
        let plan = CopyPlan { chunks, ncomp: 2 };
        mf.execute_plan(&plan, 1);
    }

    /// Tentpole acceptance: reading ghosts after the valid data changed
    /// (i.e. a skipped `fill_boundary`) must trap.
    #[cfg(feature = "fabcheck")]
    #[test]
    #[should_panic(expected = "stale ghost read")]
    fn stale_ghosts_after_mutation_trap() {
        let (mut mf, domain) = setup(2);
        fill_linear(&mut mf);
        mf.fill_boundary(&domain);
        mf.assert_ghosts_fresh("first kernel"); // fresh: must not panic
        let lo = mf.valid_box(0).lo();
        mf.fab_mut(0).add(lo, 0, 1.0); // valid data changes…
        mf.assert_ghosts_fresh("second kernel"); // …ghosts now stale: traps
    }

    #[cfg(feature = "fabcheck")]
    #[test]
    #[should_panic(expected = "never")]
    fn never_filled_ghosts_trap() {
        let (mf, _domain) = setup(2);
        mf.assert_ghosts_fresh("kernel before any fill");
    }

    #[cfg(feature = "fabcheck")]
    #[test]
    fn poisoned_allocation_is_nan_until_written() {
        let (mf, _domain) = setup(1);
        let mut p = MultiFab::new_poisoned(
            mf.boxarray().clone(),
            mf.distribution().clone(),
            2,
            1,
        );
        let lo = p.valid_box(0).lo();
        assert!(p.fab(0).get(lo, 0).is_nan());
        p.set_val(0.0);
        crate::fabcheck::check_for_nan(&p, "after set_val"); // clean now
    }

    #[cfg(feature = "fabcheck")]
    #[test]
    fn disabling_fabcheck_silences_the_traps() {
        let (mut mf, _domain) = setup(2);
        mf.set_fabcheck(false);
        mf.assert_ghosts_fresh("unchecked kernel"); // would trap if enabled
    }

    #[test]
    fn new_poisoned_without_feature_is_plain_new() {
        // With `fabcheck` off this must be all zeros (bitwise-invisible);
        // with it on, allocation-poisoning is the point.
        let (mf, _domain) = setup(1);
        let p = MultiFab::new_poisoned(mf.boxarray().clone(), mf.distribution().clone(), 2, 1);
        let lo = p.valid_box(0).lo();
        if cfg!(feature = "fabcheck") {
            assert!(p.fab(0).get(lo, 0).is_nan());
        } else {
            assert_eq!(p.fab(0).get(lo, 0), 0.0);
        }
    }

    #[test]
    fn owned_multifab_allocates_only_owned_patches() {
        let (mf, _domain) = setup(2);
        let ba = mf.boxarray().clone();
        let dm = mf.distribution().clone();
        let nranks = 3;
        let mut total_owned = 0usize;
        let mut full = 0usize;
        for rank in 0..nranks {
            let o = MultiFab::new_owned(ba.clone(), dm.clone(), 2, 2, rank);
            for i in 0..o.nfabs() {
                assert_eq!(o.is_allocated(i), dm.owner(i) == rank, "patch {i} rank {rank}");
                // Metadata is intact even for placeholders.
                assert_eq!(o.fab(i).bx(), ba.get(i).grow(2));
                assert_eq!(o.fab(i).ncomp(), 2);
            }
            total_owned += o.local_data_bytes();
            full = MultiFab::new(ba.clone(), dm.clone(), 2, 2).local_data_bytes();
            assert!(o.local_data_bytes() < full, "rank {rank} holds the full level");
        }
        // The ranks' owned allocations partition the replicated allocation.
        assert_eq!(total_owned, full);
    }

    #[cfg(feature = "fabcheck")]
    #[test]
    fn owned_poisoned_poisons_only_owned_patches() {
        let (mf, _domain) = setup(1);
        let dm = mf.distribution().clone();
        let rank = 1;
        let p = MultiFab::new_owned_poisoned(mf.boxarray().clone(), dm.clone(), 2, 1, rank);
        let i = (0..p.nfabs()).find(|&i| dm.owner(i) == rank).unwrap();
        let lo = p.valid_box(i).lo();
        assert!(p.fab(i).get(lo, 0).is_nan());
        let j = (0..p.nfabs()).find(|&i| dm.owner(i) != rank).unwrap();
        assert!(!p.is_allocated(j));
    }

    #[test]
    fn cached_parallel_copy_matches_uncached() {
        let (mut src, domain) = setup(0);
        fill_linear(&mut src);
        let dst_ba = Arc::new(BoxArray::new(vec![IndexBox::new(
            IntVect::new(2, 2, 2),
            IntVect::new(13, 13, 5),
        )]));
        let dst_dm = Arc::new(DistributionMapping::all_on_root(&dst_ba));
        let mut d1 = MultiFab::new(dst_ba.clone(), dst_dm.clone(), 2, 1);
        let mut d2 = d1.clone();
        d1.parallel_copy_from(&src, &domain);
        let cache = crate::plan_cache::PlanCache::new();
        d2.parallel_copy_from_cached(&src, &domain, &cache, 4);
        assert_eq!(d1.fab(0).data(), d2.fab(0).data());
    }
}
