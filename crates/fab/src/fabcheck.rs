//! `fabcheck`: the dynamic sanitizer for plan execution and ghost validity.
//!
//! The paper's port spent much of its debugging effort on exactly two hazard
//! classes in the AMR data paths: copies landing on top of each other
//! (aliasing in the `FillBoundary`/`ParallelCopy` message lists) and kernels
//! consuming ghost cells that were never refreshed after the state changed.
//! AMReX ships built-in defenses for these — signaling-NaN initialization of
//! `FArrayBox`es and `check_for_nan` sweeps — and this module reproduces
//! them, plus a dynamic proof of the aliasing invariant our `unsafe` plan
//! executor relies on ([`crate::multifab`]).
//!
//! Three layers, all debug tooling (never required for correctness of a
//! correct program):
//!
//! 1. **Plan aliasing** — [`check_plan`] proves every destination fab's chunk
//!    regions pairwise disjoint, and (for in-place plans like `FillBoundary`)
//!    that no chunk reads a region another chunk writes. This turns the
//!    safety *argument* documented on `execute_grouped` into a checked
//!    invariant at every execution.
//! 2. **Ghost staleness** — each `MultiFab` carries a [`CheckState`] under
//!    the `fabcheck` feature: a `data_epoch` bumped on every mutable access
//!    to fab data and a `ghost_epoch` recording the data epoch at the last
//!    ghost fill. `assert_ghosts_fresh` traps a kernel about to read ghosts
//!    that are stale (`ghost_epoch != data_epoch`) or were never filled.
//! 3. **NaN poisoning** — `MultiFab::new_poisoned` fills fresh allocations
//!    with a signaling NaN ([`SNAN`]) so uninitialized reads propagate, and
//!    [`check_for_nan`] sweeps valid regions after each RK stage to localize
//!    the first poisoned cell (AMReX `FArrayBox::initval` + `check_for_nan`).
//!
//! Everything here is plain safe code and compiles unconditionally; only the
//! per-`MultiFab` bookkeeping hooks are gated behind the `fabcheck` cargo
//! feature so the default build carries zero overhead. See DESIGN.md §4d.

use crate::multifab::MultiFab;
use crate::plan::CopyPlan;

/// Signaling NaN used to poison freshly allocated fab data (AMReX uses the
/// same idea via `fab.initval`). The payload bit distinguishes it from the
/// quiet NaNs arithmetic produces, so a poisoned value read before first
/// write is recognizable in a debugger.
pub const SNAN: f64 = f64::from_bits(0x7FF0_0000_0000_0001);

/// Proves the aliasing invariant of a [`CopyPlan`] before execution:
///
/// * chunks writing the same destination fab have pairwise-disjoint regions
///   (otherwise concurrent group execution races and even serial execution
///   double-writes);
/// * when `in_place` (source MultiFab == destination MultiFab, i.e.
///   `FillBoundary`), no chunk's read region (`region - shift` on the source
///   fab) intersects any chunk's write region on that same fab — the
///   precondition of the executor's `copy_nonoverlapping`.
///
/// Panics with chunk indices and regions on the first violation. Cost is
/// O(chunks² within a destination), acceptable for a debug feature.
pub fn check_plan(plan: &CopyPlan, in_place: bool) {
    use std::collections::HashMap;
    let mut writes: HashMap<usize, Vec<(usize, crocco_geometry::IndexBox)>> = HashMap::new();
    for (i, c) in plan.chunks.iter().enumerate() {
        if c.region.is_empty() {
            continue;
        }
        writes.entry(c.dst_id).or_default().push((i, c.region));
    }
    for (dst, regions) in &writes {
        for (n, (ia, ra)) in regions.iter().enumerate() {
            for (ib, rb) in &regions[n + 1..] {
                assert!(
                    !ra.intersects(rb),
                    "fabcheck: plan aliasing — chunks #{ia} and #{ib} both write \
                     fab {dst} in overlapping regions {ra:?} / {rb:?}"
                );
            }
        }
    }
    if in_place {
        for (i, c) in plan.chunks.iter().enumerate() {
            if c.region.is_empty() {
                continue;
            }
            let read = c.region.shift(-c.shift);
            if let Some(w) = writes.get(&c.src_id) {
                for (j, wr) in w {
                    assert!(
                        !read.intersects(wr),
                        "fabcheck: in-place hazard — chunk #{i} reads fab {} region \
                         {read:?} while chunk #{j} writes {wr:?}",
                        c.src_id
                    );
                }
            }
        }
    }
}

/// Sweeps every valid cell of `mf` and panics on the first NaN, reporting
/// patch, cell, and component — the AMReX `check_for_nan` diagnostic. With
/// NaN poisoning on, a hit means some kernel consumed a never-written value.
pub fn check_for_nan(mf: &MultiFab, label: &str) {
    for (i, b) in mf.iter_valid() {
        let fab = mf.fab(i);
        for c in 0..mf.ncomp() {
            for p in b.cells() {
                let v = fab.get(p, c);
                assert!(
                    !v.is_nan(),
                    "fabcheck: NaN in {label}: patch {i} cell {p:?} component {c}"
                );
            }
        }
    }
}

/// Per-`MultiFab` sanitizer state (embedded in every `MultiFab` under the
/// `fabcheck` feature — deliberately not a global toggle, so parallel test
/// binaries can exercise checked and unchecked fabs side by side).
///
/// The freshness model: `data_epoch` counts potential mutations of fab data
/// (any `fab_mut`/`fabs_mut` handout, `set_val`, plan execution into this
/// fab). `ghost_epoch` records the value of `data_epoch` the last time ghost
/// regions were brought coherent (a `fill_boundary`, or an explicit
/// `mark_ghosts_filled` after a fill-patch sequence). Ghosts are *fresh* iff
/// `ghost_epoch == Some(data_epoch)`; `None` means never filled.
#[derive(Clone, Debug)]
pub struct CheckState {
    /// Master switch (config knob `fabcheck`); checks are skipped when false.
    pub enabled: bool,
    /// Bumped on every potentially-mutating access to fab data.
    pub data_epoch: u64,
    /// `data_epoch` at the last ghost fill; `None` if ghosts never filled.
    pub ghost_epoch: Option<u64>,
}

impl Default for CheckState {
    fn default() -> Self {
        CheckState {
            enabled: true,
            data_epoch: 0,
            ghost_epoch: None,
        }
    }
}

impl CheckState {
    /// `true` if ghost data is coherent with the current valid data.
    pub fn ghosts_fresh(&self) -> bool {
        self.ghost_epoch == Some(self.data_epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{CopyChunk, CopyPlan};
    use crocco_geometry::{IndexBox, IntVect};

    fn chunk(src_id: usize, dst_id: usize, region: IndexBox, shift: IntVect) -> CopyChunk {
        CopyChunk {
            src_id,
            dst_id,
            src_rank: 0,
            dst_rank: 0,
            region,
            shift,
        }
    }

    #[test]
    fn disjoint_plan_passes() {
        let plan = CopyPlan {
            chunks: vec![
                chunk(0, 1, IndexBox::from_extents(4, 4, 4), IntVect::ZERO),
                chunk(
                    0,
                    1,
                    IndexBox::from_extents(4, 4, 4).shift(IntVect::new(4, 0, 0)),
                    IntVect::ZERO,
                ),
            ],
            ncomp: 1,
        };
        check_plan(&plan, false);
    }

    #[test]
    #[should_panic(expected = "plan aliasing")]
    fn overlapping_writes_panic() {
        let r = IndexBox::from_extents(4, 4, 4);
        let plan = CopyPlan {
            chunks: vec![
                chunk(0, 1, r, IntVect::ZERO),
                chunk(2, 1, r.shift(IntVect::new(3, 0, 0)), IntVect::ZERO),
            ],
            ncomp: 1,
        };
        check_plan(&plan, false);
    }

    #[test]
    #[should_panic(expected = "in-place hazard")]
    fn in_place_read_write_overlap_panics() {
        // Chunk reads fab 0 over the same cells another chunk writes fab 0.
        let r = IndexBox::from_extents(4, 4, 4);
        let plan = CopyPlan {
            chunks: vec![
                chunk(1, 0, r, IntVect::ZERO),                          // writes fab 0 at r
                chunk(0, 2, r.shift(IntVect::new(2, 0, 0)), IntVect::new(2, 0, 0)), // reads fab 0 at r
            ],
            ncomp: 1,
        };
        check_plan(&plan, true);
    }

    #[test]
    fn snan_is_a_nan_with_payload() {
        assert!(SNAN.is_nan());
        assert_eq!(SNAN.to_bits() & 1, 1);
    }

    #[test]
    fn epoch_freshness_model() {
        let mut st = CheckState::default();
        assert!(!st.ghosts_fresh()); // never filled
        st.ghost_epoch = Some(st.data_epoch);
        assert!(st.ghosts_fresh());
        st.data_epoch += 1;
        assert!(!st.ghosts_fresh()); // stale after mutation
    }
}
