//! `DistributionMapping`: box → rank ownership.

use crate::boxarray::BoxArray;
use crocco_geometry::morton;
use serde::{Deserialize, Serialize};

/// How boxes are assigned to ranks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DistributionStrategy {
    /// Boxes are dealt to ranks in listed order, one at a time.
    RoundRobin,
    /// Boxes are sorted along the Z-Morton space-filling curve and the curve
    /// is sliced into per-rank segments of approximately equal cell counts —
    /// the default AMReX balancer the paper uses (§III-B).
    MortonSfc,
    /// Greedy knapsack: heaviest box goes to the currently lightest rank.
    /// Better balance, worse locality — an AMReX option kept for the
    /// load-balancing ablation.
    Knapsack,
}

/// The ownership map of one level: which rank owns each box (AMReX
/// `DistributionMapping`). Load balancing is carried out per level,
/// independently and in sequence, exactly as described in §III-B.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DistributionMapping {
    owners: Vec<usize>,
    nranks: usize,
    /// Identity token (see [`BoxArray::id`]): shared by clones, fresh per
    /// construction, part of the communication-plan cache key.
    #[serde(skip)]
    id: u64,
}

impl PartialEq for DistributionMapping {
    fn eq(&self, other: &Self) -> bool {
        self.owners == other.owners && self.nranks == other.nranks
    }
}

impl DistributionMapping {
    /// Builds an ownership map for `ba` over `nranks` ranks.
    pub fn new(ba: &BoxArray, nranks: usize, strategy: DistributionStrategy) -> Self {
        assert!(nranks > 0);
        let owners = match strategy {
            DistributionStrategy::RoundRobin => {
                (0..ba.len()).map(|i| i % nranks).collect::<Vec<_>>()
            }
            DistributionStrategy::MortonSfc => sfc_assign(ba, nranks),
            DistributionStrategy::Knapsack => knapsack_assign(ba, nranks),
        };
        DistributionMapping {
            owners,
            nranks,
            id: crate::boxarray::next_identity(),
        }
    }

    /// Ownership map placing every box on rank 0 (serial runs and tests).
    pub fn all_on_root(ba: &BoxArray) -> Self {
        DistributionMapping {
            owners: vec![0; ba.len()],
            nranks: 1,
            id: crate::boxarray::next_identity(),
        }
    }

    /// The identity token, keying cached communication plans.
    #[inline]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Rank owning box `i`.
    #[inline]
    pub fn owner(&self, i: usize) -> usize {
        self.owners[i]
    }

    /// Number of ranks this map was built for.
    #[inline]
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// All owners, indexed by box id.
    pub fn owners(&self) -> &[usize] {
        &self.owners
    }

    /// Per-rank total cell counts for `ba`.
    pub fn rank_loads(&self, ba: &BoxArray) -> Vec<u64> {
        let mut loads = vec![0u64; self.nranks];
        for (i, &r) in self.owners.iter().enumerate() {
            loads[r] += ba.get(i).num_points();
        }
        loads
    }

    /// Load imbalance: max rank load over mean rank load (1.0 is perfect).
    pub fn imbalance(&self, ba: &BoxArray) -> f64 {
        let loads = self.rank_loads(ba);
        let max = *loads.iter().max().unwrap() as f64;
        let mean = loads.iter().sum::<u64>() as f64 / loads.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

/// Z-Morton SFC assignment: order boxes by the Morton key of their low
/// corner, then slice the curve into contiguous chunks of ~equal cell counts.
fn sfc_assign(ba: &BoxArray, nranks: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..ba.len()).collect();
    order.sort_by_key(|&i| morton::box_key(ba.get(i).lo()));
    let total: u64 = ba.num_points();
    let per_rank = (total as f64 / nranks as f64).max(1.0);
    let mut owners = vec![0usize; ba.len()];
    let mut acc = 0u64;
    for &i in &order {
        // Rank for the *start* of this box along the curve.
        let r = ((acc as f64 / per_rank) as usize).min(nranks - 1);
        owners[i] = r;
        acc += ba.get(i).num_points();
    }
    owners
}

/// Greedy knapsack: sort boxes by descending weight, assign each to the rank
/// with the least accumulated load.
fn knapsack_assign(ba: &BoxArray, nranks: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..ba.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(ba.get(i).num_points()));
    let mut loads = vec![0u64; nranks];
    let mut owners = vec![0usize; ba.len()];
    for &i in &order {
        let r = (0..nranks).min_by_key(|&r| loads[r]).unwrap();
        owners[i] = r;
        loads[r] += ba.get(i).num_points();
    }
    owners
}

#[cfg(test)]
mod tests {
    use super::*;
    use crocco_geometry::{decompose::ChopParams, IndexBox};

    fn uniform_ba() -> BoxArray {
        BoxArray::decompose(IndexBox::from_extents(64, 64, 64), ChopParams::new(8, 16))
    }

    #[test]
    fn round_robin_covers_all_ranks() {
        let ba = uniform_ba();
        let dm = DistributionMapping::new(&ba, 8, DistributionStrategy::RoundRobin);
        for r in 0..8 {
            assert!(dm.owners().contains(&r));
        }
        assert_eq!(dm.owners().len(), ba.len());
    }

    #[test]
    fn sfc_balances_uniform_grid_nearly_perfectly() {
        let ba = uniform_ba(); // 64 equal boxes
        let dm = DistributionMapping::new(&ba, 8, DistributionStrategy::MortonSfc);
        assert!(dm.imbalance(&ba) < 1.01, "imbalance {}", dm.imbalance(&ba));
    }

    #[test]
    fn sfc_assigns_contiguous_curve_segments() {
        let ba = uniform_ba();
        let dm = DistributionMapping::new(&ba, 4, DistributionStrategy::MortonSfc);
        // Walk the curve: rank ids must be non-decreasing.
        let mut order: Vec<usize> = (0..ba.len()).collect();
        order.sort_by_key(|&i| morton::box_key(ba.get(i).lo()));
        let ranks: Vec<usize> = order.iter().map(|&i| dm.owner(i)).collect();
        assert!(ranks.windows(2).all(|w| w[0] <= w[1]), "{ranks:?}");
    }

    #[test]
    fn knapsack_beats_round_robin_on_skewed_boxes() {
        // Mixed box sizes: 1 big + several small.
        use crocco_geometry::IntVect;
        let boxes = vec![
            IndexBox::new(IntVect::new(0, 0, 0), IntVect::new(31, 31, 31)),
            IndexBox::new(IntVect::new(32, 0, 0), IntVect::new(39, 7, 7)),
            IndexBox::new(IntVect::new(32, 8, 0), IntVect::new(39, 15, 7)),
            IndexBox::new(IntVect::new(32, 16, 0), IntVect::new(39, 23, 7)),
            IndexBox::new(IntVect::new(32, 24, 0), IntVect::new(39, 31, 7)),
        ];
        let ba = BoxArray::new(boxes);
        let rr = DistributionMapping::new(&ba, 2, DistributionStrategy::RoundRobin);
        let ks = DistributionMapping::new(&ba, 2, DistributionStrategy::Knapsack);
        assert!(ks.imbalance(&ba) <= rr.imbalance(&ba));
    }

    #[test]
    fn loads_sum_to_total() {
        let ba = uniform_ba();
        for strat in [
            DistributionStrategy::RoundRobin,
            DistributionStrategy::MortonSfc,
            DistributionStrategy::Knapsack,
        ] {
            let dm = DistributionMapping::new(&ba, 6, strat);
            let loads = dm.rank_loads(&ba);
            assert_eq!(loads.iter().sum::<u64>(), ba.num_points());
        }
    }

    #[test]
    fn more_ranks_than_boxes_is_fine() {
        let ba = BoxArray::new(vec![IndexBox::from_extents(8, 8, 8)]);
        let dm = DistributionMapping::new(&ba, 16, DistributionStrategy::MortonSfc);
        assert_eq!(dm.owner(0), 0);
        assert_eq!(dm.nranks(), 16);
    }
}
