//! Field containers for block-structured AMR.
//!
//! This crate reproduces the AMReX data layer that CRoCCo is hosted on in the
//! paper:
//!
//! * [`FArrayBox`] — a multi-component double-precision array over one
//!   [`IndexBox`](crocco_geometry::IndexBox) (the per-patch container),
//! * [`BoxArray`] — the list of patch boxes at one AMR level,
//! * [`DistributionMapping`] — the box → rank ownership map with the Z-Morton
//!   space-filling-curve balancer the paper uses (plus round-robin and
//!   knapsack alternatives for the ablation study),
//! * [`MultiFab`] — the distributed multi-patch field: the paper stores the
//!   primitive variables, the 5-component conservative update `dU`, the
//!   3-component curvilinear coordinates, and the 27-component grid metrics
//!   each in one of these,
//! * [`plan`] — communication *plans*: the exact point-to-point message lists
//!   behind `FillBoundary` and `ParallelCopy`, which both execute the data
//!   motion locally and feed the simulated Summit network model,
//! * [`plan_cache`] — memoized plans (the AMReX `FabArrayBase` cache analog,
//!   DESIGN.md §4b-bis),
//! * [`view`] + [`overlap`] — raw per-fab views and the task-graph RK-stage
//!   executor that overlaps halo exchange with interior kernel sweeps
//!   (DESIGN.md §4e).
//!
//! Where this crate sits in the paper-subsystem map (the S1–S5 table; the
//! same table appears in the `runtime` and `amr` roots):
//!
//! | # | paper subsystem | crate counterpart |
//! |---|---|---|
//! | S1 | MPI job across Summit nodes (§IV-B) | `runtime::sim`, `runtime::cluster`, `runtime::topology` |
//! | S2 | on-node OpenMP / GPU streams (§IV-B) | `runtime::pool`, `runtime::taskgraph` |
//! | S3 | AMReX `FabArray` data + comm metadata (§III-A) | **`fab` (`MultiFab`, plans, plan cache, overlap)** |
//! | S4 | AMR hierarchy, regrid, FillPatch (§III-B/C) | `amr` |
//! | S5 | CRoCCo solver kernels + RK3 driver (§II, §III) | `core` (`crocco-solver`) |

#![warn(missing_docs)]

pub mod boxarray;
pub mod dist_overlap;
pub mod distribution;
pub mod fab;
pub mod fabcheck;
pub mod multifab;
pub mod overlap;
pub mod owned;
pub mod plan;
pub mod plan_cache;
pub mod taskcheck;
pub mod tiles;
pub mod view;

pub use boxarray::BoxArray;
pub use dist_overlap::{allgather_fabs, run_dist_rk_stage, DistSkeleton, DistStage};
pub use owned::{exchange_chunks, pack_chunk, redistribute, unpack_chunk_into};
pub use distribution::{DistributionMapping, DistributionStrategy};
pub use fab::FArrayBox;
pub use multifab::MultiFab;
pub use overlap::{
    band_slabs, run_rk_stage, run_rk_stage_with_skeleton, StageFabs, StageSkeleton, SweepPhase,
};
pub use plan::{CopyChunk, CopyPlan};
pub use plan_cache::{CachedPlan, PlanCache, PlanKey, PlanOp};
pub use taskcheck::{
    dist_rank_schedule, stage_spec, verify_dist, verify_stage, FabIds, VerifyReport,
};
pub use tiles::{tile_boxes, tiled_work_list, TileItem, DEFAULT_TILE};
pub use view::{with_rw, FabRd, FabRw, FabView};
