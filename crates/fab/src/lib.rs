//! Field containers for block-structured AMR.
//!
//! This crate reproduces the AMReX data layer that CRoCCo is hosted on in the
//! paper:
//!
//! * [`FArrayBox`] — a multi-component double-precision array over one
//!   [`IndexBox`](crocco_geometry::IndexBox) (the per-patch container),
//! * [`BoxArray`] — the list of patch boxes at one AMR level,
//! * [`DistributionMapping`] — the box → rank ownership map with the Z-Morton
//!   space-filling-curve balancer the paper uses (plus round-robin and
//!   knapsack alternatives for the ablation study),
//! * [`MultiFab`] — the distributed multi-patch field: the paper stores the
//!   primitive variables, the 5-component conservative update `dU`, the
//!   3-component curvilinear coordinates, and the 27-component grid metrics
//!   each in one of these,
//! * [`plan`] — communication *plans*: the exact point-to-point message lists
//!   behind `FillBoundary` and `ParallelCopy`, which both execute the data
//!   motion locally and feed the simulated Summit network model.

pub mod boxarray;
pub mod distribution;
pub mod fab;
pub mod fabcheck;
pub mod multifab;
pub mod plan;
pub mod plan_cache;
pub mod tiles;

pub use boxarray::BoxArray;
pub use distribution::{DistributionMapping, DistributionStrategy};
pub use fab::FArrayBox;
pub use multifab::MultiFab;
pub use plan::{CopyChunk, CopyPlan};
pub use plan_cache::{CachedPlan, PlanCache, PlanKey, PlanOp};
pub use tiles::{tile_boxes, tiled_work_list, TileItem, DEFAULT_TILE};
