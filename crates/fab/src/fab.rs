//! `FArrayBox`: the per-patch multi-component field array.

use crocco_geometry::{IndexBox, IntVect};
use std::fmt;

/// A multi-component, double-precision field over one index box — the AMReX
/// `FArrayBox` that every CRoCCo kernel reads and writes.
///
/// Storage is struct-of-arrays, Fortran order within each component: `x`
/// varies fastest, then `y`, then `z`, and components are outermost. This is
/// the AMReX layout the paper's kernels assume, and it makes per-component
/// slices contiguous (good for the WENO sweeps).
#[derive(Clone, PartialEq)]
pub struct FArrayBox {
    bx: IndexBox,
    ncomp: usize,
    data: Vec<f64>,
}

impl FArrayBox {
    /// Allocates a zero-initialized fab over `bx` with `ncomp` components.
    ///
    /// # Panics
    /// Panics if `bx` is empty or `ncomp` is zero.
    pub fn new(bx: IndexBox, ncomp: usize) -> Self {
        assert!(!bx.is_empty(), "cannot allocate a fab over an empty box");
        assert!(ncomp > 0, "fab needs at least one component");
        let n = bx.num_points() as usize * ncomp;
        FArrayBox {
            bx,
            ncomp,
            data: vec![0.0; n],
        }
    }

    /// Allocates and fills every component with `value`.
    pub fn filled(bx: IndexBox, ncomp: usize, value: f64) -> Self {
        let mut f = FArrayBox::new(bx, ncomp);
        f.data.fill(value);
        f
    }

    /// A metadata-only placeholder: carries a real box and component count but
    /// holds no data. Owned-data `MultiFab`s use this for patches assigned to
    /// other ranks, so box geometry stays queryable everywhere while storage
    /// is O(owned cells) per rank. Any `get`/`set` on an unallocated fab
    /// panics (slice index out of bounds).
    ///
    /// # Panics
    /// Panics if `bx` is empty or `ncomp` is zero.
    pub fn unallocated(bx: IndexBox, ncomp: usize) -> Self {
        assert!(!bx.is_empty(), "cannot describe a fab over an empty box");
        assert!(ncomp > 0, "fab needs at least one component");
        FArrayBox {
            bx,
            ncomp,
            data: Vec::new(),
        }
    }

    /// `false` for metadata-only placeholders built by
    /// [`FArrayBox::unallocated`]; `true` for every fab that owns storage.
    #[inline]
    pub fn is_allocated(&self) -> bool {
        !self.data.is_empty()
    }

    /// The valid-plus-ghost box this fab covers.
    #[inline]
    pub fn bx(&self) -> IndexBox {
        self.bx
    }

    /// Number of components.
    #[inline]
    pub fn ncomp(&self) -> usize {
        self.ncomp
    }

    /// Raw data slice (all components).
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw data slice (all components).
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Flat offset of `(p, comp)`.
    ///
    /// Hot path for every kernel: kept branch-free; bounds are debug-asserted
    /// and the final slice index is checked by Rust as usual.
    #[inline]
    pub fn offset(&self, p: IntVect, comp: usize) -> usize {
        debug_assert!(self.bx.contains(p), "{p:?} outside fab box {:?}", self.bx);
        debug_assert!(comp < self.ncomp);
        let lo = self.bx.lo();
        let s = self.bx.size();
        let (nx, ny) = (s[0] as usize, s[1] as usize);
        let i = (p[0] - lo[0]) as usize;
        let j = (p[1] - lo[1]) as usize;
        let k = (p[2] - lo[2]) as usize;
        ((comp * s[2] as usize + k) * ny + j) * nx + i
    }

    /// Reads one value.
    #[inline]
    pub fn get(&self, p: IntVect, comp: usize) -> f64 {
        self.data[self.offset(p, comp)]
    }

    /// Writes one value.
    #[inline]
    pub fn set(&mut self, p: IntVect, comp: usize, v: f64) {
        let o = self.offset(p, comp);
        self.data[o] = v;
    }

    /// Adds `v` to one value.
    #[inline]
    pub fn add(&mut self, p: IntVect, comp: usize, v: f64) {
        let o = self.offset(p, comp);
        self.data[o] += v;
    }

    /// Contiguous x-row of `len` values starting at `p` in component `comp`.
    /// Rows are the unit of flat iteration: x varies fastest, so a row is one
    /// `memcpy`/vectorizable span.
    #[inline]
    pub fn row(&self, p: IntVect, comp: usize, len: usize) -> &[f64] {
        debug_assert!(p[0] + len as i64 - 1 <= self.bx.hi()[0], "row leaves box");
        let o = self.offset(p, comp);
        &self.data[o..o + len]
    }

    /// Mutable contiguous x-row (see [`FArrayBox::row`]).
    #[inline]
    pub fn row_mut(&mut self, p: IntVect, comp: usize, len: usize) -> &mut [f64] {
        debug_assert!(p[0] + len as i64 - 1 <= self.bx.hi()[0], "row leaves box");
        let o = self.offset(p, comp);
        &mut self.data[o..o + len]
    }

    /// Contiguous slice of one component.
    pub fn comp(&self, comp: usize) -> &[f64] {
        let n = self.bx.num_points() as usize;
        &self.data[comp * n..(comp + 1) * n]
    }

    /// Mutable contiguous slice of one component.
    pub fn comp_mut(&mut self, comp: usize) -> &mut [f64] {
        let n = self.bx.num_points() as usize;
        &mut self.data[comp * n..(comp + 1) * n]
    }

    /// Fills every component with `value` over the whole fab box.
    pub fn fill(&mut self, value: f64) {
        self.data.fill(value);
    }

    /// Fills `comp` with `value` over `region ∩ self.bx()`.
    pub fn fill_region(&mut self, region: IndexBox, comp: usize, value: f64) {
        let r = self.bx.intersection(&region);
        for p in r.cells() {
            self.set(p, comp, value);
        }
    }

    /// Copies `ncomp` components starting at (`src_comp` → `dst_comp`) from
    /// `src` over `region`, which must be contained in both fabs' boxes.
    pub fn copy_from(
        &mut self,
        src: &FArrayBox,
        region: IndexBox,
        src_comp: usize,
        dst_comp: usize,
        ncomp: usize,
    ) {
        debug_assert!(src.bx.contains_box(&region));
        debug_assert!(self.bx.contains_box(&region));
        for c in 0..ncomp {
            for p in region.cells() {
                let v = src.get(p, src_comp + c);
                self.set(p, dst_comp + c, v);
            }
        }
    }

    /// Copies from `src` shifted by `shift`: `self[p] = src[p - shift]` over
    /// `region` (in destination index space). Used for periodic ghost fills.
    pub fn copy_shifted_from(
        &mut self,
        src: &FArrayBox,
        region: IndexBox,
        shift: IntVect,
        ncomp: usize,
    ) {
        if region.is_empty() {
            return;
        }
        debug_assert!(self.bx.contains_box(&region));
        debug_assert!(src.bx.contains_box(&region.shift(-shift)));
        // Row-wise: both layouts are x-fastest, so each (j, k) row is one
        // contiguous span on both sides.
        let nx = region.size()[0] as usize;
        for c in 0..ncomp {
            for k in region.lo()[2]..=region.hi()[2] {
                for j in region.lo()[1]..=region.hi()[1] {
                    let dp = IntVect::new(region.lo()[0], j, k);
                    let srow = src.offset(dp - shift, c);
                    let drow = self.offset(dp, c);
                    self.data[drow..drow + nx]
                        .copy_from_slice(&src.data[srow..srow + nx]);
                }
            }
        }
    }

    /// `self = a·self + b·other` over the intersection of both boxes, for all
    /// components. This is the low-storage RK update primitive.
    pub fn lincomb(&mut self, a: f64, b: f64, other: &FArrayBox) {
        debug_assert_eq!(self.ncomp, other.ncomp);
        if self.bx == other.bx {
            for (x, y) in self.data.iter_mut().zip(other.data.iter()) {
                *x = a * *x + b * *y;
            }
            return;
        }
        let region = self.bx.intersection(&other.bx);
        if region.is_empty() {
            return;
        }
        let nx = region.size()[0] as usize;
        for c in 0..self.ncomp {
            for k in region.lo()[2]..=region.hi()[2] {
                for j in region.lo()[1]..=region.hi()[1] {
                    let p = IntVect::new(region.lo()[0], j, k);
                    let srow = other.offset(p, c);
                    let drow = self.offset(p, c);
                    for (x, y) in self.data[drow..drow + nx]
                        .iter_mut()
                        .zip(&other.data[srow..srow + nx])
                    {
                        *x = a * *x + b * *y;
                    }
                }
            }
        }
    }

    /// Sum of `comp` over `region ∩ self.bx()`.
    pub fn sum_region(&self, region: IndexBox, comp: usize) -> f64 {
        let r = self.bx.intersection(&region);
        r.cells().map(|p| self.get(p, comp)).sum()
    }

    /// Max of `comp` over `region ∩ self.bx()` (−∞ when empty).
    pub fn max_region(&self, region: IndexBox, comp: usize) -> f64 {
        let r = self.bx.intersection(&region);
        r.cells()
            .map(|p| self.get(p, comp))
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Min of `comp` over `region ∩ self.bx()` (+∞ when empty).
    pub fn min_region(&self, region: IndexBox, comp: usize) -> f64 {
        let r = self.bx.intersection(&region);
        r.cells()
            .map(|p| self.get(p, comp))
            .fold(f64::INFINITY, f64::min)
    }

    /// Squared L2 norm of `comp` over `region ∩ self.bx()`.
    pub fn norm2_sq_region(&self, region: IndexBox, comp: usize) -> f64 {
        let r = self.bx.intersection(&region);
        r.cells().map(|p| self.get(p, comp).powi(2)).sum()
    }

    /// `true` if any value in `region` is NaN or infinite — the validation
    /// hook used by the driver's correctness checks (§IV-C).
    pub fn has_nonfinite(&self, region: IndexBox) -> bool {
        let r = self.bx.intersection(&region);
        for c in 0..self.ncomp {
            for p in r.cells() {
                if !self.get(p, c).is_finite() {
                    return true;
                }
            }
        }
        false
    }
}

impl fmt::Debug for FArrayBox {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FArrayBox{{{:?} x{}}}", self.bx, self.ncomp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bx(nx: i64, ny: i64, nz: i64) -> IndexBox {
        IndexBox::from_extents(nx, ny, nz)
    }

    #[test]
    fn layout_is_x_fastest_component_outermost() {
        let f = FArrayBox::new(bx(4, 3, 2), 2);
        assert_eq!(f.offset(IntVect::new(0, 0, 0), 0), 0);
        assert_eq!(f.offset(IntVect::new(1, 0, 0), 0), 1);
        assert_eq!(f.offset(IntVect::new(0, 1, 0), 0), 4);
        assert_eq!(f.offset(IntVect::new(0, 0, 1), 0), 12);
        assert_eq!(f.offset(IntVect::new(0, 0, 0), 1), 24);
    }

    #[test]
    fn get_set_roundtrip_with_offset_box() {
        let b = IndexBox::new(IntVect::new(-2, 5, 1), IntVect::new(1, 7, 3));
        let mut f = FArrayBox::new(b, 3);
        let mut v = 0.0;
        for c in 0..3 {
            for p in b.cells() {
                f.set(p, c, v);
                v += 1.0;
            }
        }
        let mut expect = 0.0;
        for c in 0..3 {
            for p in b.cells() {
                assert_eq!(f.get(p, c), expect);
                expect += 1.0;
            }
        }
    }

    #[test]
    fn component_slices_are_disjoint_views() {
        let mut f = FArrayBox::new(bx(2, 2, 2), 2);
        f.comp_mut(1).fill(7.0);
        assert!(f.comp(0).iter().all(|&v| v == 0.0));
        assert!(f.comp(1).iter().all(|&v| v == 7.0));
    }

    #[test]
    fn copy_from_respects_region_and_comps() {
        let b = bx(4, 4, 4);
        let src = FArrayBox::filled(b, 2, 3.5);
        let mut dst = FArrayBox::new(b, 3);
        let region = IndexBox::new(IntVect::new(1, 1, 1), IntVect::new(2, 2, 2));
        dst.copy_from(&src, region, 1, 2, 1);
        assert_eq!(dst.get(IntVect::new(1, 1, 1), 2), 3.5);
        assert_eq!(dst.get(IntVect::new(0, 0, 0), 2), 0.0);
        assert_eq!(dst.get(IntVect::new(1, 1, 1), 0), 0.0);
    }

    #[test]
    fn copy_shifted_implements_periodic_wrap() {
        let b = bx(4, 1, 1);
        let mut src = FArrayBox::new(b, 1);
        for (i, p) in b.cells().enumerate() {
            src.set(p, 0, i as f64);
        }
        // Ghost region to the right of the box, filled from the left edge.
        let ghost = IndexBox::new(IntVect::new(4, 0, 0), IntVect::new(5, 0, 0));
        let mut dst = FArrayBox::new(b.grow_hi(0, 2), 1);
        dst.copy_shifted_from(&src, ghost, IntVect::new(4, 0, 0), 1);
        assert_eq!(dst.get(IntVect::new(4, 0, 0), 0), 0.0);
        assert_eq!(dst.get(IntVect::new(5, 0, 0), 0), 1.0);
    }

    #[test]
    fn lincomb_fast_and_slow_paths_agree() {
        let b = bx(3, 3, 3);
        let mut a1 = FArrayBox::filled(b, 2, 2.0);
        let other = FArrayBox::filled(b, 2, 4.0);
        a1.lincomb(0.5, 0.25, &other);
        assert!(a1.data().iter().all(|&v| v == 2.0));

        // Slow path: different (overlapping) boxes.
        let b2 = IndexBox::new(IntVect::new(1, 1, 1), IntVect::new(3, 3, 3));
        let mut a2 = FArrayBox::filled(b, 2, 2.0);
        let other2 = FArrayBox::filled(b2, 2, 4.0);
        a2.lincomb(0.5, 0.25, &other2);
        assert_eq!(a2.get(IntVect::new(0, 0, 0), 0), 2.0); // untouched
        assert_eq!(a2.get(IntVect::new(1, 1, 1), 0), 2.0); // 0.5*2+0.25*4
        assert_eq!(a2.get(IntVect::new(2, 2, 2), 1), 2.0);
    }

    #[test]
    fn reductions() {
        let b = bx(2, 2, 1);
        let mut f = FArrayBox::new(b, 1);
        for (i, p) in b.cells().enumerate() {
            f.set(p, 0, i as f64 - 1.0); // -1, 0, 1, 2
        }
        assert_eq!(f.sum_region(b, 0), 2.0);
        assert_eq!(f.max_region(b, 0), 2.0);
        assert_eq!(f.min_region(b, 0), -1.0);
        assert_eq!(f.norm2_sq_region(b, 0), 1.0 + 0.0 + 1.0 + 4.0);
    }

    #[test]
    fn nonfinite_detection() {
        let b = bx(2, 2, 2);
        let mut f = FArrayBox::new(b, 1);
        assert!(!f.has_nonfinite(b));
        f.set(IntVect::new(1, 1, 1), 0, f64::NAN);
        assert!(f.has_nonfinite(b));
        // Outside the probed region it is not reported.
        let small = IndexBox::new(IntVect::ZERO, IntVect::ZERO);
        assert!(!f.has_nonfinite(small));
    }

    #[test]
    #[should_panic]
    fn empty_box_rejected() {
        FArrayBox::new(IndexBox::EMPTY, 1);
    }

    #[test]
    fn unallocated_keeps_metadata_but_no_storage() {
        let b = bx(4, 3, 2);
        let f = FArrayBox::unallocated(b, 5);
        assert_eq!(f.bx(), b);
        assert_eq!(f.ncomp(), 5);
        assert!(!f.is_allocated());
        assert!(f.data().is_empty());
        assert!(FArrayBox::new(b, 5).is_allocated());
    }

    #[test]
    #[should_panic]
    fn unallocated_read_panics() {
        let f = FArrayBox::unallocated(bx(2, 2, 2), 1);
        f.get(IntVect::ZERO, 0);
    }
}
