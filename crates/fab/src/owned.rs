//! Owned-data exchange primitives: chunked point-to-point data motion for
//! MultiFabs that allocate only their rank's patches.
//!
//! The replicated-data distributed path (PR 4) kept every rank holding the
//! full hierarchy and re-replicated after each stage with
//! [`crate::dist_overlap::allgather_fabs`]. The owned-data path allocates
//! O(owned cells) per rank ([`MultiFab::new_owned`]) and moves *only the
//! plan-enumerated overlap chunks* across ranks. This module supplies the
//! safe building blocks:
//!
//! * [`pack_chunk`] / [`unpack_chunk_into`] — one [`CopyChunk`] as
//!   little-endian `f64` bytes, component-major in `region.cells()` order:
//!   exactly the wire format of the RK-stage halo payloads
//!   (`dist_overlap::pack_chunk_raw`), so `f64 → bytes → f64` round-trips
//!   bitwise and a remote unpack equals the local
//!   [`FArrayBox::copy_shifted_from`] it replaces.
//! * [`exchange_chunks`] — the fenced all-sends-first / then-receive
//!   discipline over an arbitrary chunk list, returning landed payloads
//!   keyed by chunk index. Used by the owned FillPatch coarse gather and
//!   the owned regrid interpolation gather.
//! * [`redistribute`] — executes a ParallelCopy plan between two owned
//!   MultiFabs over different BoxArrays/DistributionMappings: the data
//!   redistribution step of a distributed regrid (old mapping → new
//!   mapping), replacing re-replication.
//!
//! All functions take a [`GroupEndpoint`], so chunk ranks are *logical*
//! group ranks and the same code runs unchanged after a chaos recovery
//! shrinks the communicator. Tags are caller-supplied via a `mktag(chunk
//! index)` closure — callers compose them from
//! [`crocco_runtime::tags::owned`] sub-spaces so concurrent exchanges
//! (state vs coordinates, gather vs redistribution) never collide.
//!
//! Everything here is safe code: payloads are built through
//! [`FArrayBox::get`]/[`FArrayBox::set`], and the sequential fenced
//! structure needs no raw views. Deadlock freedom follows from the
//! transport's buffered sends: every rank first enqueues all its outgoing
//! chunks, so the blocking waits always have matching traffic in flight.

use crate::fab::FArrayBox;
use crate::multifab::MultiFab;
use crate::plan::{CopyChunk, CopyPlan};
use bytes::Bytes;
use crocco_runtime::cluster::CommError;
use crocco_runtime::GroupEndpoint;
use std::collections::HashMap;

/// Serializes one chunk out of `src`: component-major, then
/// `chunk.region.cells()` order, each source cell `p - shift` as
/// little-endian `f64` bytes. Same wire format as the RK-stage halo
/// payloads; inverse of [`unpack_chunk_into`].
pub fn pack_chunk(src: &FArrayBox, chunk: &CopyChunk, ncomp: usize) -> Bytes {
    let mut out = Vec::with_capacity((chunk.region.num_points() as usize) * ncomp * 8);
    for c in 0..ncomp {
        for p in chunk.region.cells() {
            out.extend_from_slice(&src.get(p - chunk.shift, c).to_le_bytes());
        }
    }
    Bytes::from(out)
}

/// Writes a [`pack_chunk`] payload into `dst` over `region` (destination
/// index space, same cell order as the pack). Bitwise-identical to the
/// local `dst.copy_shifted_from(src, region, shift, ncomp)` the payload
/// replaces.
///
/// # Panics
/// Panics if the payload does not carry exactly
/// `region.num_points() * ncomp` doubles.
pub fn unpack_chunk_into(
    dst: &mut FArrayBox,
    region: crocco_geometry::IndexBox,
    ncomp: usize,
    payload: &[u8],
) {
    assert_eq!(
        payload.len(),
        region.num_points() as usize * ncomp * 8,
        "owned-exchange payload size mismatch for region {region:?}"
    );
    let mut words = payload.chunks_exact(8);
    for c in 0..ncomp {
        for p in region.cells() {
            let w = words.next().expect("payload shorter than region");
            dst.set(p, c, f64::from_le_bytes(w.try_into().expect("8-byte word")));
        }
    }
}

/// Moves the rank-crossing chunks of `chunks` between group members: this
/// rank packs and sends every chunk it is the source of, and receives every
/// chunk destined for it, returning the landed payloads keyed by *chunk
/// index* in `chunks`. Purely local chunks (`src_rank == dst_rank`) are
/// ignored — callers copy those directly from their own fabs.
///
/// Every group member must call this with the identical `chunks` list (all
/// ranks hold replicated plan metadata). `src` needs storage only for the
/// patches this rank sends from — an owned MultiFab is sufficient.
///
/// A detected fault (dead member, starved receive) surfaces as a typed
/// [`CommError`]; the caller rolls back to a checkpoint.
pub fn exchange_chunks(
    src: &MultiFab,
    chunks: &[CopyChunk],
    ncomp: usize,
    ep: &GroupEndpoint<'_>,
    mktag: &dyn Fn(usize) -> u64,
) -> Result<HashMap<usize, Bytes>, CommError> {
    let rank = ep.rank();
    // All sends first (buffered), so the blocking waits below always have
    // matching traffic in flight on every rank.
    for (k, c) in chunks.iter().enumerate() {
        if c.src_rank == rank && c.dst_rank != rank && !c.region.is_empty() {
            ep.send(c.dst_rank, mktag(k), pack_chunk(src.fab(c.src_id), c, ncomp));
        }
    }
    let handles: Vec<(usize, crocco_runtime::RecvHandle)> = chunks
        .iter()
        .enumerate()
        .filter(|(_, c)| c.dst_rank == rank && c.src_rank != rank && !c.region.is_empty())
        .map(|(k, c)| (k, ep.irecv(c.src_rank, mktag(k))))
        .collect();
    let mut landed = HashMap::with_capacity(handles.len());
    for (k, h) in &handles {
        landed.insert(*k, ep.wait(h)?);
    }
    Ok(landed)
}

/// Executes a ParallelCopy `plan` from owned `src` into owned `dst` (two
/// different BoxArrays/DistributionMappings over the same domain): the data
/// redistribution of a distributed regrid. Local chunks copy through
/// [`FArrayBox::copy_shifted_from`]; remote chunks travel as
/// [`pack_chunk`] payloads. Chunks are applied in plan order per
/// destination, so the result is bitwise-identical to the replicated
/// `parallel_copy_from` executing the same plan.
pub fn redistribute(
    src: &MultiFab,
    dst: &mut MultiFab,
    plan: &CopyPlan,
    ep: &GroupEndpoint<'_>,
    mktag: &dyn Fn(usize) -> u64,
) -> Result<(), CommError> {
    assert_eq!(src.ncomp(), dst.ncomp(), "redistribute component mismatch");
    let ncomp = plan.ncomp;
    let rank = ep.rank();
    let landed = exchange_chunks(src, plan.chunks.as_slice(), ncomp, ep, mktag)?;
    for (k, c) in plan.chunks.iter().enumerate() {
        if c.dst_rank != rank || c.region.is_empty() {
            continue;
        }
        if c.src_rank == rank {
            dst.fab_mut(c.dst_id)
                .copy_shifted_from(src.fab(c.src_id), c.region, c.shift, ncomp);
        } else {
            let payload = landed.get(&k).expect("remote chunk was received");
            unpack_chunk_into(dst.fab_mut(c.dst_id), c.region, ncomp, payload);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boxarray::BoxArray;
    use crate::distribution::{DistributionMapping, DistributionStrategy};
    use crate::plan::parallel_copy_plan;
    use crocco_geometry::decompose::ChopParams;
    use crocco_geometry::{IndexBox, ProblemDomain};
    use crocco_runtime::{tags, GroupEndpoint, LocalCluster};
    use std::sync::Arc;

    fn fill_linear(mf: &mut MultiFab) {
        let ncomp = mf.ncomp();
        for i in 0..mf.nfabs() {
            if !mf.is_allocated(i) {
                continue;
            }
            let vb = mf.valid_box(i);
            let fab = mf.fab_mut(i);
            for c in 0..ncomp {
                for p in vb.cells() {
                    fab.set(
                        p,
                        c,
                        (c as f64) * 1e6 + (p[0] * 10_000 + p[1] * 100 + p[2]) as f64,
                    );
                }
            }
        }
    }

    #[test]
    fn pack_unpack_matches_local_copy_bitwise() {
        let domain = ProblemDomain::non_periodic(IndexBox::from_extents(16, 8, 8));
        let ba = Arc::new(BoxArray::decompose(domain.bx, ChopParams::new(4, 8)));
        let dm = Arc::new(DistributionMapping::new(
            &ba,
            2,
            DistributionStrategy::RoundRobin,
        ));
        let mut mf = MultiFab::new(ba, dm, 2, 2);
        fill_linear(&mut mf);
        let plan = mf.fill_boundary(&domain);
        let chunk = plan.chunks.iter().find(|c| !c.region.is_empty()).unwrap();
        let payload = pack_chunk(mf.fab(chunk.src_id), chunk, 2);
        let mut direct = mf.fab(chunk.dst_id).clone();
        direct.copy_shifted_from(mf.fab(chunk.src_id), chunk.region, chunk.shift, 2);
        let mut via_bytes = mf.fab(chunk.dst_id).clone();
        unpack_chunk_into(&mut via_bytes, chunk.region, 2, &payload);
        assert_eq!(via_bytes.data(), direct.data());
    }

    /// Owned redistribution across a mapping change reproduces the
    /// replicated `parallel_copy_from` bitwise on every owned patch.
    #[test]
    fn owned_redistribution_matches_replicated_parallel_copy() {
        let nranks = 2usize;
        let domain = ProblemDomain::new(IndexBox::from_extents(16, 16, 8), [false, false, true]);
        let src_ba = Arc::new(BoxArray::decompose(domain.bx, ChopParams::new(4, 8)));
        let src_dm = Arc::new(DistributionMapping::new(
            &src_ba,
            nranks,
            DistributionStrategy::RoundRobin,
        ));
        let dst_ba = Arc::new(BoxArray::decompose(domain.bx, ChopParams::new(8, 8)));
        let dst_dm = Arc::new(DistributionMapping::new(
            &dst_ba,
            nranks,
            DistributionStrategy::MortonSfc,
        ));

        // Replicated oracle.
        let mut oracle_src = MultiFab::new(src_ba.clone(), src_dm.clone(), 2, 1);
        fill_linear(&mut oracle_src);
        let mut oracle_dst = MultiFab::new(dst_ba.clone(), dst_dm.clone(), 2, 1);
        oracle_dst.parallel_copy_from(&oracle_src, &domain);

        let results = LocalCluster::run(nranks, |ep| {
            let gep = GroupEndpoint::full(&ep);
            let rank = gep.rank();
            let mut src = MultiFab::new_owned(src_ba.clone(), src_dm.clone(), 2, 1, rank);
            fill_linear(&mut src);
            let mut dst = MultiFab::new_owned(dst_ba.clone(), dst_dm.clone(), 2, 1, rank);
            let plan =
                parallel_copy_plan(&src_ba, &src_dm, &dst_ba, &dst_dm, &domain, 1, 2);
            redistribute(&src, &mut dst, &plan, &gep, &|k| {
                tags::owned(tags::OWNED_REDIST, 11, 0, k)
            })
            .expect("fault-free redistribution");
            dst
        });
        for (rank, dst) in results.iter().enumerate() {
            for i in 0..dst.nfabs() {
                if dst.is_allocated(i) {
                    assert_eq!(
                        dst.fab(i).data(),
                        oracle_dst.fab(i).data(),
                        "rank {rank} patch {i} diverged"
                    );
                } else {
                    assert_ne!(dst_dm.owner(i), rank);
                }
            }
        }
        // Memory really is owned-sized.
        let full = MultiFab::new(dst_ba.clone(), dst_dm.clone(), 2, 1).local_data_bytes();
        assert!(results.iter().all(|d| d.local_data_bytes() < full));
    }

    /// A ghost chunk shifted across a periodic boundary survives the wire.
    #[test]
    fn exchange_handles_periodic_shift_chunks() {
        let domain = ProblemDomain::new(IndexBox::from_extents(8, 8, 8), [true, true, true]);
        let ba = Arc::new(BoxArray::decompose(domain.bx, ChopParams::new(4, 8)));
        let dm = Arc::new(DistributionMapping::new(
            &ba,
            2,
            DistributionStrategy::RoundRobin,
        ));
        let mut reference = MultiFab::new(ba.clone(), dm.clone(), 1, 2);
        fill_linear(&mut reference);
        reference.fill_boundary(&domain);

        let ba2 = ba.clone();
        let dm2 = dm.clone();
        let results = LocalCluster::run(2, |ep| {
            let gep = GroupEndpoint::full(&ep);
            let rank = gep.rank();
            let mut mf = MultiFab::new_owned(ba2.clone(), dm2.clone(), 1, 2, rank);
            fill_linear(&mut mf);
            let plan = crate::plan::fill_boundary_plan(&ba2, &dm2, &domain, 2, 1);
            let landed = exchange_chunks(&mf, &plan.chunks, 1, &gep, &|k| {
                tags::owned(tags::OWNED_GATHER, 3, 0, k)
            })
            .expect("fault-free exchange");
            for (k, c) in plan.chunks.iter().enumerate() {
                if c.dst_rank != rank || c.region.is_empty() {
                    continue;
                }
                if c.src_rank == rank {
                    let src = mf.fab(c.src_id).clone();
                    mf.fab_mut(c.dst_id)
                        .copy_shifted_from(&src, c.region, c.shift, 1);
                } else {
                    unpack_chunk_into(mf.fab_mut(c.dst_id), c.region, 1, &landed[&k]);
                }
            }
            mf
        });
        for (rank, mf) in results.iter().enumerate() {
            for i in 0..mf.nfabs() {
                if mf.is_allocated(i) {
                    assert_eq!(
                        mf.fab(i).data(),
                        reference.fab(i).data(),
                        "rank {rank} patch {i}"
                    );
                }
            }
        }
    }
}
