//! Barrier-free RK-stage execution: one dependency task graph per stage.
//!
//! The barrier path runs four phased loops per stage — halo-plan execution,
//! boundary-condition fill, kernel sweep, low-storage update — each a hard
//! fork-join over all patches. This module replaces them with a single
//! [`TaskGraph`] built from the *cached* communication plan
//! ([`CachedPlan`], DESIGN.md §4b-bis), so that per-patch halo work overlaps
//! with interior kernel sweeps (DESIGN.md §4e):
//!
//! ```text
//!   halo[i]     = pre_halo(i) → FillBoundary chunks into i → bc_fill(i)
//!   interior[i] = sweep(i, Interior)                  (no dependencies)
//!   boundary[i] = sweep(i, BoundaryBand)              after halo[i], interior[i]
//!   update[i]   = update(i)    after boundary[i] and halo[j] for every j
//!                              whose halo chunks *read* patch i
//! ```
//!
//! Only patch-boundary tasks fence; the global per-stage barrier disappears.
//! The final dependency set — `update[i]` waiting for every halo *reader* of
//! patch `i` — is derived from the plan's chunk list (`src_id == i`), which
//! is exactly the information the plan cache memoizes.
//!
//! # Safety argument
//!
//! All concurrent access goes through raw views ([`FabRd`]/[`FabRw`],
//! `copy_chunk_raw`) so no `&`/`&mut FArrayBox` is materialized while
//! another task touches the same fab. Disjointness of *unordered* tasks:
//!
//! * two halo tasks write different patches' ghost shells and read only
//!   valid cells of source patches (a `FillBoundary` plan invariant, proven
//!   per-execution under `fabcheck`); coarse-fine interpolation in
//!   `pre_halo` writes only regions of patch `i` uncovered by fine data;
//! * `interior[i]` reads only patch `i`'s valid cells (the sweep region is
//!   shrunk by the ghost width so the widest stencil stays inside valid
//!   data) and writes only `rhs[i]`, which no other task touches until
//!   `boundary[i]`;
//! * `update[i]` is, by its dependency set, the *last* task to touch patch
//!   `i`'s state, `du` and `rhs` fabs, so it may safely materialize
//!   `&mut FArrayBox` for the exact per-patch arithmetic of the barrier
//!   path.
//!
//! Every dependency edge is a happens-before edge (the executor's ready
//! queue hands tasks over under a mutex), so ordered accesses never race.

// The raw-view modules are the allowlisted unsafe surface of the workspace
// (`cargo xtask lint`, DESIGN.md §4d).
#![allow(unsafe_code)]

use crate::fab::FArrayBox;
use crate::multifab::{copy_chunk_raw, MultiFab, RawFab};
use crate::plan_cache::CachedPlan;
use crate::taskcheck::{stage_spec, FabIds};
use crate::view::{FabRd, FabRw};
use crocco_geometry::IndexBox;
use crocco_runtime::taskcheck::record_access;
use crocco_runtime::{Schedule, TaskGraph};

/// Which part of a patch a kernel sweep covers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SweepPhase {
    /// The ghost-independent core: the valid box shrunk by the ghost width.
    /// Runs with no dependencies. The sweep must also zero the patch's RHS
    /// fab first — the phase always runs, even when the core is empty.
    Interior,
    /// The boundary band (valid minus interior), whose stencils reach into
    /// ghost cells. Runs after the patch's halo task.
    BoundaryBand,
}

/// The per-level fabs one RK stage reads and writes.
pub struct StageFabs<'a> {
    /// Conserved state: ghosts filled by halo tasks, valid cells updated
    /// last.
    pub state: &'a mut MultiFab,
    /// Low-storage RK accumulator (no ghosts).
    pub du: &'a mut MultiFab,
    /// Per-patch RHS scratch, one fab per patch.
    pub rhs: &'a mut [FArrayBox],
}

/// List of raw fab views shareable across worker threads.
struct RawList<'a>(&'a [RawFab]);
// SAFETY: the raw pointers inside are dereferenced only inside graph tasks
// whose conflicting accesses are ordered by dependency edges (see the
// module-level safety argument); sending the list to workers cannot itself
// race.
unsafe impl Send for RawList<'_> {}
// SAFETY: shared references expose only `Copy` geometry and raw pointers;
// all dereferences are governed by the task-graph ordering above.
unsafe impl Sync for RawList<'_> {}

impl RawList<'_> {
    #[inline]
    fn get(&self, i: usize) -> &RawFab {
        &self.0[i]
    }
}

/// Base pointer of a fab slice, shareable across worker threads.
#[derive(Clone, Copy)]
struct BasePtr(*mut FArrayBox);
// SAFETY: the pointer is dereferenced only by `update` tasks, each of which
// is the unique last task touching its element (module-level argument).
unsafe impl Send for BasePtr {}
// SAFETY: as for `Send` — shared copies never race because each element is
// touched by exactly one ordered task chain.
unsafe impl Sync for BasePtr {}

impl BasePtr {
    // Accessor (rather than direct `.0` field access in the task closures):
    // edition-2021 closures capture disjoint fields, and capturing the bare
    // `*mut` would bypass the `Send`/`Sync` wrapper.
    #[inline]
    fn get(self) -> *mut FArrayBox {
        self.0
    }
}

/// The stage-invariant structure of a level's RK-stage graph: which chunk
/// range fills each patch's ghosts and which patches read each patch — the
/// dependency edges. Derived from a [`CachedPlan`] once per (grids, plan)
/// and memoized in the plan cache (`PlanOp::Aux`), so per-stage graph
/// construction re-binds only the RK coefficients instead of re-deriving
/// the topology (ROADMAP "skeleton cache" item, DESIGN.md §4f).
#[derive(Clone, Debug, Default)]
pub struct StageSkeleton {
    /// Per destination patch: the contiguous `[s, e)` chunk range of the
    /// plan that writes its ghost shell (`(0, 0)` when none).
    pub chunk_range: Vec<(usize, usize)>,
    /// Per source patch: deduplicated destination patches whose halo chunks
    /// read it (the update fences).
    pub readers: Vec<Vec<usize>>,
}

impl StageSkeleton {
    /// Derives the skeleton of `fb` for a level of `npatches` patches.
    pub fn build(fb: &CachedPlan, npatches: usize) -> Self {
        let mut chunk_range = vec![(0usize, 0usize); npatches];
        for &(s, e) in &fb.groups {
            if s < e {
                chunk_range[fb.plan.chunks[s].dst_id] = (s, e);
            }
        }
        let mut readers: Vec<Vec<usize>> = vec![Vec::new(); npatches];
        for c in &fb.plan.chunks {
            readers[c.src_id].push(c.dst_id);
        }
        for r in &mut readers {
            r.sort_unstable();
            r.dedup();
        }
        StageSkeleton {
            chunk_range,
            readers,
        }
    }
}

/// Executes one RK stage over a level as a dependency task graph.
///
/// `fb` is the level's cached `FillBoundary` plan (resolved, not executed);
/// its chunks become the halo-copy tasks and its `src_id`s the update
/// fences. The caller supplies the physics through four closures, all
/// indexed by patch:
///
/// * `pre_halo(i, rw)` — coarse-fine FillPatch work for patch `i` (gather +
///   coarse BC + interpolation), writing only uncovered ghost regions of
///   `i`; a no-op on the base level.
/// * `bc_fill(i, rw)` — physical boundary conditions for patch `i`, writing
///   only outside-domain ghost cells of `i`.
/// * `sweep(i, u, phase, rhs)` — RHS accumulation over the phase's region
///   of patch `i`, reading `u` (this patch only) and writing `rhs`.
/// * `update(i, du, state, rhs)` — the per-patch low-storage update,
///   writing only valid cells of `state`.
///
/// Results are bitwise-identical to running fill → sweep → update under
/// barriers: every cell is written by the same operations in the same
/// per-cell order, only the inter-patch schedule changes
/// (`tests/overlap_invariance.rs` proves this end-to-end).
pub fn run_rk_stage(
    fabs: StageFabs<'_>,
    fb: &CachedPlan,
    threads: usize,
    pre_halo: &(dyn Fn(usize, &mut FabRw<'_>) + Sync),
    bc_fill: &(dyn Fn(usize, &mut FabRw<'_>) + Sync),
    sweep: &(dyn Fn(usize, FabRd<'_>, SweepPhase, &mut FArrayBox) + Sync),
    update: &(dyn Fn(usize, &mut FArrayBox, &mut FArrayBox, &FArrayBox) + Sync),
) {
    let skel = StageSkeleton::build(fb, fabs.state.nfabs());
    run_rk_stage_with_skeleton(
        fabs,
        fb,
        &skel,
        Schedule::pool(threads),
        &[],
        pre_halo,
        bc_fill,
        sweep,
        update,
    )
}

/// [`run_rk_stage`] with a pre-built (typically plan-cache-memoized)
/// [`StageSkeleton`], skipping the per-stage topology derivation, and an
/// explicit [`Schedule`] (thread pool or seeded adversarial linearization).
///
/// `extra_halo` declares per-patch read-only `(fab id, region)` pairs the
/// `pre_halo` closure touches beyond the same-level exchange — on subcycled
/// substeps, the coarse *old*-state regions the time-interpolated FillPatch
/// blends (docs/ARCHITECTURE.md §Subcycling). Each pair is added to that
/// patch's halo-task footprint and recorded for the dynamic detector, so
/// the declared schedule stays honest about every fab the stage reads.
/// Pass `&[]` when there is nothing extra; otherwise one entry per patch.
#[allow(clippy::too_many_arguments)]
pub fn run_rk_stage_with_skeleton(
    fabs: StageFabs<'_>,
    fb: &CachedPlan,
    skel: &StageSkeleton,
    sched: Schedule,
    extra_halo: &[Vec<(u64, IndexBox)>],
    pre_halo: &(dyn Fn(usize, &mut FabRw<'_>) + Sync),
    bc_fill: &(dyn Fn(usize, &mut FabRw<'_>) + Sync),
    sweep: &(dyn Fn(usize, FabRd<'_>, SweepPhase, &mut FArrayBox) + Sync),
    update: &(dyn Fn(usize, &mut FArrayBox, &mut FArrayBox, &FArrayBox) + Sync),
) {
    let n = fabs.state.nfabs();
    assert_eq!(fabs.du.nfabs(), n, "state/du patch-count mismatch");
    assert_eq!(fabs.rhs.len(), n, "state/rhs patch-count mismatch");
    assert_eq!(skel.chunk_range.len(), n, "skeleton/patch-count mismatch");
    assert!(
        extra_halo.is_empty() || extra_halo.len() == n,
        "extra halo reads must cover every patch or none"
    );
    // Under `fabcheck`, prove the halo plan alias-free exactly as the
    // barrier executor would before running it.
    fabs.state.check_plan_gated(&fb.plan, true);

    let chunk_range = &skel.chunk_range;
    let readers = &skel.readers;

    // Raw captures. Going through the slice base pointer keeps every later
    // `&mut FArrayBox` an independent derivation from the same provenance
    // root, so expired per-capture borrows are never revived. `fabs_mut()`
    // also bumps the fabcheck data epoch: after the stage the ghosts are
    // (correctly) considered stale, exactly as on the barrier path.
    let state_base = BasePtr(fabs.state.fabs_mut().as_mut_ptr());
    let state_raw: Vec<RawFab> = (0..n)
        // SAFETY: `i < n` indexes the live slice; the `&mut` is temporary
        // and expires before any task runs.
        .map(|i| unsafe { RawFab::capture(&mut *state_base.get().add(i)) })
        .collect();
    let state_list = &RawList(&state_raw);
    let du_base = BasePtr(fabs.du.fabs_mut().as_mut_ptr());
    let rhs_base = BasePtr(fabs.rhs.as_mut_ptr());

    let ncomp = fb.plan.ncomp;
    let chunks = &fb.plan.chunks;
    let mut graph = TaskGraph::new();

    // Declared footprints: the same spec derivation the static verifier
    // checks (`taskcheck::verify_stage`), instantiated with live data
    // addresses so the dynamic detector (feature `taskcheck`) can match
    // executed accesses against the declarations. Pulling each footprint at
    // `graph.len()` keeps the graph and the spec aligned by construction.
    let valid: Vec<IndexBox> = (0..n).map(|i| fabs.state.valid_box(i)).collect();
    let ids = FabIds {
        state: state_raw.iter().map(|r| r.ptr as usize as u64).collect(),
        rhs: (0..n)
            .map(|i| rhs_base.get().wrapping_add(i) as usize as u64)
            .collect(),
        du: (0..n)
            .map(|i| du_base.get().wrapping_add(i) as usize as u64)
            .collect(),
    };
    let spec = stage_spec(&fb.plan, skel, &valid, fabs.state.nghost(), &ids);

    // Halo tasks: ghost-shell production for each patch, in the same order
    // as the barrier path (coarse-fine interpolation, then same-level
    // chunks, then physical BCs — BC corner mirrors may read ghosts the
    // chunks just wrote).
    let mut halo = Vec::with_capacity(n);
    for (i, &(s, e)) in chunk_range.iter().enumerate() {
        let mut fp = spec.footprint(graph.len()).clone();
        let extras: Vec<(u64, IndexBox)> = extra_halo.get(i).cloned().unwrap_or_default();
        for &(id, bx) in &extras {
            fp = fp.reads(id, (0, ncomp), bx);
        }
        halo.push(graph.add_task_with(&[], fp, move || {
            // The time-interpolated fill inside `pre_halo` reads its extra
            // fabs below the instrumented views — record the declared reads
            // explicitly so the dynamic detector sees them.
            for &(id, bx) in &extras {
                record_access(id, false, bx);
            }
            // SAFETY: this task writes only ghost cells of patch `i` (plan
            // invariant + pre_halo/bc_fill contracts); unordered tasks read
            // only valid cells, and all later access to these cells depends
            // on this task.
            let mut rw = unsafe { FabRw::from_raw(*state_list.get(i)) };
            pre_halo(i, &mut rw);
            for c in &chunks[s..e] {
                // SAFETY: chunk regions lie in patch boxes (debug-asserted
                // inside), reads target valid cells of the source patch,
                // writes target ghost cells of patch `i` — disjoint from
                // every unordered access (module-level argument).
                unsafe {
                    copy_chunk_raw(
                        state_list.get(c.dst_id),
                        state_list.get(c.src_id),
                        c.region,
                        c.shift,
                        ncomp,
                    )
                };
            }
            bc_fill(i, &mut rw);
        }));
    }

    for (i, &halo_i) in halo.iter().enumerate() {
        let fp = spec.footprint(graph.len()).clone();
        let interior = graph.add_task_with(&[], fp, move || {
            // SAFETY: read-only view; unordered tasks write only ghost
            // cells of `i` while the interior sweep reads only valid cells.
            let u = unsafe { FabRd::from_raw(*state_list.get(i)) };
            // SAFETY: `rhs[i]` is touched only by the chain
            // interior → boundary → update, ordered by dependency edges.
            let rhs_i = unsafe { &mut *rhs_base.get().add(i) };
            sweep(i, u, SweepPhase::Interior, rhs_i);
        });
        let fp = spec.footprint(graph.len()).clone();
        let boundary = graph.add_task_with(&[halo_i, interior], fp, move || {
            // SAFETY: as for the interior task; ghost reads are ordered
            // after `halo[i]` by the dependency edge.
            let u = unsafe { FabRd::from_raw(*state_list.get(i)) };
            // SAFETY: see the interior task.
            let rhs_i = unsafe { &mut *rhs_base.get().add(i) };
            sweep(i, u, SweepPhase::BoundaryBand, rhs_i);
        });
        let mut deps = vec![boundary];
        deps.extend(readers[i].iter().map(|&d| halo[d]));
        let fp = spec.footprint(graph.len()).clone();
        let sid = ids.state[i];
        let vb = valid[i];
        graph.add_task_with(&deps, fp, move || {
            // SAFETY: every reader of patch `i`'s state (its own sweeps via
            // `boundary[i]`→`interior[i]`/`halo[i]`, and each halo task
            // copying out of `i`) is a dependency of this task, so it is
            // the unique last task touching these three fabs and may hold
            // real references.
            let st = unsafe { &mut *state_base.get().add(i) };
            // SAFETY: `du[i]` is touched by this task alone.
            let du = unsafe { &mut *du_base.get().add(i) };
            // SAFETY: the writers of `rhs[i]` are dependencies (see above).
            let rhs_i = unsafe { &*rhs_base.get().add(i) };
            // The update writes through `&mut FArrayBox`, below the
            // instrumented views — record the state write explicitly so the
            // dynamic detector sees it.
            record_access(sid, true, vb);
            update(i, du, st, rhs_i);
        });
    }

    // If graph construction and spec derivation ever disagree, the static
    // proof would be about the wrong graph — fail here, not silently.
    #[cfg(feature = "taskcheck")]
    crate::taskcheck::assert_spec_matches(&graph.schedule_spec(), &spec, "on-node RK stage");

    graph.run_schedule(sched);
}

/// Decomposes `valid` minus `interior` into disjoint axis-aligned slabs
/// (x-low/high full-face slabs, then y slabs restricted to the interior's x
/// range, then z slabs restricted to the interior's x–y range). Returns
/// `[valid]` when the interior is empty. Every band cell lands in exactly
/// one slab, so sweeping the slabs accumulates each cell's RHS exactly once
/// — in the same per-cell operation order as one sweep over `valid`.
pub fn band_slabs(valid: IndexBox, interior: IndexBox) -> Vec<IndexBox> {
    if interior.is_empty() {
        return vec![valid];
    }
    debug_assert!(valid.contains_box(&interior));
    let mut slabs = Vec::with_capacity(6);
    let mut core = valid;
    for dir in 0..3 {
        let lo_gap = interior.lo()[dir] - core.lo()[dir];
        if lo_gap > 0 {
            slabs.push(core.grow_hi(dir, lo_gap - core.size()[dir]));
        }
        let hi_gap = core.hi()[dir] - interior.hi()[dir];
        if hi_gap > 0 {
            slabs.push(core.grow_lo(dir, hi_gap - core.size()[dir]));
        }
        core = core.grow_lo(dir, -lo_gap).grow_hi(dir, -hi_gap);
    }
    debug_assert_eq!(core, interior);
    slabs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crocco_geometry::IntVect;

    #[test]
    fn band_slabs_partition_the_band() {
        let valid = IndexBox::new(IntVect::new(0, 0, 0), IntVect::new(15, 11, 9));
        let interior = valid.grow(-4);
        let slabs = band_slabs(valid, interior);
        assert_eq!(slabs.len(), 6);
        let total: u64 = slabs.iter().map(|s| s.num_points()).sum();
        assert_eq!(total, valid.num_points() - interior.num_points());
        // Disjointness: pairwise empty intersections, none meets interior.
        for (a, s) in slabs.iter().enumerate() {
            assert!(s.intersection(&interior).is_empty());
            for t in &slabs[a + 1..] {
                assert!(s.intersection(t).is_empty(), "{s:?} overlaps {t:?}");
            }
        }
    }

    #[test]
    fn band_slabs_empty_interior_returns_valid() {
        let valid = IndexBox::from_extents(6, 6, 6);
        assert_eq!(band_slabs(valid, valid.grow(-4)), vec![valid]);
    }

    #[test]
    fn band_slabs_one_sided_interior() {
        // Interior flush against the low faces: only high-side slabs.
        let valid = IndexBox::from_extents(8, 8, 8);
        let interior = IndexBox::new(IntVect::new(0, 0, 0), IntVect::new(3, 3, 3));
        let slabs = band_slabs(valid, interior);
        let total: u64 = slabs.iter().map(|s| s.num_points()).sum();
        assert_eq!(total, valid.num_points() - interior.num_points());
        for s in &slabs {
            assert!(s.intersection(&interior).is_empty());
        }
    }
}
