//! Supersonic flow over the 30° compression ramp on a *genuinely curvilinear*
//! (sheared) grid — the geometry class that motivated the paper's curvilinear
//! AMR development (§III-C: compression corners, re-entry vehicles).
//!
//! Demonstrates: stored coordinates + 27-component metrics on a non-Cartesian
//! mapping, the curvilinear interpolator with its coordinate ParallelCopy,
//! shock-based refinement following the ramp shock, and the task-graph RK
//! executor (`OVERLAP=0 cargo run ...` falls back to the barrier executor;
//! both produce bitwise-identical solutions, see DESIGN.md §4e).
//!
//! ```sh
//! cargo run --release --example compression_ramp
//! ```

use crocco::geometry::{GridMapping, RampMapping};
use crocco::solver::config::{CodeVersion, SolverConfig};
use crocco::solver::driver::Simulation;
use crocco::solver::problems::ProblemKind;
use crocco::solver::state::cons;
use std::io::Write;

fn main() {
    // Task-graph halo/kernel overlap is on unless OVERLAP=0 is set.
    let overlap = std::env::var("OVERLAP").map_or(true, |v| v != "0");
    let cfg = SolverConfig::builder()
        .problem(ProblemKind::Ramp)
        .extents(64, 32, 8)
        .version(CodeVersion::V2_0)
        .max_levels(2)
        .blocking_factor(4)
        .max_grid_size(32)
        .regrid_freq(5)
        .cfl(0.5)
        .threads(4)
        .overlap(overlap)
        .build();
    let mut sim = Simulation::new(cfg);
    println!(
        "RK stage executor: {}",
        if overlap { "task graph (overlapped)" } else { "barrier" }
    );

    let ramp = RampMapping::paper_dmr();
    println!(
        "Mach 3 flow over a {}-degree ramp (corner at x = {:.2})",
        30, ramp.corner_x
    );
    println!("curvilinear mapping: {}\n", ramp.name());

    for _ in 0..220 {
        sim.step();
        if sim.step_count().is_multiple_of(40) {
            println!(
                "step {:3}  t = {:.4}  dt = {:.2e}  levels = {}  mass = {:.6}",
                sim.step_count(),
                sim.time(),
                sim.dt(),
                sim.nlevels(),
                sim.conserved_integral(cons::RHO)
            );
        }
    }
    assert!(!sim.has_nonfinite(), "solution went non-finite");

    // Pressure along the ramp surface (first interior row).
    let path = "target/ramp_wall_pressure.csv";
    let mut f = std::io::BufWriter::new(std::fs::File::create(path).unwrap());
    writeln!(f, "x,y,p_over_pinf").unwrap();
    let gas = crocco::solver::PerfectGas::nondimensional();
    let state = &sim.level(0).state;
    let coords = &sim.level(0).coords;
    let zmid = sim.hierarchy().domain(0).bx.size()[2] / 2;
    for i in 0..state.nfabs() {
        let valid = state.valid_box(i);
        for p in valid.cells() {
            if p[1] != 0 || p[2] != zmid {
                continue;
            }
            let u = crocco::solver::state::Conserved([
                state.fab(i).get(p, cons::RHO),
                state.fab(i).get(p, cons::MX),
                state.fab(i).get(p, cons::MY),
                state.fab(i).get(p, cons::MZ),
                state.fab(i).get(p, cons::ENER),
            ]);
            let w = u.to_primitive(&gas);
            writeln!(
                f,
                "{},{},{}",
                coords.fab(i).get(p, 0),
                coords.fab(i).get(p, 1),
                w.p
            )
            .unwrap();
        }
    }
    println!("\nwrote {path}");

    // Check the physics: pressure downstream of the corner must exceed the
    // inflow pressure (the ramp shock compresses the flow). Oblique-shock
    // theory for M=3, 30-degree deflection gives p2/p1 around 6.
    let mut up = 0.0f64;
    let mut down = 0.0f64;
    let state = &sim.level(0).state;
    let coords = &sim.level(0).coords;
    let mut nu = 0;
    let mut nd = 0;
    for i in 0..state.nfabs() {
        let valid = state.valid_box(i);
        for p in valid.cells() {
            if p[1] != 0 || p[2] != zmid {
                continue;
            }
            let x = coords.fab(i).get(p, 0);
            let u = crocco::solver::state::Conserved([
                state.fab(i).get(p, cons::RHO),
                state.fab(i).get(p, cons::MX),
                state.fab(i).get(p, cons::MY),
                state.fab(i).get(p, cons::MZ),
                state.fab(i).get(p, cons::ENER),
            ]);
            let w = u.to_primitive(&gas);
            if x < ramp.corner_x * 0.6 {
                up += w.p;
                nu += 1;
            } else if x > ramp.corner_x * 1.8 {
                down += w.p;
                nd += 1;
            }
        }
    }
    let ratio = (down / nd as f64) / (up / nu as f64);
    println!("mean wall pressure ratio downstream/upstream of corner: {ratio:.2}");
    println!("(oblique-shock theory for M=3, 30-degree deflection: p2/p1 ~ 6)");
    assert!(ratio > 1.5, "ramp shock should compress the wall flow");
    println!("OK: the ramp shock compresses the near-wall flow.");
}
