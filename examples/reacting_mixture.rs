//! Multi-species reacting flow demo: the species terms of Eq. 1 in action.
//!
//! A closed 1-D box of molecular gas with a hot spot: the hot region
//! dissociates (A₂ → 2A, consuming thermal energy), composition and heat
//! diffuse outward (the `ρ_s v_sj` and `Σ ρ_s v_sj h_s` terms), acoustic
//! waves redistribute pressure — while total mass and total energy stay
//! exactly conserved.
//!
//! ```sh
//! cargo run --release --example reacting_mixture
//! ```

use crocco::solver::chemistry::Mechanism;
use crocco::solver::integrators::TimeScheme;
use crocco::solver::multispecies::Species1d;
use crocco::solver::species::MixturePrimitive;

fn main() {
    let mech = Mechanism::dissociation();
    let mut sim = Species1d::new(mech, 64, 0.1, 2e-4, |x| MixturePrimitive {
        rho_s: vec![1.0, 1e-4],
        vel: [0.0; 3],
        p: 0.0,
        t: 4000.0 + 2500.0 * (-((x - 0.05) / 0.012).powi(2)).exp(),
    });

    let mass0 = sim.species_mass(0) + sim.species_mass(1);
    let e0 = sim.total_energy();
    println!("closed-box dissociating gas: A2 <-> 2A with Fickian diffusion");
    println!(
        "{:>10} {:>12} {:>12} {:>10} {:>12} {:>12}",
        "time [us]", "T_center", "T_edge", "atom frac", "mass drift", "energy drift"
    );
    for snapshot in 0..8 {
        for _ in 0..250 {
            let dt = sim.stable_dt(0.4).min(3e-9);
            sim.step(dt, TimeScheme::Rk3Williamson);
        }
        let center = sim.cell_primitive(32);
        let edge = sim.cell_primitive(2);
        let atoms = sim.species_mass(1) / (sim.species_mass(0) + sim.species_mass(1));
        let mass = sim.species_mass(0) + sim.species_mass(1);
        println!(
            "{:>10.3} {:>12.1} {:>12.1} {:>10.5} {:>12.2e} {:>12.2e}",
            sim.time() * 1e6,
            center.t,
            edge.t,
            atoms,
            (mass - mass0) / mass0,
            (sim.total_energy() - e0) / e0
        );
        let _ = snapshot;
    }
    assert!(sim.is_physical(), "unphysical state");
    let atoms_final = sim.species_mass(1) / (sim.species_mass(0) + sim.species_mass(1));
    assert!(atoms_final > 1e-3, "no dissociation happened");
    println!("\nThe hot spot dissociates and cools (endothermic), diffusion spreads");
    println!("the products, and the Eq. 2 energy bookkeeping keeps the box's total");
    println!("mass and energy conserved to round-off.");
}
