//! Order verification on the isentropic vortex: a smooth exact solution of
//! the Euler equations advecting through a periodic box. Demonstrates the
//! grid-convergence methodology behind CRoCCo's validated numerics (§II-A)
//! and compares the WENO variants' dissipation.
//!
//! ```sh
//! cargo run --release --example isentropic_vortex
//! ```

use crocco::solver::config::{CodeVersion, SolverConfig};
use crocco::solver::driver::Simulation;
use crocco::solver::problems::ProblemKind;
use crocco::solver::validation::vortex_density_error;
use crocco::solver::{PerfectGas, WenoVariant};

fn run(n: i64, weno: WenoVariant, t_end: f64) -> f64 {
    let gas = PerfectGas::nondimensional();
    let cfg = SolverConfig::builder()
        .problem(ProblemKind::IsentropicVortex)
        .extents(n, n, 4)
        .version(CodeVersion::V1_1)
        .weno(weno)
        .cfl(0.4)
        .threads(4)
        .build();
    let mut sim = Simulation::new(cfg);
    while sim.time() < t_end {
        sim.step();
    }
    vortex_density_error(&sim, &gas)
}

fn main() {
    let t_end = 0.25;
    println!("Isentropic vortex, t = {t_end}: L2 density error vs exact solution\n");
    println!("{:>6} {:>14} {:>14} {:>8}", "N", "WENO-SYMBO", "WENO5-JS", "order");
    let mut prev: Option<(f64, f64)> = None;
    for n in [16i64, 32, 64] {
        let e_symbo = run(n, WenoVariant::Symbo, t_end);
        let e_js = run(n, WenoVariant::Js5, t_end);
        let order = prev
            .map(|(p, _)| (p / e_symbo).log2())
            .map(|o| format!("{o:.2}"))
            .unwrap_or_else(|| "-".into());
        println!("{n:>6} {e_symbo:>14.4e} {e_js:>14.4e} {order:>8}");
        prev = Some((e_symbo, e_js));
    }
    let (e_symbo, e_js) = prev.unwrap();
    println!(
        "\nat the finest grid, SYMBO error / JS error = {:.2}",
        e_symbo / e_js
    );
    println!("Note the crossover: at marginal resolution (N=16) the bandwidth-");
    println!("optimized symmetric weights beat upwind WENO5-JS — the 'resolve the");
    println!("smallest scales on a reduced number of grid points' property CRoCCo");
    println!("relies on (SS II-A) — while at asymptotic resolution JS5's higher");
    println!("formal order wins. SYMBO trades formal order for spectral resolution.");
}
