//! Quickstart: solve the Sod shock tube with CRoCCo-rs and compare against
//! the exact Riemann solution.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use crocco::solver::config::{CodeVersion, SolverConfig};
use crocco::solver::driver::Simulation;
use crocco::solver::problems::ProblemKind;
use crocco::solver::riemann::sod_exact;
use crocco::solver::state::cons;
use crocco::solver::validation::sod_density_error;
use crocco::solver::PerfectGas;

fn main() {
    let gas = PerfectGas::nondimensional();
    let cfg = SolverConfig::builder()
        .problem(ProblemKind::SodX)
        .extents(128, 4, 4)
        .version(CodeVersion::V1_1)
        .cfl(0.5)
        .threads(4)
        .build();
    let mut sim = Simulation::new(cfg);

    println!("Sod shock tube, 128 cells, WENO-SYMBO + RK3");
    println!("step      time        dt   total mass");
    while sim.time() < 0.15 {
        sim.step();
        if sim.step_count().is_multiple_of(20) {
            println!(
                "{:4}  {:.5}  {:.2e}  {:.10}",
                sim.step_count(),
                sim.time(),
                sim.dt(),
                sim.conserved_integral(cons::RHO)
            );
        }
    }

    // Density profile along the tube axis vs the exact solution.
    println!("\n    x    computed    exact");
    let state = &sim.level(0).state;
    let coords = &sim.level(0).coords;
    for i in 0..state.nfabs() {
        let valid = state.valid_box(i);
        for p in valid.cells() {
            if p[1] != 2 || p[2] != 2 || p[0] % 8 != 4 {
                continue;
            }
            let x = coords.fab(i).get(p, 0);
            let rho = state.fab(i).get(p, cons::RHO);
            let exact = sod_exact(x, sim.time(), &gas).rho;
            println!("{x:.3}    {rho:.5}    {exact:.5}");
        }
    }
    let err = sod_density_error(&sim, &gas);
    println!("\nL2 density error vs exact solution: {err:.3e}");
    println!("profiled regions:");
    for (region, t) in sim.profiler.report() {
        println!("  {region:<12} {:.1} ms", t * 1e3);
    }
    assert!(err < 0.02, "Sod error unexpectedly large");
    println!("\nOK");
}
