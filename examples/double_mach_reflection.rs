//! The paper's evaluation case: double Mach reflection of a Mach 10 shock
//! (Woodward & Colella), solved in 3-D with three-level AMR on the
//! curvilinear code path — the configuration of Fig. 2.
//!
//! Writes a density slice (z mid-plane of the finest level) to
//! `target/dmr_density.csv` and prints the AMR grid statistics, including
//! the active-point reduction the paper reports as 89–94 %.
//!
//! ```sh
//! cargo run --release --example double_mach_reflection
//! ```

use crocco::solver::config::{CodeVersion, SolverConfig};
use crocco::solver::driver::Simulation;
use crocco::solver::problems::ProblemKind;
use crocco::solver::state::cons;
use std::io::Write;

fn main() {
    let cfg = SolverConfig::builder()
        .problem(ProblemKind::DoubleMach)
        .extents(96, 24, 8)
        .version(CodeVersion::V2_0)
        .max_levels(3)
        .blocking_factor(4)
        .max_grid_size(32)
        .regrid_freq(5)
        .nranks(12)
        .threads(4)
        .build();
    let mut sim = Simulation::new(cfg);

    println!("Double Mach reflection: Mach 10 shock, 30-degree ramp frame");
    println!("3-level AMR, curvilinear interpolator (CRoCCo 2.0 configuration)\n");
    print_grid(&sim);

    let steps = 60;
    for _ in 0..steps {
        sim.step();
        if sim.step_count().is_multiple_of(20) {
            println!(
                "step {:3}  t = {:.5}  dt = {:.2e}  levels = {}  reduction = {:.1}%",
                sim.step_count(),
                sim.time(),
                sim.dt(),
                sim.nlevels(),
                100.0 * sim.hierarchy().reduction_fraction()
            );
        }
    }
    assert!(!sim.has_nonfinite(), "solution went non-finite");
    print_grid(&sim);

    // Density slice at the finest level's z mid-plane.
    let path = "target/dmr_density.csv";
    let mut f = std::io::BufWriter::new(std::fs::File::create(path).unwrap());
    writeln!(f, "x,y,level,rho").unwrap();
    for l in 0..sim.nlevels() {
        let state = &sim.level(l).state;
        let coords = &sim.level(l).coords;
        let zmid = sim.hierarchy().domain(l).bx.size()[2] / 2;
        for i in 0..state.nfabs() {
            let valid = state.valid_box(i);
            for p in valid.cells() {
                if p[2] != zmid {
                    continue;
                }
                writeln!(
                    f,
                    "{},{},{},{}",
                    coords.fab(i).get(p, 0),
                    coords.fab(i).get(p, 1),
                    l,
                    state.fab(i).get(p, cons::RHO)
                )
                .unwrap();
            }
        }
    }
    println!("\nwrote {path}");

    let report = sim.report();
    println!(
        "\nfinal: t = {:.5}, active points = {}, equivalent = {}, reduction = {:.1}%",
        report.final_time,
        report.active_points,
        report.equivalent_points,
        100.0 * report.reduction_fraction
    );
    println!("paper (\u{a7}V-C): AMR reduces active grid points by 89-94% on this case.");
    println!(
        "communication: {} FillBoundary msgs ({} B), {} state-PC msgs, {} coord-PC msgs",
        report.comm.fb_messages,
        report.comm.fb_bytes,
        report.comm.pc_messages,
        report.comm.coord_pc_messages
    );
}

fn print_grid(sim: &Simulation) {
    println!("grid hierarchy:");
    for l in 0..sim.nlevels() {
        let lev = sim.hierarchy().level(l);
        println!(
            "  level {l}: {:5} boxes, {:9} cells, domain {:?}",
            lev.ba.len(),
            lev.ba.num_points(),
            sim.hierarchy().domain(l).bx.size()
        );
    }
}
