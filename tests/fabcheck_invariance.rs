//! The fabcheck sanitizer must be *observationally invisible*: turning the
//! `fabcheck`/`nan_poison` knobs on may only trap bugs, never perturb a
//! correct solution. These properties run the compression-ramp configuration
//! (the curvilinear case from `examples/compression_ramp.rs`, shrunk) twice
//! and demand bitwise-identical state — not merely close. The test is
//! meaningful in every build: with the `fabcheck` cargo feature the poisoned
//! allocations and epoch checks are live; without it the knobs must be inert
//! by construction.

use crocco::solver::config::{CodeVersion, SolverConfig, SolverConfigBuilder};
use crocco::solver::driver::Simulation;
use crocco::solver::problems::ProblemKind;
use proptest::prelude::*;

/// The shrunk compression-ramp configuration (sheared curvilinear grid,
/// two AMR levels, regridding mid-run so the remap path executes).
fn ramp_builder(extent_x: i64, cfl: f64) -> SolverConfigBuilder {
    // The sheared mapping needs the example's aspect ratio: too-coarse grids
    // invert (negative Jacobian) in the ghost corners.
    SolverConfig::builder()
        .problem(ProblemKind::Ramp)
        .extents(extent_x, extent_x / 2, 8)
        .version(CodeVersion::V2_0)
        .max_levels(2)
        .blocking_factor(4)
        .max_grid_size(16)
        .regrid_freq(3)
        .cfl(cfl)
}

/// Advances `steps` and flattens every level's valid state to bit patterns,
/// so the comparison is exact (NaN-safe, -0.0-safe).
fn run_bits(cfg: SolverConfig, steps: u32) -> Vec<u64> {
    let mut sim = Simulation::new(cfg);
    sim.advance_steps(steps);
    let mut bits = Vec::new();
    for l in 0..sim.nlevels() {
        let state = &sim.level(l).state;
        for i in 0..state.nfabs() {
            let fab = state.fab(i);
            for c in 0..state.ncomp() {
                for p in state.valid_box(i).cells() {
                    bits.push(fab.get(p, c).to_bits());
                }
            }
        }
    }
    bits
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    #[test]
    fn nan_poisoning_is_bitwise_invisible_on_the_ramp(
        extent_x in Just(48i64),
        cfl in prop::sample::select(vec![0.4f64, 0.5]),
        steps in 3u32..5,
    ) {
        let plain = run_bits(ramp_builder(extent_x, cfl).build(), steps);
        let poisoned = run_bits(
            ramp_builder(extent_x, cfl).fabcheck(true).nan_poison(true).build(),
            steps,
        );
        prop_assert_eq!(plain.len(), poisoned.len());
        prop_assert!(plain == poisoned, "poisoned run diverged bitwise");
    }

    #[test]
    fn sanitizer_toggle_is_bitwise_invisible(
        steps in 3u32..5,
    ) {
        let off = run_bits(ramp_builder(48, 0.5).fabcheck(false).build(), steps);
        let on = run_bits(ramp_builder(48, 0.5).fabcheck(true).build(), steps);
        prop_assert!(off == on, "fabcheck toggle changed results");
    }
}
