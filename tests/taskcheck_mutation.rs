//! Mutation self-test for the taskcheck layer (DESIGN.md §4i): seed a
//! concurrency bug by deleting one dependency edge from a *real* RK-stage
//! skeleton and prove both detection layers catch it — the static schedule
//! verifier names the exact unordered pair, and (under the `taskcheck`
//! feature) the dynamic race detector traps the same mutation when the
//! graph actually executes. A verifier that cannot see a seeded bug proves
//! nothing about the graphs it declares clean.

use crocco::fab::{
    dist_rank_schedule, verify_stage, BoxArray, DistSkeleton, DistributionMapping,
    DistributionStrategy, FabIds, PlanCache, StageSkeleton,
};
#[cfg(feature = "taskcheck")]
use crocco::fab::{FArrayBox, MultiFab};
use crocco::geometry::decompose::ChopParams;
use crocco::geometry::{IndexBox, ProblemDomain};
use crocco::runtime::taskcheck::{verify_cross_rank, RankSchedule, Violation};
use std::sync::Arc;

fn setup(nranks: usize) -> (Arc<BoxArray>, Arc<DistributionMapping>, ProblemDomain) {
    let domain = ProblemDomain::non_periodic(IndexBox::from_extents(16, 8, 8));
    let ba = Arc::new(BoxArray::decompose(domain.bx, ChopParams::new(4, 8)));
    let dm = Arc::new(DistributionMapping::new(
        &ba,
        nranks,
        DistributionStrategy::RoundRobin,
    ));
    (ba, dm, domain)
}

/// A (source patch, reader patch) pair whose update-fence edge can be
/// deleted: `halo[d]` reads `state[s]`, so dropping `d` from `readers[s]`
/// leaves that read unordered against `update[s]`'s write.
fn deletable_edge(skel: &StageSkeleton) -> (usize, usize) {
    for (s, rs) in skel.readers.iter().enumerate() {
        if let Some(&d) = rs.iter().find(|&&d| d != s) {
            return (s, d);
        }
    }
    panic!("plan has no cross-patch reader edge to mutate");
}

#[test]
fn static_verifier_flags_a_deleted_update_fence() {
    let (ba, dm, domain) = setup(1);
    let cache = PlanCache::new();
    let nghost = 2;
    let fb = cache.fill_boundary(&ba, &dm, &domain, nghost, 2);
    let valid: Vec<IndexBox> = (0..ba.len()).map(|i| ba.get(i)).collect();

    let skel = StageSkeleton::build(&fb, ba.len());
    verify_stage(&fb, &skel, &valid, nghost).assert_clean("unmutated stage skeleton");

    let (s, d) = deletable_edge(&skel);
    let mut mutated = skel.clone();
    mutated.readers[s].retain(|&r| r != d);
    let report = verify_stage(&fb, &mutated, &valid, nghost);
    assert!(
        !report.is_clean(),
        "deleting the {d}-reads-{s} fence must not verify clean"
    );
    let halo = format!("halo[{d}]");
    let update = format!("update[{s}]");
    assert!(
        report.violations.iter().any(|v| matches!(
            v,
            Violation::UnorderedConflict {
                first_label,
                second_label,
                fab,
                ..
            } if first_label == &halo && second_label == &update && *fab == s as u64
        )),
        "verifier must name the exact pair ({halo}, {update}) on state fab {s}: {:?}",
        report.violations
    );
}

#[test]
fn cross_rank_verifier_flags_a_deleted_send() {
    let (ba, dm, domain) = setup(2);
    let cache = PlanCache::new();
    let nghost = 2;
    let fb = cache.fill_boundary(&ba, &dm, &domain, nghost, 2);
    let valid: Vec<IndexBox> = (0..ba.len()).map(|i| ba.get(i)).collect();
    let ids = FabIds::symbolic(valid.len());
    let mut ranks: Vec<RankSchedule> = (0..2)
        .map(|r| {
            dist_rank_schedule(
                &fb.plan,
                &DistSkeleton::build(&fb, dm.owners(), r),
                &valid,
                nghost,
                &ids,
            )
        })
        .collect();
    assert!(verify_cross_rank(&ranks).is_empty(), "unmutated ranks clean");

    // Drop one send's channel registration: the matching recv now waits on
    // a message nobody sends — the lost-wakeup shape.
    let r = ranks
        .iter()
        .position(|rs| !rs.sends.is_empty())
        .expect("a two-rank plan must cross the rank boundary");
    let (_, chan) = ranks[r].sends.pop().expect("sends nonempty");
    let violations = verify_cross_rank(&ranks);
    assert!(
        violations.iter().any(|v| matches!(
            v,
            Violation::ChannelMismatch {
                chan: c,
                sends: 0,
                recvs: 1
            } if *c == chan
        )),
        "tag-completeness must flag channel {chan}: {violations:?}"
    );
}

/// The dynamic backstop catches the same seeded bug at runtime: the mutated
/// skeleton drives a real executor run, and the race tracker flags the
/// executed-but-unordered halo read vs. state update. Feature-gated — with
/// `taskcheck` off the recorder compiles to nothing.
#[cfg(feature = "taskcheck")]
#[test]
fn dynamic_detector_traps_the_same_mutation_at_runtime() {
    use crocco::fab::{run_rk_stage_with_skeleton, StageFabs};
    use crocco::runtime::Schedule;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    let (ba, dm, domain) = setup(1);
    let cache = PlanCache::new();
    let nghost = 2;
    let ncomp = 2;
    let fb = cache.fill_boundary(&ba, &dm, &domain, nghost, ncomp);
    let skel = StageSkeleton::build(&fb, ba.len());
    let (s, d) = deletable_edge(&skel);
    let mut mutated = skel.clone();
    mutated.readers[s].retain(|&r| r != d);

    let run = |skel: &StageSkeleton| {
        let mut state = MultiFab::new(ba.clone(), dm.clone(), ncomp, nghost);
        let mut du = MultiFab::new(ba.clone(), dm.clone(), ncomp, 0);
        let mut rhs: Vec<FArrayBox> = (0..ba.len())
            .map(|i| FArrayBox::new(ba.get(i), ncomp))
            .collect();
        run_rk_stage_with_skeleton(
            StageFabs {
                state: &mut state,
                du: &mut du,
                rhs: &mut rhs,
            },
            &fb,
            skel,
            Schedule::adversarial(0),
            &[],
            &|_, _| {},
            &|_, _| {},
            &|_, _, _, _| {},
            &|_, _, _, _| {},
        );
    };

    // Control: the honest skeleton executes clean.
    run(&skel);

    let err = catch_unwind(AssertUnwindSafe(|| run(&mutated)))
        .expect_err("mutated skeleton must trap at runtime");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(msg.contains("taskcheck"), "unexpected panic message: {msg}");
}
