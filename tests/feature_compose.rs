//! Integration test: all optional features compose — LES closure,
//! Roe-characteristic reconstruction, the RK4(5) low-storage integrator, the
//! WENO conservative interpolator, binary-file coordinates, and multi-level
//! AMR, in one DMR run.

use crocco::solver::config::{CodeVersion, CoordSource, InterpKind, SolverConfig};
use crocco::solver::driver::Simulation;
use crocco::solver::integrators::TimeScheme;
use crocco::solver::problems::ProblemKind;
use crocco::solver::state::cons;
use crocco::solver::weno::{Reconstruction, WenoVariant};

#[test]
fn everything_enabled_dmr_marches_stably() {
    let cfg = SolverConfig::builder()
        .problem(ProblemKind::DoubleMach)
        .extents(48, 16, 8)
        .version(CodeVersion::V2_0)
        .max_levels(2)
        .weno(WenoVariant::Symbo)
        .reconstruction(Reconstruction::Characteristic)
        .time_scheme(TimeScheme::Rk45CarpenterKennedy)
        .interpolator(InterpKind::WenoConservative)
        .coord_source(CoordSource::BinaryFile)
        .les(0.17)
        .regrid_freq(3)
        .nranks(4)
        .threads(2)
        .cfl(0.5)
        .build();
    let mut sim = Simulation::new(cfg);
    assert_eq!(sim.nlevels(), 2);
    let report = sim.advance_steps(8); // crosses regrids at 3 and 6
    assert!(!sim.has_nonfinite(), "composed features went non-finite");
    assert_eq!(report.steps, 8);
    assert!(report.final_time > 0.0);
    // Physicality: density within the DMR envelope.
    let rho_min = sim.level(0).state.min(cons::RHO);
    let rho_max = sim.level(0).state.max(cons::RHO);
    assert!(rho_min > 0.5, "rho_min {rho_min}");
    assert!(rho_max < 25.0, "rho_max {rho_max}");
    // The fine level still tracks the shock.
    assert!(report.reduction_fraction > 0.3);
}

#[test]
fn rk45_and_rk3_agree_on_a_smooth_short_horizon() {
    let mk = |scheme: TimeScheme| {
        let cfg = SolverConfig::builder()
            .problem(ProblemKind::IsentropicVortex)
            .extents(16, 16, 4)
            .version(CodeVersion::V1_1)
            .time_scheme(scheme)
            .cfl(0.4)
            .build();
        let mut sim = Simulation::new(cfg);
        while sim.time() < 0.05 {
            sim.step();
        }
        sim
    };
    let a = mk(TimeScheme::Rk3Williamson);
    let b = mk(TimeScheme::Rk45CarpenterKennedy);
    // Time-integration error is far below spatial error here: both schemes
    // must produce nearly identical fields at the same horizon.
    let rel = crocco::solver::validation::relative_l2_difference(&a, &b);
    for (c, d) in rel.iter().enumerate() {
        assert!(*d < 5e-4, "comp {c}: schemes diverge by {d}");
    }
}
