//! Integration test: grid convergence against exact solutions — the
//! validation discipline behind CRoCCo's published DNS results (§II-A).

use crocco::solver::config::{CodeVersion, SolverConfig};
use crocco::solver::driver::Simulation;
use crocco::solver::problems::ProblemKind;
use crocco::solver::validation::{sod_density_error, vortex_density_error};
use crocco::solver::{PerfectGas, WenoVariant};

#[test]
fn sod_converges_toward_the_exact_riemann_solution() {
    let gas = PerfectGas::nondimensional();
    let mut errors = Vec::new();
    for nx in [32i64, 64, 128] {
        let cfg = SolverConfig::builder()
            .problem(ProblemKind::SodX)
            .extents(nx, 4, 4)
            .version(CodeVersion::V1_1)
            .cfl(0.5)
            .build();
        let mut sim = Simulation::new(cfg);
        while sim.time() < 0.1 {
            sim.step();
        }
        errors.push(sod_density_error(&sim, &gas));
    }
    assert!(
        errors[1] < errors[0] && errors[2] < errors[1],
        "errors must decrease monotonically: {errors:?}"
    );
    // Shock-limited convergence is at least ~0.7th order overall.
    let order = (errors[0] / errors[2]).log2() / 2.0;
    assert!(order > 0.5, "observed order {order:.2} from {errors:?}");
}

#[test]
fn vortex_converges_at_high_order_on_smooth_flow() {
    let gas = PerfectGas::nondimensional();
    let mut errors = Vec::new();
    for n in [16i64, 32] {
        let cfg = SolverConfig::builder()
            .problem(ProblemKind::IsentropicVortex)
            .extents(n, n, 4)
            .version(CodeVersion::V1_1)
            .weno(WenoVariant::CentralSym6)
            .cfl(0.4)
            .build();
        let mut sim = Simulation::new(cfg);
        while sim.time() < 0.1 {
            sim.step();
        }
        errors.push(vortex_density_error(&sim, &gas));
    }
    let order = (errors[0] / errors[1]).log2();
    assert!(
        order > 1.8,
        "smooth-flow order {order:.2} too low ({errors:?})"
    );
}

#[test]
fn vortex_preserves_all_invariants_in_periodic_box() {
    use crocco::solver::state::cons;
    let cfg = SolverConfig::builder()
        .problem(ProblemKind::IsentropicVortex)
        .extents(16, 16, 4)
        .version(CodeVersion::V1_1)
        .build();
    let mut sim = Simulation::new(cfg);
    let before: Vec<f64> = (0..5).map(|c| sim.conserved_integral(c)).collect();
    sim.advance_steps(8);
    for c in [cons::RHO, cons::MX, cons::MY, cons::MZ, cons::ENER] {
        let after = sim.conserved_integral(c);
        let scale = before[cons::ENER].abs().max(1.0);
        assert!(
            (after - before[c]).abs() / scale < 1e-11,
            "component {c}: {} -> {after}",
            before[c]
        );
    }
}
