//! End-to-end chaos-runtime proof (DESIGN.md §4g): seeded fault injection
//! on the cluster transport must be *repaired* — drop, duplication,
//! corruption, and delay leave the solution bitwise-identical to the
//! fault-free baseline — and whole-rank crashes must be *recovered* —
//! survivors roll back to the last in-memory checkpoint, re-form the
//! communicator without the dead rank, and still reach the target step with
//! the single-rank answer.
//!
//! The configuration is the compression-ramp of
//! `tests/dist_overlap_invariance.rs`: sheared curvilinear grid, two AMR
//! levels, `regrid_freq(3)` so multi-step runs cross regrids (including
//! inside rollback windows).
//!
//! `CROCCO_DIST_RANKS` (comma-separated) restricts the rank counts of the
//! injection matrix — the CI chaos job uses it to split 2- and 4-rank legs.

use crocco::runtime::chaos::{ChaosConfig, CrashPhase, CrashSpec};
use crocco::runtime::LocalCluster;
use crocco::solver::cluster_step::ChaosRunReport;
use crocco::solver::config::{CodeVersion, SolverConfig, SolverConfigBuilder};
use crocco::solver::driver::Simulation;
use crocco::solver::problems::ProblemKind;
use std::sync::OnceLock;

fn ramp_builder() -> SolverConfigBuilder {
    SolverConfig::builder()
        .problem(ProblemKind::Ramp)
        .extents(48, 24, 8)
        .version(CodeVersion::V2_0)
        .max_levels(2)
        .blocking_factor(4)
        .max_grid_size(16)
        .regrid_freq(3)
        .cfl(0.5)
}

/// Rank counts for the injection matrix (overridable via
/// `CROCCO_DIST_RANKS`; counts below 2 are dropped — injection needs real
/// messages).
fn ranks_under_test() -> Vec<usize> {
    std::env::var("CROCCO_DIST_RANKS")
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|t| t.trim().parse::<usize>().ok())
                .collect::<Vec<_>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![2, 4])
        .into_iter()
        .filter(|&n| n >= 2)
        .collect()
}

/// Flattens every level's valid state to bit patterns (NaN/-0.0-exact).
fn state_bits(sim: &Simulation) -> Vec<u64> {
    let mut bits = Vec::new();
    for l in 0..sim.nlevels() {
        let state = &sim.level(l).state;
        for i in 0..state.nfabs() {
            let fab = state.fab(i);
            for c in 0..state.ncomp() {
                for p in state.valid_box(i).cells() {
                    bits.push(fab.get(p, c).to_bits());
                }
            }
        }
    }
    bits
}

fn single_reference(steps: u32) -> (Vec<u64>, f64) {
    let mut sim = Simulation::new(ramp_builder().build());
    sim.advance_steps(steps);
    (state_bits(&sim), sim.conserved_integral(0))
}

/// Fault-free 4-step single-rank baseline, shared across tests (every
/// scenario runs 4 steps — `regrid_freq(3)` puts a regrid inside both the
/// run and the crash tests' rollback windows).
fn baseline4() -> &'static (Vec<u64>, f64) {
    static B: OnceLock<(Vec<u64>, f64)> = OnceLock::new();
    B.get_or_init(|| single_reference(4))
}

/// Generous receive deadline: these tests run on oversubscribed CI hosts
/// (often a single core for a 4-rank cluster), where an honest peer can
/// legitimately go silent for many seconds mid-kernel. Crash detection does
/// not depend on this — it rides the fail-stop alive flags.
const WAIT_TIMEOUT_MS: u64 = 120_000;

/// What each rank of a chaos run reports back to the test.
struct RankOutcome {
    report: ChaosRunReport,
    /// `None` for the crashed rank (its simulation is abandoned mid-step).
    bits: Option<Vec<u64>>,
    integral: Option<f64>,
    step: Option<u32>,
}

/// Runs `steps` under the chaos runtime on `nranks` ranks and collects every
/// rank's outcome plus the injection statistics.
fn run_chaos(
    nranks: usize,
    chaos: ChaosConfig,
    overlap: bool,
    steps: u32,
) -> (Vec<RankOutcome>, [u64; 8]) {
    let cfg = ramp_builder()
        .nranks(nranks)
        .dist_overlap(overlap)
        .chaos(chaos.clone())
        .build();
    let (outcomes, runtime) = LocalCluster::run_with_chaos(nranks, chaos, move |ep| {
        let mut sim = Simulation::new(cfg.clone());
        let report = sim.advance_steps_chaos(steps, &ep);
        if report.crashed {
            RankOutcome {
                report,
                bits: None,
                integral: None,
                step: None,
            }
        } else {
            RankOutcome {
                report,
                bits: Some(state_bits(&sim)),
                integral: Some(sim.conserved_integral(0)),
                step: Some(sim.step_count()),
            }
        }
    });
    let stats = runtime.stats.snapshot();
    (outcomes, stats)
}

/// A chaos transport with every fault probability at zero (framing, CRC
/// verification, and sequence tracking all active) must be bitwise
/// invisible: the detection layer may never perturb a fault-free run.
#[test]
fn zero_fault_chaos_transport_is_bitwise_invisible() {
    let (reference, _) = baseline4();
    let chaos = ChaosConfig {
        wait_timeout_ms: WAIT_TIMEOUT_MS,
        ..ChaosConfig::default()
    };
    let (outcomes, stats) = run_chaos(2, chaos, false, 4);
    assert_eq!(stats[0] + stats[1] + stats[2] + stats[3], 0, "nothing injected");
    for (r, o) in outcomes.iter().enumerate() {
        assert!(!o.report.crashed);
        assert_eq!(o.report.recoveries, 0);
        assert_eq!(
            o.bits.as_ref().unwrap(),
            reference,
            "rank {r}: detection-only chaos transport changed the solution"
        );
    }
}

/// Seeded drop + corruption + duplication + delay, repaired by CRC
/// rejection, retransmits, and sequence suppression: the solution must stay
/// bitwise-identical to the fault-free baseline at every rank count, fenced
/// and overlapped.
#[test]
fn injected_faults_are_repaired_bitwise() {
    let (reference, _) = baseline4();
    let chaos = ChaosConfig {
        seed: 0xC0FF_EE42,
        drop_p: 0.03,
        duplicate_p: 0.02,
        corrupt_p: 0.02,
        delay_p: 0.03,
        wait_timeout_ms: WAIT_TIMEOUT_MS,
        ..ChaosConfig::default()
    };
    for nranks in ranks_under_test() {
        for overlap in [false, true] {
            let (outcomes, stats) = run_chaos(nranks, chaos.clone(), overlap, 4);
            assert!(
                stats[0] + stats[1] + stats[2] + stats[3] > 0,
                "the plan must actually injure this run ({nranks} ranks)"
            );
            for (r, o) in outcomes.iter().enumerate() {
                assert!(!o.report.crashed);
                assert_eq!(o.report.recoveries, 0, "no rank died, no recovery");
                assert_eq!(
                    o.bits.as_ref().unwrap(),
                    reference,
                    "rank {r}/{nranks} overlap={overlap}: injected faults leaked into the solution"
                );
            }
        }
    }
}

/// Asserts the survivors of a crash run recovered correctly: reached the
/// target step, rolled back as expected, and reproduce the single-rank
/// solution bitwise (replication makes the result rank-count invariant even
/// after the group shrinks mid-run).
fn assert_recovered(
    outcomes: &[RankOutcome],
    crashed_ranks: &[usize],
    steps: u32,
    expect_rollbacks: &[u32],
) {
    let (reference, ref_integral) = baseline4();
    assert_eq!(steps, 4, "baseline is 4 steps");
    for (r, o) in outcomes.iter().enumerate() {
        if crashed_ranks.contains(&r) {
            assert!(o.report.crashed, "rank {r} was scheduled to crash");
            continue;
        }
        assert!(!o.report.crashed, "rank {r} must survive");
        assert_eq!(o.step, Some(steps), "rank {r} must reach the target step");
        assert_eq!(
            o.report.rollback_steps, expect_rollbacks,
            "rank {r}: wrong rollback sequence"
        );
        assert_eq!(
            o.report.recoveries,
            u32::try_from(expect_rollbacks.len()).unwrap()
        );
        assert!(o.report.checkpoints >= 1);
        assert!(o.report.checkpoint_bytes > 0);
        let integral = o.integral.unwrap();
        assert!(
            (integral - ref_integral).abs() <= 1e-12 * ref_integral.abs(),
            "rank {r}: conserved integral drifted ({integral} vs {ref_integral})"
        );
        assert_eq!(
            o.bits.as_ref().unwrap(),
            reference,
            "rank {r}: recovered run diverged from the single-rank solution"
        );
    }
}

fn crash_base() -> ChaosConfig {
    ChaosConfig {
        checkpoint_interval: 2,
        wait_timeout_ms: WAIT_TIMEOUT_MS,
        ..ChaosConfig::default()
    }
}

/// Mid-RK crash (after the dt collective): survivors fault in stage halo /
/// gather traffic, roll back to the step-2 checkpoint, and re-execute on 3
/// ranks — across the regrid at step 3 inside the rollback window.
#[test]
fn rank_crash_after_dt_recovers_from_checkpoint() {
    let chaos = ChaosConfig {
        crashes: vec![CrashSpec {
            rank: 2,
            step: 3,
            phase: CrashPhase::AfterDt,
        }],
        ..crash_base()
    };
    let (outcomes, _) = run_chaos(4, chaos, false, 4);
    assert_recovered(&outcomes, &[2], 4, &[2]);
}

/// Crash between the rank-local regrid and the dt collective, at the regrid
/// step itself (mid-regrid fault): survivors fault inside the dt allreduce.
#[test]
fn rank_crash_after_regrid_recovers() {
    let chaos = ChaosConfig {
        crashes: vec![CrashSpec {
            rank: 1,
            step: 3,
            phase: CrashPhase::AfterRegrid,
        }],
        ..crash_base()
    };
    let (outcomes, _) = run_chaos(4, chaos, false, 4);
    assert_recovered(&outcomes, &[1], 4, &[2]);
}

/// Crash of physical rank 0 at step entry: the collective tree is rooted at
/// *logical* rank 0, so after the group re-forms, physical rank 1 takes over
/// as root and the dt allreduce keeps working.
#[test]
fn rank_zero_crash_recovers() {
    let chaos = ChaosConfig {
        crashes: vec![CrashSpec {
            rank: 0,
            step: 3,
            phase: CrashPhase::StepStart,
        }],
        ..crash_base()
    };
    let (outcomes, _) = run_chaos(4, chaos, false, 4);
    assert_recovered(&outcomes, &[0], 4, &[2]);
}

/// Two crashes inside one checkpoint interval: both recoveries roll back to
/// the *same* step-2 checkpoint, and the second recovery shrinks the group
/// again (4 → 3 → 2 ranks).
#[test]
fn two_crashes_in_one_checkpoint_interval() {
    let chaos = ChaosConfig {
        crashes: vec![
            CrashSpec {
                rank: 3,
                step: 2,
                phase: CrashPhase::AfterDt,
            },
            CrashSpec {
                rank: 2,
                step: 3,
                phase: CrashPhase::StepStart,
            },
        ],
        ..crash_base()
    };
    let (outcomes, _) = run_chaos(4, chaos, false, 4);
    assert_recovered(&outcomes, &[2, 3], 4, &[2, 2]);
}

/// Crash recovery with faults *also* injected on the transport: detection
/// repairs the message-level damage while rollback handles the dead rank.
#[test]
fn crash_recovery_survives_concurrent_injection() {
    let chaos = ChaosConfig {
        seed: 0xFA11_0DE2,
        drop_p: 0.02,
        corrupt_p: 0.01,
        delay_p: 0.02,
        crashes: vec![CrashSpec {
            rank: 2,
            step: 3,
            phase: CrashPhase::AfterDt,
        }],
        ..crash_base()
    };
    let (outcomes, stats) = run_chaos(4, chaos, false, 4);
    assert!(stats[0] + stats[2] + stats[3] > 0, "faults must fire");
    assert_recovered(&outcomes, &[2], 4, &[2]);
}

/// Under the fabcheck sanitizer, a poisoned-NaN kernel (here: one rank's
/// metrics silently corrupted, the way a flipped bit in device memory
/// would) must *fail-stop* through the panic-to-`StageError` conversion —
/// every rank reports `crashed` through the typed path instead of
/// unwinding across the cluster threads or hanging.
#[cfg(feature = "fabcheck")]
#[test]
fn poisoned_nan_kernel_fail_stops_through_typed_path() {
    let chaos = ChaosConfig::default();
    let cfg = ramp_builder()
        .nranks(2)
        .nan_poison(true)
        .chaos(chaos.clone())
        .build();
    let (outcomes, _) = LocalCluster::run_with_chaos(2, chaos, move |ep| {
        let mut sim = Simulation::new(cfg.clone());
        let clean = sim.advance_steps_chaos(2, &ep);
        assert!(!clean.crashed, "poison-free prefix must be healthy");
        // Corrupt one owned patch's metrics on rank 1 only. The NaN enters
        // the RK right-hand side, replicates through the stage allgather,
        // and every rank's post-stage `check_for_nan` sweep traps.
        if ep.rank() == 1 {
            sim.poison_metrics_for_test(ep.rank());
        }
        sim.advance_steps_chaos(2, &ep)
    });
    for (r, report) in outcomes.iter().enumerate() {
        assert!(
            report.crashed,
            "rank {r}: NaN poison must fail-stop via the typed StageError path"
        );
    }
}
