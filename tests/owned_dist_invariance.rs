//! Owned-data distribution (`Simulation::new_owned`, docs/DISTRIBUTED.md)
//! must be *observationally invisible*: allocating and advancing only the
//! patches each rank owns — no stage allgather, cross-rank FillPatch through
//! plan-driven exchanges, distributed regrid with tag-union + data
//! redistribution — may change the memory footprint and the message
//! schedule, never a single bit of the solution. These tests run the
//! compression-ramp configuration (sheared curvilinear grid, two AMR levels,
//! a regrid mid-run) owned-data at 1/2/4 ranks — fenced, overlapped, and
//! under the fabcheck sanitizer — and demand that the union of the ranks'
//! owned patches is bitwise-identical to the replicated oracle. They also
//! pin the tentpole memory claim: per-rank allocation is exactly
//! O(owned cells + ghosts), not O(global).
//!
//! `CROCCO_DIST_RANKS` (comma-separated, e.g. `CROCCO_DIST_RANKS=2`)
//! restricts the rank counts under test — the CI matrix uses it to split the
//! 2-rank and 4-rank legs into separate jobs.

use crocco::runtime::chaos::{ChaosConfig, CrashPhase, CrashSpec};
use crocco::runtime::{GroupEndpoint, LocalCluster};
use crocco::solver::config::{CodeVersion, SolverConfig, SolverConfigBuilder};
use crocco::solver::driver::Simulation;
use crocco::solver::problems::ProblemKind;
use std::collections::BTreeMap;

/// The shrunk compression-ramp configuration shared with
/// `tests/dist_overlap_invariance.rs`: 4 steps with `regrid_freq(3)` crosses
/// a regrid, so the owned path's distributed tagging, clustering, and
/// redistribution all execute mid-run.
fn ramp_builder() -> SolverConfigBuilder {
    SolverConfig::builder()
        .problem(ProblemKind::Ramp)
        .extents(48, 24, 8)
        .version(CodeVersion::V2_0)
        .max_levels(2)
        .blocking_factor(4)
        .max_grid_size(16)
        .regrid_freq(3)
        .cfl(0.5)
}

/// Rank counts under test (overridable via `CROCCO_DIST_RANKS`).
fn ranks_under_test() -> Vec<usize> {
    std::env::var("CROCCO_DIST_RANKS")
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|t| t.trim().parse::<usize>().ok())
                .collect::<Vec<_>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![1, 2, 4])
}

/// Per-patch valid-state bit patterns of every *allocated* patch, keyed by
/// `(level, patch)`. On a replicated simulation this is every patch; on an
/// owned one, exactly the rank's owned subset — so the oracle comparison is
/// per patch and the union check is a map-key union.
fn patch_bits(sim: &Simulation) -> BTreeMap<(usize, usize), Vec<u64>> {
    let mut out = BTreeMap::new();
    for l in 0..sim.nlevels() {
        let state = &sim.level(l).state;
        for i in 0..state.nfabs() {
            if !state.is_allocated(i) {
                continue;
            }
            let fab = state.fab(i);
            let mut bits = Vec::new();
            for c in 0..state.ncomp() {
                for p in state.valid_box(i).cells() {
                    bits.push(fab.get(p, c).to_bits());
                }
            }
            out.insert((l, i), bits);
        }
    }
    out
}

/// The replicated oracle: ordinary single-process stepping.
fn oracle(steps: u32) -> BTreeMap<(usize, usize), Vec<u64>> {
    let mut sim = Simulation::new(ramp_builder().build());
    sim.advance_steps(steps);
    patch_bits(&sim)
}

/// Runs `steps` owned-data on a `LocalCluster` of `cfg.nranks` and returns
/// every rank's owned patch bits.
fn run_owned(cfg: SolverConfig, steps: u32) -> Vec<BTreeMap<(usize, usize), Vec<u64>>> {
    let nranks = cfg.nranks;
    LocalCluster::run(nranks, move |ep| {
        let gep = GroupEndpoint::full(&ep);
        let mut sim =
            Simulation::new_owned(cfg.clone(), &gep).expect("fault-free construction");
        drop(gep);
        sim.advance_steps_cluster(steps, &ep);
        patch_bits(&sim)
    })
}

/// Asserts the per-rank owned maps partition the oracle: each rank's patches
/// match the oracle bitwise, every oracle patch is owned by exactly one
/// rank, and no rank holds a patch the oracle lacks.
fn assert_partitions_oracle(
    owned: &[BTreeMap<(usize, usize), Vec<u64>>],
    reference: &BTreeMap<(usize, usize), Vec<u64>>,
    what: &str,
) {
    let mut seen: BTreeMap<(usize, usize), usize> = BTreeMap::new();
    for (rank, map) in owned.iter().enumerate() {
        for (key, bits) in map {
            let expect = reference
                .get(key)
                .unwrap_or_else(|| panic!("{what}: rank {rank} owns unknown patch {key:?}"));
            assert!(
                bits == expect,
                "{what}: rank {rank} patch {key:?} diverged bitwise from the oracle"
            );
            if let Some(prev) = seen.insert(*key, rank) {
                panic!("{what}: patch {key:?} owned by both rank {prev} and rank {rank}");
            }
        }
    }
    assert_eq!(
        seen.len(),
        reference.len(),
        "{what}: owned union must cover every oracle patch"
    );
}

#[test]
fn owned_fenced_matches_oracle_bitwise() {
    let reference = oracle(4);
    for nranks in ranks_under_test() {
        let cfg = ramp_builder().nranks(nranks).threads(1).build();
        let owned = run_owned(cfg, 4);
        assert_partitions_oracle(&owned, &reference, &format!("fenced nranks={nranks}"));
    }
}

#[test]
fn owned_overlapped_matches_oracle_bitwise() {
    // 2 worker threads per rank: the rank-crossing task graph actually runs
    // concurrently over owned-only storage, so a task touching a non-owned
    // fab would fault rather than silently read replicated data.
    let reference = oracle(4);
    for nranks in ranks_under_test() {
        let cfg = ramp_builder()
            .nranks(nranks)
            .threads(2)
            .dist_overlap(true)
            .build();
        let owned = run_owned(cfg, 4);
        assert_partitions_oracle(&owned, &reference, &format!("overlapped nranks={nranks}"));
    }
}

#[test]
fn owned_is_invariant_under_adversarial_schedules() {
    // Seeded adversarial linearizations of each rank's stage graph: bitwise
    // identity proves the owned path's dependency edges suffice even when
    // the executor is hostile.
    let reference = oracle(4);
    for nranks in ranks_under_test() {
        for seed in [0u64, 0x9e3779b97f4a7c15] {
            let cfg = ramp_builder()
                .nranks(nranks)
                .threads(2)
                .dist_overlap(true)
                .sched_seed(seed)
                .build();
            let owned = run_owned(cfg, 4);
            assert_partitions_oracle(
                &owned,
                &reference,
                &format!("adversarial seed {seed:#x} nranks={nranks}"),
            );
        }
    }
}

#[test]
fn owned_composes_with_the_sanitizer() {
    // fabcheck + nan_poison over owned storage: unallocated placeholder fabs
    // must never be poisoned, swept, or trapped, while owned patches keep
    // the full sanitizer discipline.
    let reference = oracle(4);
    for nranks in ranks_under_test() {
        let cfg = ramp_builder()
            .nranks(nranks)
            .threads(2)
            .dist_overlap(true)
            .fabcheck(true)
            .nan_poison(true)
            .build();
        let owned = run_owned(cfg, 4);
        assert_partitions_oracle(&owned, &reference, &format!("sanitized nranks={nranks}"));
    }
}

/// Expected allocation of `mf` on `rank`: the grown boxes of exactly the
/// owned patches (valid + ghosts, times components, times 8 bytes). This is
/// the tentpole memory claim — owned-data stepping is O(owned cells), not
/// O(global).
fn expected_bytes(mf: &crocco::fab::MultiFab, rank: Option<usize>) -> usize {
    let mut total = 0usize;
    for i in 0..mf.nfabs() {
        if let Some(r) = rank {
            if mf.distribution().owner(i) != r {
                continue;
            }
        }
        let cells = mf.valid_box(i).grow(mf.nghost()).num_points() as usize;
        total += cells * mf.ncomp() * std::mem::size_of::<f64>();
    }
    total
}

#[test]
fn owned_memory_per_rank_is_o_owned_cells() {
    for nranks in ranks_under_test() {
        let cfg = ramp_builder().nranks(nranks).threads(1).build();
        // Per rank, per level: (actual, expected-owned, full-replicated)
        // for each of the four solver MultiFabs.
        let per_rank: Vec<Vec<[(usize, usize, usize); 4]>> =
            LocalCluster::run(nranks, move |ep| {
                let gep = GroupEndpoint::full(&ep);
                let mut sim =
                    Simulation::new_owned(cfg.clone(), &gep).expect("fault-free construction");
                drop(gep);
                sim.advance_steps_cluster(4, &ep);
                let rank = Some(ep.rank());
                (0..sim.nlevels())
                    .map(|l| {
                        let lev = sim.level(l);
                        [&lev.state, &lev.du, &lev.coords, &lev.metrics].map(|mf| {
                            (
                                mf.local_data_bytes(),
                                expected_bytes(mf, rank),
                                expected_bytes(mf, None),
                            )
                        })
                    })
                    .collect()
            });
        for (rank, levels) in per_rank.iter().enumerate() {
            for (l, fabs) in levels.iter().enumerate() {
                for (actual, expect, full) in fabs.iter() {
                    assert_eq!(
                        actual, expect,
                        "nranks={nranks} rank {rank} L{l}: allocation must be exactly the \
                         owned grown boxes"
                    );
                    if nranks >= 2 {
                        assert!(
                            actual < full,
                            "nranks={nranks} rank {rank} L{l}: owned allocation must be a \
                             strict subset of the replicated footprint"
                        );
                    }
                }
            }
        }
        // The ranks together hold the whole domain exactly once.
        if let Some(first) = per_rank.first() {
            for (l, fabs) in first.iter().enumerate() {
                for slot in 0..fabs.len() {
                    let total: usize = per_rank.iter().map(|lv| lv[l][slot].0).sum();
                    assert_eq!(
                        total, fabs[slot].2,
                        "nranks={nranks} L{l}: owned allocations must tile the domain"
                    );
                }
            }
        }
    }
}

#[test]
fn owned_restart_from_replicated_checkpoint_matches_oracle() {
    // A replicated checkpoint restored owned (`from_checkpoint_owned`) and
    // advanced across the step-3 regrid must land on the oracle bitwise —
    // the restore path the chaos recovery loop takes after a crash.
    let reference = oracle(4);
    let mut serial = Simulation::new(ramp_builder().build());
    serial.advance_steps(2);
    let bytes = crocco::solver::io::write_checkpoint_bytes(&serial);
    for nranks in ranks_under_test() {
        let chk_bytes = bytes.clone();
        let owned = LocalCluster::run(nranks, move |ep| {
            let chk = crocco::solver::io::parse_checkpoint(&chk_bytes)
                .expect("checkpoint round-trips");
            let cfg = ramp_builder().nranks(nranks).threads(1).build();
            let mut sim = Simulation::from_checkpoint_owned(cfg, &chk, ep.rank());
            sim.advance_steps_cluster(2, &ep);
            patch_bits(&sim)
        });
        assert_partitions_oracle(&owned, &reference, &format!("restart nranks={nranks}"));
    }
}

#[test]
fn owned_chaos_crash_recovery_matches_oracle() {
    // Mid-RK crash on an owned-data run: the step-2 checkpoint was gathered
    // across ranks (each rank holds only its owned patches, yet all seal the
    // identical whole-domain snapshot), the survivors shrink the group,
    // re-own the re-partitioned patches, and still reach the oracle bitwise
    // across the regrid inside the rollback window.
    let reference = oracle(4);
    let chaos = ChaosConfig {
        checkpoint_interval: 2,
        wait_timeout_ms: 120_000,
        crashes: vec![CrashSpec {
            rank: 2,
            step: 3,
            phase: CrashPhase::AfterDt,
        }],
        ..ChaosConfig::default()
    };
    let cfg = ramp_builder().nranks(4).chaos(chaos.clone()).build();
    let (outcomes, _) = LocalCluster::run_with_chaos(4, chaos, move |ep| {
        let gep = GroupEndpoint::full(&ep);
        let mut sim =
            Simulation::new_owned(cfg.clone(), &gep).expect("fault-free construction");
        drop(gep);
        let report = sim.advance_steps_chaos(4, &ep);
        if report.crashed {
            (report, None, None)
        } else {
            (report, Some(patch_bits(&sim)), Some(sim.step_count()))
        }
    });
    let mut survivors = Vec::new();
    for (r, (report, bits, step)) in outcomes.into_iter().enumerate() {
        if r == 2 {
            assert!(report.crashed, "rank 2 was scheduled to crash");
            continue;
        }
        assert!(!report.crashed, "rank {r} must survive");
        assert_eq!(step, Some(4), "rank {r} must reach the target step");
        assert_eq!(report.rollback_steps, vec![2], "rank {r}: one rollback to step 2");
        assert!(report.checkpoints >= 1 && report.checkpoint_bytes > 0);
        survivors.push(bits.unwrap());
    }
    assert_partitions_oracle(&survivors, &reference, "chaos recovery");
}
