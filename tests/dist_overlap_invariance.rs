//! The distributed stage-overlap data path (`SolverConfig::dist_overlap` on
//! a `LocalCluster`) must be *observationally invisible*: partitioning the
//! RK stages across ranks, shipping halos as tag-matched messages, and
//! overlapping them with interior sweeps may only change the schedule, never
//! a single bit of the solution. These tests run the compression-ramp
//! configuration (sheared curvilinear grid, two AMR levels, regridding
//! mid-run) single-rank, fenced-distributed, and overlapped-distributed at
//! 1/2/4 ranks and demand bitwise-identical state on every rank. DESIGN.md
//! §4f spells out why this holds; this test is the end-to-end proof.
//!
//! `CROCCO_DIST_RANKS` (comma-separated, e.g. `CROCCO_DIST_RANKS=2`)
//! restricts the rank counts under test — the CI matrix uses it to split the
//! 2-rank and 4-rank legs into separate jobs.

use crocco::runtime::LocalCluster;
use crocco::solver::config::{CodeVersion, SolverConfig, SolverConfigBuilder};
use crocco::solver::driver::Simulation;
use crocco::solver::problems::ProblemKind;

/// The shrunk compression-ramp configuration from `tests/overlap_invariance.rs`:
/// 4 steps with `regrid_freq(3)` crosses a regrid, so the skeleton caches are
/// invalidated and rebuilt mid-run.
fn ramp_builder() -> SolverConfigBuilder {
    SolverConfig::builder()
        .problem(ProblemKind::Ramp)
        .extents(48, 24, 8)
        .version(CodeVersion::V2_0)
        .max_levels(2)
        .blocking_factor(4)
        .max_grid_size(16)
        .regrid_freq(3)
        .cfl(0.5)
}

/// Rank counts under test (overridable via `CROCCO_DIST_RANKS`).
fn ranks_under_test() -> Vec<usize> {
    std::env::var("CROCCO_DIST_RANKS")
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|t| t.trim().parse::<usize>().ok())
                .collect::<Vec<_>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![1, 2, 4])
}

/// Flattens every level's valid state to bit patterns, so the comparison is
/// exact (NaN-safe, -0.0-safe).
fn state_bits(sim: &Simulation) -> Vec<u64> {
    let mut bits = Vec::new();
    for l in 0..sim.nlevels() {
        let state = &sim.level(l).state;
        for i in 0..state.nfabs() {
            let fab = state.fab(i);
            for c in 0..state.ncomp() {
                for p in state.valid_box(i).cells() {
                    bits.push(fab.get(p, c).to_bits());
                }
            }
        }
    }
    bits
}

/// Single-process reference via the ordinary `advance_steps` driver.
fn run_single(steps: u32) -> Vec<u64> {
    let mut sim = Simulation::new(ramp_builder().build());
    sim.advance_steps(steps);
    state_bits(&sim)
}

/// Runs `steps` on a `LocalCluster` of `nranks` and returns every rank's
/// flattened state bits.
fn run_cluster(cfg: SolverConfig, steps: u32) -> Vec<Vec<u64>> {
    let nranks = cfg.nranks;
    LocalCluster::run(nranks, move |ep| {
        let mut sim = Simulation::new(cfg.clone());
        sim.advance_steps_cluster(steps, &ep);
        state_bits(&sim)
    })
}

#[test]
fn fenced_cluster_matches_single_rank_bitwise() {
    let reference = run_single(4);
    for nranks in ranks_under_test() {
        let cfg = ramp_builder().nranks(nranks).threads(1).build();
        for (rank, bits) in run_cluster(cfg, 4).into_iter().enumerate() {
            assert_eq!(reference.len(), bits.len());
            assert!(
                reference == bits,
                "fenced cluster run diverged bitwise at nranks={nranks}, rank {rank}"
            );
        }
    }
}

#[test]
fn overlapped_cluster_matches_single_rank_bitwise() {
    // 2 worker threads per rank: the rank-crossing task graph actually runs
    // concurrently, so a missing recv-event or send-fence edge has a real
    // chance to corrupt a ghost read.
    let reference = run_single(4);
    for nranks in ranks_under_test() {
        let cfg = ramp_builder()
            .nranks(nranks)
            .threads(2)
            .dist_overlap(true)
            .build();
        for (rank, bits) in run_cluster(cfg, 4).into_iter().enumerate() {
            assert_eq!(reference.len(), bits.len());
            assert!(
                reference == bits,
                "overlapped cluster run diverged bitwise at nranks={nranks}, rank {rank}"
            );
        }
    }
}

#[test]
fn overlapped_cluster_matches_fenced_serial() {
    // threads == 1 exercises the graph executor's deterministic serial path,
    // where sends must have been inserted before the recv events they feed.
    for nranks in ranks_under_test() {
        let fenced = run_cluster(ramp_builder().nranks(nranks).threads(1).build(), 4);
        let graph = run_cluster(
            ramp_builder()
                .nranks(nranks)
                .threads(1)
                .dist_overlap(true)
                .build(),
            4,
        );
        assert!(
            fenced == graph,
            "serial overlapped run diverged from fenced at nranks={nranks}"
        );
    }
}

#[test]
fn dist_overlap_is_invariant_under_adversarial_schedules() {
    // Seeded adversarial linearizations (seed 0 = reverse-priority, plus an
    // arbitrary seed) replace each rank's thread pool with a hostile but
    // legal topological order of its stage graph. Bitwise identity against
    // the single-rank reference proves every dependency edge — including
    // the recv events and send fences — is actually sufficient.
    let reference = run_single(4);
    for nranks in ranks_under_test() {
        for seed in [0u64, 0x9e3779b97f4a7c15] {
            let cfg = ramp_builder()
                .nranks(nranks)
                .threads(2)
                .dist_overlap(true)
                .sched_seed(seed)
                .build();
            for (rank, bits) in run_cluster(cfg, 4).into_iter().enumerate() {
                assert!(
                    reference == bits,
                    "adversarial schedule (seed {seed:#x}) diverged bitwise at \
                     nranks={nranks}, rank {rank}"
                );
            }
        }
    }
}

#[test]
fn dist_overlap_composes_with_the_sanitizer() {
    // dist_overlap + fabcheck + nan_poison together: the distributed graph
    // path must satisfy the sanitizer's aliasing proofs and the du poisoning
    // discipline (du is owner-only under the cluster driver).
    let reference = run_single(4);
    for nranks in ranks_under_test() {
        let cfg = ramp_builder()
            .nranks(nranks)
            .threads(2)
            .dist_overlap(true)
            .fabcheck(true)
            .nan_poison(true)
            .build();
        for (rank, bits) in run_cluster(cfg, 4).into_iter().enumerate() {
            assert!(
                reference == bits,
                "sanitized overlapped run diverged bitwise at nranks={nranks}, rank {rank}"
            );
        }
    }
}
