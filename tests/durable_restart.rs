//! Whole-process-death recovery proof (DESIGN.md §4j): the chaos runtime's
//! in-memory checkpoints survive *rank* deaths, but a batch-system kill, an
//! OOM, or a node loss takes the whole cluster down at once. These tests
//! kill the entire cluster between steps (the writer threads return and
//! every `Simulation` is dropped), then cold-start a *fresh* cluster — of
//! possibly different rank count — from the double-buffered spill directory
//! alone, and demand the restarted run reaches the target step bitwise
//! equal to an uninterrupted oracle.
//!
//! The storage-fault legs drive the same recovery ladder through injected
//! disk damage: a torn slot write falls back to the surviving buffer, a
//! lost manifest falls back to the slot scan, and a full disk degrades to
//! in-memory-only checkpoints with a warning instead of killing the run.
//!
//! `CROCCO_DIST_RANKS` (comma-separated) restricts the writer rank counts —
//! the CI durable job uses it to split the 1/2/4-rank legs.

use crocco::runtime::chaos::{ChaosConfig, CrashPhase, CrashSpec, StorageFault, StorageFaultPlan};
use crocco::runtime::{GroupEndpoint, LocalCluster};
use crocco::solver::cluster_step::ChaosRunReport;
use crocco::solver::config::{CodeVersion, SolverConfig, SolverConfigBuilder};
use crocco::solver::driver::Simulation;
use crocco::solver::durable::CkptError;
use crocco::solver::problems::ProblemKind;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// The compression-ramp configuration shared with
/// `tests/owned_dist_invariance.rs`: sheared curvilinear grid, two AMR
/// levels, `regrid_freq(3)` so restarted runs cross a regrid.
fn ramp_builder() -> SolverConfigBuilder {
    SolverConfig::builder()
        .problem(ProblemKind::Ramp)
        .extents(48, 24, 8)
        .version(CodeVersion::V2_0)
        .max_levels(2)
        .blocking_factor(4)
        .max_grid_size(16)
        .regrid_freq(3)
        .cfl(0.5)
}

/// Writer rank counts under test (overridable via `CROCCO_DIST_RANKS`).
fn ranks_under_test() -> Vec<usize> {
    std::env::var("CROCCO_DIST_RANKS")
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|t| t.trim().parse::<usize>().ok())
                .collect::<Vec<_>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![1, 2, 4])
}

const WAIT_TIMEOUT_MS: u64 = 120_000;

/// A throwaway spill directory; removed on drop.
struct SpillDir {
    path: PathBuf,
}

impl SpillDir {
    fn new(tag: &str) -> Self {
        static SEQ: AtomicUsize = AtomicUsize::new(0);
        let path = std::env::temp_dir().join(format!(
            "crocco_durable_{tag}_{}_{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        SpillDir { path }
    }
}

impl Drop for SpillDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

/// Per-patch valid-state bit patterns of every allocated patch, keyed by
/// `(level, patch)` — same oracle comparison as the owned-data invariance
/// suite.
fn patch_bits(sim: &Simulation) -> BTreeMap<(usize, usize), Vec<u64>> {
    let mut out = BTreeMap::new();
    for l in 0..sim.nlevels() {
        let state = &sim.level(l).state;
        for i in 0..state.nfabs() {
            if !state.is_allocated(i) {
                continue;
            }
            let fab = state.fab(i);
            let mut bits = Vec::new();
            for c in 0..state.ncomp() {
                for p in state.valid_box(i).cells() {
                    bits.push(fab.get(p, c).to_bits());
                }
            }
            out.insert((l, i), bits);
        }
    }
    out
}

/// The uninterrupted single-process oracle at 4 steps, shared across tests.
fn oracle4() -> &'static BTreeMap<(usize, usize), Vec<u64>> {
    static O: OnceLock<BTreeMap<(usize, usize), Vec<u64>>> = OnceLock::new();
    O.get_or_init(|| {
        let mut sim = Simulation::new(ramp_builder().build());
        sim.advance_steps(4);
        patch_bits(&sim)
    })
}

/// Asserts the per-rank owned maps partition the oracle bitwise.
fn assert_partitions_oracle(
    owned: &[BTreeMap<(usize, usize), Vec<u64>>],
    reference: &BTreeMap<(usize, usize), Vec<u64>>,
    what: &str,
) {
    let mut seen: BTreeMap<(usize, usize), usize> = BTreeMap::new();
    for (rank, map) in owned.iter().enumerate() {
        for (key, bits) in map {
            let expect = reference
                .get(key)
                .unwrap_or_else(|| panic!("{what}: rank {rank} owns unknown patch {key:?}"));
            assert!(
                bits == expect,
                "{what}: rank {rank} patch {key:?} diverged bitwise from the oracle"
            );
            if let Some(prev) = seen.insert(*key, rank) {
                panic!("{what}: patch {key:?} owned by both rank {prev} and rank {rank}");
            }
        }
    }
    assert_eq!(
        seen.len(),
        reference.len(),
        "{what}: owned union must cover every oracle patch"
    );
}

/// The doomed run: an owned-data cluster spilling every 2 steps, advanced
/// `steps` steps, then killed whole — the closure returns, every thread
/// joins, every `Simulation` and endpoint is dropped. Only the spill
/// directory survives. Returns each rank's chaos report.
fn run_and_die(
    nranks: usize,
    steps: u32,
    dir: &Path,
    storage: Option<StorageFaultPlan>,
) -> Vec<ChaosRunReport> {
    let chaos = ChaosConfig {
        checkpoint_interval: 2,
        wait_timeout_ms: WAIT_TIMEOUT_MS,
        storage,
        ..ChaosConfig::default()
    };
    let cfg = ramp_builder()
        .nranks(nranks)
        .threads(1)
        .chaos(chaos.clone())
        .spill_dir(dir)
        .build();
    let (reports, _) = LocalCluster::run_with_chaos(nranks, chaos, move |ep| {
        let gep = GroupEndpoint::full(&ep);
        let mut sim = Simulation::new_owned(cfg.clone(), &gep).expect("fault-free construction");
        drop(gep);
        sim.advance_steps_chaos(steps, &ep)
    });
    reports
}

/// Coordinated cold restart: a fresh cluster of `nranks` ranks — no shared
/// state with the dead run — independently recovers from the spill
/// directory, checks it landed on the expected step and fallback status,
/// advances to step 4, and returns every rank's owned patch bits.
fn cold_restart(
    nranks: usize,
    dir: &Path,
    expect_step: u32,
    expect_fallback: bool,
) -> Vec<BTreeMap<(usize, usize), Vec<u64>>> {
    let dir = dir.to_path_buf();
    LocalCluster::run(nranks, move |ep| {
        let cfg = ramp_builder().nranks(nranks).threads(1).build();
        let (mut sim, info) = Simulation::from_checkpoint_file_owned(cfg, &dir, ep.rank())
            .expect("cold restart must recover");
        assert_eq!(info.step, expect_step, "recovered from the wrong step");
        assert_eq!(
            info.fallback.is_some(),
            expect_fallback,
            "unexpected recovery path: {:?}",
            info.fallback
        );
        assert_eq!(sim.step_count(), expect_step);
        sim.advance_steps_cluster(4 - expect_step, &ep);
        patch_bits(&sim)
    })
}

/// Kill the whole cluster between steps; cold-restart a fresh one — same
/// *and different* rank counts — from the spill directory alone. With
/// `checkpoint_interval(2)` and 3 steps of progress, the durable state is
/// the step-2 spill: the restart must roll back past the lost in-memory
/// step-3 state, re-partition for the new rank count, and still land on the
/// 4-step oracle bitwise.
#[test]
fn whole_cluster_death_cold_restarts_bitwise() {
    for writer in ranks_under_test() {
        let dir = SpillDir::new("death");
        let reports = run_and_die(writer, 3, &dir.path, None);
        assert_eq!(
            reports[0].spills, 2,
            "writer rank 0 spills at steps 0 and 2 (interval 2)"
        );
        assert_eq!(reports[0].spill_failures, 0);
        for r in &reports[1..] {
            assert_eq!(r.spills, 0, "only logical rank 0 spills");
        }
        // Same rank count, plus a genuinely different one (grow or shrink).
        let other = if writer == 1 { 2 } else { writer / 2 };
        for reader in [writer, other] {
            let owned = cold_restart(reader, &dir.path, 2, false);
            assert_partitions_oracle(
                &owned,
                oracle4(),
                &format!("cold restart {writer}→{reader} ranks"),
            );
        }
    }
}

/// A torn slot write (power loss mid-`write`): the step-4 spill tears the
/// slot being overwritten, and the manifest — written after the store
/// claimed success — vouches for bytes that never landed. Recovery must
/// reject the torn slot and fall back to the surviving buffer's step-2
/// checkpoint, then still reach the oracle.
#[test]
fn torn_mid_write_falls_back_to_surviving_slot() {
    // Write attempts: 0 = chk_A (step 0), 1 = manifest, 2 = chk_B (step 2),
    // 3 = manifest, 4 = chk_A again (step 4, torn), 5 = manifest.
    let plan = StorageFaultPlan {
        scheduled: vec![(4, StorageFault::TornWrite)],
        ..StorageFaultPlan::quiet(0x70E4_5EED)
    };
    let dir = SpillDir::new("torn");
    let reports = run_and_die(2, 5, &dir.path, Some(plan));
    assert_eq!(reports[0].spills, 3, "spills at steps 0, 2, 4");
    let owned = cold_restart(2, &dir.path, 2, true);
    assert_partitions_oracle(&owned, oracle4(), "torn-write fallback");
}

/// Both manifest writes silently lost (e.g. a dropped metadata journal):
/// recovery cannot trust any manifest and must scan the slots, each of
/// which carries its own whole-file CRC, and restart from the highest
/// sealed step.
#[test]
fn manifest_loss_recovers_from_slot_scan() {
    let plan = StorageFaultPlan {
        scheduled: vec![
            (1, StorageFault::LoseWrite),
            (3, StorageFault::LoseWrite),
        ],
        ..StorageFaultPlan::quiet(0x1057_3EED)
    };
    let dir = SpillDir::new("noman");
    let reports = run_and_die(2, 3, &dir.path, Some(plan));
    assert_eq!(reports[0].spills, 2);
    // chk_A holds step 0, chk_B holds step 2; the scan must pick step 2.
    let owned = cold_restart(2, &dir.path, 2, true);
    assert_partitions_oracle(&owned, oracle4(), "manifest-loss slot scan");
}

/// A full disk must degrade, not kill: every spill fails with `NoSpace`
/// (never retried — it is not transient), the run warns and continues on
/// in-memory checkpoints, and a concurrent rank crash still recovers
/// through the in-memory rollback path to the bitwise oracle.
#[test]
fn disk_full_degrades_to_in_memory_checkpoints() {
    let plan = StorageFaultPlan {
        nospace_after: Some(0),
        ..StorageFaultPlan::quiet(0xD15C_F011)
    };
    let chaos = ChaosConfig {
        checkpoint_interval: 2,
        wait_timeout_ms: WAIT_TIMEOUT_MS,
        storage: Some(plan),
        crashes: vec![CrashSpec {
            rank: 1,
            step: 3,
            phase: CrashPhase::AfterDt,
        }],
        ..ChaosConfig::default()
    };
    let dir = SpillDir::new("full");
    let cfg = ramp_builder()
        .nranks(2)
        .chaos(chaos.clone())
        .spill_dir(&dir.path)
        .build();
    let (outcomes, _) = LocalCluster::run_with_chaos(2, chaos, move |ep| {
        let mut sim = Simulation::new(cfg.clone());
        let report = sim.advance_steps_chaos(4, &ep);
        let bits = (!report.crashed).then(|| (patch_bits(&sim), sim.step_count()));
        (report, bits)
    });
    let (report, survivor) = &outcomes[0];
    assert!(!report.crashed, "rank 0 must survive the disk-full run");
    assert_eq!(report.spills, 0, "nothing lands on a full disk");
    assert!(
        report.spill_failures >= 2,
        "both spill attempts must fail ({})",
        report.spill_failures
    );
    assert_eq!(report.rollback_steps, vec![2], "in-memory rollback still works");
    let (bits, step) = survivor.as_ref().unwrap();
    assert_eq!(*step, 4, "the run must complete despite the dead store");
    assert_eq!(bits, oracle4(), "degraded run diverged from the oracle");
    let (crashed, _) = &outcomes[1];
    assert!(crashed.crashed, "rank 1 was scheduled to crash");
    // And the directory is unusable for restart — typed, not a panic.
    let err = Simulation::from_checkpoint_file(ramp_builder().build(), &dir.path)
        .map(|_| ())
        .unwrap_err();
    assert!(
        matches!(err, CkptError::NoValidSlot { .. }),
        "empty spill dir must be a typed NoValidSlot, got {err}"
    );
}

/// Legacy upgrade (DESIGN.md §4j): a `CROCCO-CHK 1` checkpoint — no CRC
/// trailer — restored and re-spilled must produce a sealed v2 slot, and a
/// second recover-and-respill round trip must be bitwise stable (the
/// upgrade is idempotent, so chained batch jobs never drift).
#[test]
fn v1_checkpoint_upgrades_to_stable_v2_slot() {
    use crocco::solver::durable::DurableCheckpointer;
    use crocco::solver::io::{parse_checkpoint, write_checkpoint_bytes};

    let mut sim = Simulation::new(ramp_builder().build());
    sim.advance_steps(2);
    let v2 = write_checkpoint_bytes(&sim);
    // Downgrade to the legacy format: version byte '1', no CRC trailer
    // ("\ncrc xxxxxxxx\n", 14 bytes).
    let mut v1 = v2[..v2.len() - 14].to_vec();
    assert_eq!(&v1[..12], b"CROCCO-CHK 2");
    v1[11] = b'1';

    let chk = parse_checkpoint(&v1).expect("legacy v1 checkpoints must parse");
    assert_eq!(chk.step, 2);
    let restored = Simulation::from_checkpoint(ramp_builder().build(), &chk);

    let dir = SpillDir::new("v1up");
    let first = write_checkpoint_bytes(&restored);
    let mut sp = DurableCheckpointer::open(&dir.path, None).expect("open spill dir");
    let slot1 = sp.spill(restored.step_count(), &first).expect("first spill");
    let sealed = std::fs::read(dir.path.join(slot1)).unwrap();
    assert!(sealed.starts_with(b"CROCCO-CHK 2"), "re-spill must seal as v2");
    assert_eq!(sealed, first, "the slot holds exactly the sealed bytes");

    // Round trip: recover, rebuild, re-spill into the other slot.
    let (resumed, info) =
        Simulation::from_checkpoint_file(ramp_builder().build(), &dir.path).expect("recover");
    assert_eq!(info.step, 2);
    assert!(info.fallback.is_none());
    let second = write_checkpoint_bytes(&resumed);
    assert_eq!(second, first, "upgrade round trip must be bitwise stable");
    let mut sp2 = DurableCheckpointer::open(&dir.path, None).expect("reopen spill dir");
    let slot2 = sp2.spill(resumed.step_count(), &second).expect("second spill");
    assert_ne!(slot1, slot2, "resume-aware rotation must flip the buffer");
    assert_eq!(
        std::fs::read(dir.path.join(slot2)).unwrap(),
        sealed,
        "both buffers hold identical sealed v2 bytes"
    );

    // And the upgraded state marches on: 2 more steps land on the oracle.
    let mut march = resumed;
    march.advance_steps(2);
    assert_eq!(&patch_bits(&march), oracle4(), "upgraded run diverged");
}
