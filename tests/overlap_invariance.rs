//! The task-graph execution path (`SolverConfig::overlap`) must be
//! *observationally invisible*: overlapping halo exchange with interior
//! sweeps may only change the inter-patch schedule, never a single bit of
//! the solution. These tests run the compression-ramp configuration (sheared
//! curvilinear grid, two AMR levels, regridding mid-run) with the barrier
//! and task-graph executors and demand bitwise-identical state — not merely
//! close. DESIGN.md §4e spells out why this holds; this test is the
//! end-to-end proof.

use crocco::solver::config::{CodeVersion, SolverConfig, SolverConfigBuilder};
use crocco::solver::driver::Simulation;
use crocco::solver::problems::ProblemKind;
use proptest::prelude::*;

/// The shrunk compression-ramp configuration from `tests/fabcheck_invariance.rs`.
fn ramp_builder(extent_x: i64, cfl: f64) -> SolverConfigBuilder {
    SolverConfig::builder()
        .problem(ProblemKind::Ramp)
        .extents(extent_x, extent_x / 2, 8)
        .version(CodeVersion::V2_0)
        .max_levels(2)
        .blocking_factor(4)
        .max_grid_size(16)
        .regrid_freq(3)
        .cfl(cfl)
}

/// Advances `steps` and flattens every level's valid state to bit patterns,
/// so the comparison is exact (NaN-safe, -0.0-safe).
fn run_bits(cfg: SolverConfig, steps: u32) -> Vec<u64> {
    let mut sim = Simulation::new(cfg);
    sim.advance_steps(steps);
    let mut bits = Vec::new();
    for l in 0..sim.nlevels() {
        let state = &sim.level(l).state;
        for i in 0..state.nfabs() {
            let fab = state.fab(i);
            for c in 0..state.ncomp() {
                for p in state.valid_box(i).cells() {
                    bits.push(fab.get(p, c).to_bits());
                }
            }
        }
    }
    bits
}

#[test]
fn overlap_matches_barrier_bitwise_multithreaded() {
    // 4 worker threads: the task graph actually runs concurrently, so any
    // missing dependency edge has a real chance to corrupt a ghost read.
    let barrier = run_bits(ramp_builder(48, 0.5).threads(4).build(), 4);
    let graph = run_bits(ramp_builder(48, 0.5).threads(4).overlap(true).build(), 4);
    assert_eq!(barrier.len(), graph.len());
    assert!(barrier == graph, "task-graph run diverged bitwise");
}

#[test]
fn overlap_matches_barrier_bitwise_serial() {
    // threads == 1 exercises the executor's deterministic serial path.
    let barrier = run_bits(ramp_builder(48, 0.5).threads(1).build(), 4);
    let graph = run_bits(ramp_builder(48, 0.5).threads(1).overlap(true).build(), 4);
    assert!(barrier == graph, "serial task-graph run diverged bitwise");
}

#[test]
fn overlap_is_invariant_under_adversarial_schedules() {
    // Seeded adversarial linearizations (seed 0 = reverse-priority, plus an
    // arbitrary seed) replace the thread pool with a hostile but legal
    // topological order. Bitwise identity against the barrier run is the
    // taskcheck layer's end-to-end soundness proof: if any dependency edge
    // were missing, some legal order would expose it as a diverging bit.
    let barrier = run_bits(ramp_builder(48, 0.5).threads(4).build(), 4);
    for seed in [0u64, 0x9e3779b97f4a7c15] {
        let adversarial = run_bits(
            ramp_builder(48, 0.5)
                .threads(4)
                .overlap(true)
                .sched_seed(seed)
                .build(),
            4,
        );
        assert!(
            barrier == adversarial,
            "adversarial schedule (seed {seed:#x}) diverged bitwise"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    #[test]
    fn overlap_is_bitwise_invisible_on_the_ramp(
        cfl in prop::sample::select(vec![0.4f64, 0.5]),
        steps in 3u32..5,
        threads in prop::sample::select(vec![2usize, 4]),
    ) {
        let barrier = run_bits(ramp_builder(48, cfl).threads(threads).build(), steps);
        let graph = run_bits(
            ramp_builder(48, cfl).threads(threads).overlap(true).build(),
            steps,
        );
        prop_assert_eq!(barrier.len(), graph.len());
        prop_assert!(barrier == graph, "task-graph run diverged bitwise");
    }

    #[test]
    fn overlap_composes_with_the_sanitizer(
        steps in 3u32..4,
    ) {
        // overlap + fabcheck + nan_poison together: the graph path must
        // satisfy the sanitizer's aliasing proofs and ghost-epoch discipline.
        let plain = run_bits(ramp_builder(48, 0.5).threads(4).build(), steps);
        let checked = run_bits(
            ramp_builder(48, 0.5)
                .threads(4)
                .overlap(true)
                .fabcheck(true)
                .nan_poison(true)
                .build(),
            steps,
        );
        prop_assert!(plain == checked, "sanitized task-graph run diverged bitwise");
    }
}
