//! Integration test: LES mode (§II-A) — the Smagorinsky SGS closure adds
//! dissipation on under-resolved smooth flow and leaves uniform flow alone.

use crocco::solver::config::{CodeVersion, SolverConfig};
use crocco::solver::driver::Simulation;
use crocco::solver::problems::ProblemKind;
use crocco::solver::state::cons;

fn vortex(les: Option<f64>) -> Simulation {
    let mut b = SolverConfig::builder()
        .problem(ProblemKind::IsentropicVortex)
        .extents(16, 16, 4)
        .version(CodeVersion::V1_1)
        .cfl(0.4);
    if let Some(cs) = les {
        b = b.les(cs);
    }
    Simulation::new(b.build())
}

/// Resolved kinetic energy of the coarsest level.
fn kinetic_energy(sim: &Simulation) -> f64 {
    let state = &sim.level(0).state;
    let mut ke = 0.0;
    for i in 0..state.nfabs() {
        let valid = state.valid_box(i);
        for p in valid.cells() {
            let rho = state.fab(i).get(p, cons::RHO);
            let mx = state.fab(i).get(p, cons::MX);
            let my = state.fab(i).get(p, cons::MY);
            let mz = state.fab(i).get(p, cons::MZ);
            ke += 0.5 * (mx * mx + my * my + mz * mz) / rho;
        }
    }
    ke
}

#[test]
fn sgs_model_dissipates_resolved_fluctuations() {
    let mut dns = vortex(None);
    let mut les = vortex(Some(0.3)); // deliberately strong Cs for a clear signal
    let t_end = 0.2;
    while dns.time() < t_end {
        dns.step();
    }
    while les.time() < t_end {
        les.step();
    }
    assert!(!dns.has_nonfinite() && !les.has_nonfinite());
    // The mean flow carries most KE; compare the *fluctuation* KE around the
    // uniform (1,1,0) advection instead.
    let fluct = |sim: &Simulation| {
        let state = &sim.level(0).state;
        let mut acc = 0.0;
        for i in 0..state.nfabs() {
            let valid = state.valid_box(i);
            for p in valid.cells() {
                let rho = state.fab(i).get(p, cons::RHO);
                let du = state.fab(i).get(p, cons::MX) / rho - 1.0;
                let dv = state.fab(i).get(p, cons::MY) / rho - 1.0;
                acc += du * du + dv * dv;
            }
        }
        acc
    };
    let f_dns = fluct(&dns);
    let f_les = fluct(&les);
    assert!(
        f_les < f_dns,
        "SGS must dissipate vortex fluctuations: DNS {f_dns} vs LES {f_les}"
    );
    // But not obliterate them.
    assert!(f_les > 0.2 * f_dns, "LES dissipating implausibly hard");
}

#[test]
fn sgs_is_inert_on_uniform_flow() {
    // The vortex far field is uniform flow: with LES enabled the run must
    // stay finite and the global kinetic energy must be essentially
    // unchanged over a few steps (the SGS term vanishes where |S| = 0 and
    // only acts in the small vortex core).
    let cfg = SolverConfig::builder()
        .problem(ProblemKind::IsentropicVortex)
        .extents(16, 16, 4)
        .version(CodeVersion::V1_1)
        .les(0.2)
        .build();
    let mut sim = Simulation::new(cfg);
    let ke0 = kinetic_energy(&sim);
    sim.advance_steps(5);
    let ke1 = kinetic_energy(&sim);
    assert!(!sim.has_nonfinite());
    assert!((ke1 - ke0).abs() / ke0 < 0.05, "KE drift {}", (ke1 - ke0) / ke0);
}
