//! Subcycling invariance (docs/ARCHITECTURE.md §Subcycling): per-level time
//! stepping must degenerate *bitwise* to lockstep when there is nothing to
//! subcycle, must conserve exactly where lockstep AMR only approximately
//! does (time-interpolated ghosts + refluxing close the coarse/fine flux
//! budget), and must not care how the work is executed — barrier loop,
//! overlapped task graph, or owned-data distribution.

use crocco::runtime::{GroupEndpoint, LocalCluster};
use crocco::solver::config::{CodeVersion, InterpKind, SolverConfig, SolverConfigBuilder};
use crocco::solver::driver::Simulation;
use crocco::solver::problems::ProblemKind;
use std::collections::BTreeMap;

/// Per-patch valid-state bit patterns of every allocated patch.
fn patch_bits(sim: &Simulation) -> BTreeMap<(usize, usize), Vec<u64>> {
    let mut out = BTreeMap::new();
    for l in 0..sim.nlevels() {
        let state = &sim.level(l).state;
        for i in 0..state.nfabs() {
            if !state.is_allocated(i) {
                continue;
            }
            let fab = state.fab(i);
            let mut bits = Vec::new();
            for c in 0..state.ncomp() {
                for p in state.valid_box(i).cells() {
                    bits.push(fab.get(p, c).to_bits());
                }
            }
            out.insert((l, i), bits);
        }
    }
    out
}

/// Single-level compression ramp: subcycling with nothing finer must be the
/// identity transformation on the step loop.
fn single_level() -> SolverConfigBuilder {
    SolverConfig::builder()
        .problem(ProblemKind::Ramp)
        .extents(32, 16, 8)
        .version(CodeVersion::V2_0)
        .max_levels(1)
        .cfl(0.5)
}

/// The periodic isentropic vortex with an interior refined region: the
/// conservation workload. Fully periodic and inviscid, so the only way mass,
/// momentum, or energy can leak is through a coarse/fine interface-flux
/// mismatch. `PiecewiseConstant` interpolation keeps regrid remaps
/// mean-preserving so refluxing is the *only* conservation mechanism under
/// test.
fn vortex(levels: usize) -> SolverConfigBuilder {
    SolverConfig::builder()
        .problem(ProblemKind::IsentropicVortex)
        .extents(32, 32, 8)
        .version(CodeVersion::V2_0)
        .max_levels(levels)
        .blocking_factor(4)
        .max_grid_size(16)
        .regrid_freq(3)
        .interpolator(InterpKind::PiecewiseConstant)
        .cfl(0.4)
}

#[test]
fn single_level_subcycling_is_bitwise_lockstep() {
    // Barrier mode.
    let mut lock = Simulation::new(single_level().build());
    let mut sub = Simulation::new(single_level().subcycling(true).build());
    lock.advance_steps(3);
    sub.advance_steps(3);
    assert_eq!(
        patch_bits(&lock),
        patch_bits(&sub),
        "barrier: single-level subcycling diverged from lockstep"
    );
    // Overlapped task-graph mode.
    let mut lock = Simulation::new(single_level().overlap(true).threads(2).build());
    let mut sub = Simulation::new(
        single_level()
            .overlap(true)
            .threads(2)
            .subcycling(true)
            .build(),
    );
    lock.advance_steps(3);
    sub.advance_steps(3);
    assert_eq!(
        patch_bits(&lock),
        patch_bits(&sub),
        "overlap: single-level subcycling diverged from lockstep"
    );
}

#[test]
fn overlapped_subcycling_matches_the_barrier_path_bitwise() {
    // Multi-level: the overlapped path records interface fluxes inside the
    // boundary-band sweep tasks; the barrier path in a dedicated pass. Same
    // values, same fold order — the solutions must agree bitwise.
    let mut barrier = Simulation::new(vortex(2).subcycling(true).build());
    let mut overlap = Simulation::new(
        vortex(2)
            .subcycling(true)
            .overlap(true)
            .threads(2)
            .build(),
    );
    assert!(barrier.nlevels() > 1, "vortex must refine for this test");
    barrier.advance_steps(4);
    overlap.advance_steps(4);
    assert_eq!(
        patch_bits(&barrier),
        patch_bits(&overlap),
        "overlapped subcycling diverged from the barrier path"
    );
}

#[test]
fn subcycling_conserves_across_regrids_where_lockstep_amr_drifts() {
    // The first step absorbs the one-time AverageDown of the initial
    // condition (fine and coarse both sample the IC independently, so the
    // first restriction shifts the level-0 integral once, in lockstep and
    // subcycled runs alike). Conservation is measured from step 1 onward: 4
    // further steps with regrid_freq(3) cross a regrid, so the budget also
    // covers the remap path.
    let mut sub = Simulation::new(vortex(2).subcycling(true).build());
    assert!(sub.nlevels() > 1, "vortex must refine for this test");
    sub.advance_steps(1);
    let before: Vec<f64> = (0..5).map(|c| sub.conserved_integral(c)).collect();
    sub.advance_steps(4);
    let after: Vec<f64> = (0..5).map(|c| sub.conserved_integral(c)).collect();
    for c in 0..5 {
        let drift = ((after[c] - before[c]) / before[c].abs().max(1e-300)).abs();
        assert!(
            drift < 1e-12,
            "component {c}: subcycled integral drifted by {drift:e} ({} -> {})",
            before[c],
            after[c]
        );
    }
    // The same mesh marched lockstep (no refluxing) leaks through the
    // interface: measurably above the subcycled drift, or the test proves
    // nothing.
    let mut lock = Simulation::new(vortex(2).build());
    lock.advance_steps(1);
    let lb: Vec<f64> = (0..5).map(|c| lock.conserved_integral(c)).collect();
    lock.advance_steps(4);
    let la: Vec<f64> = (0..5).map(|c| lock.conserved_integral(c)).collect();
    let worst_lock = (0..5)
        .map(|c| ((la[c] - lb[c]) / lb[c].abs().max(1e-300)).abs())
        .fold(0.0f64, f64::max);
    assert!(
        worst_lock > 1e-12,
        "lockstep AMR unexpectedly conserved ({worst_lock:e}) — the vortex no longer \
         exercises the interface and this test is vacuous"
    );
}

/// Rank counts under test (overridable via `CROCCO_DIST_RANKS`) — the same
/// convention as `tests/owned_dist_invariance.rs`, so the CI matrix can
/// split rank counts into separate jobs.
fn ranks_under_test() -> Vec<usize> {
    std::env::var("CROCCO_DIST_RANKS")
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|t| t.trim().parse::<usize>().ok())
                .collect::<Vec<_>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![1, 2, 4])
}

/// Runs `steps` owned-data on a `LocalCluster` of `cfg.nranks` and returns
/// every rank's owned patch bits.
fn run_owned(cfg: SolverConfig, steps: u32) -> Vec<BTreeMap<(usize, usize), Vec<u64>>> {
    let nranks = cfg.nranks;
    LocalCluster::run(nranks, move |ep| {
        let gep = GroupEndpoint::full(&ep);
        let mut sim = Simulation::new_owned(cfg.clone(), &gep).expect("fault-free construction");
        drop(gep);
        sim.advance_steps_cluster(steps, &ep);
        patch_bits(&sim)
    })
}

/// Asserts the per-rank owned maps partition the serial reference: each
/// rank's patches match bitwise, every reference patch is owned by exactly
/// one rank, and no rank holds a patch the reference lacks.
fn assert_partitions_reference(
    owned: &[BTreeMap<(usize, usize), Vec<u64>>],
    reference: &BTreeMap<(usize, usize), Vec<u64>>,
    what: &str,
) {
    let mut seen: BTreeMap<(usize, usize), usize> = BTreeMap::new();
    for (rank, map) in owned.iter().enumerate() {
        for (key, bits) in map {
            let expect = reference
                .get(key)
                .unwrap_or_else(|| panic!("{what}: rank {rank} owns unknown patch {key:?}"));
            assert!(
                bits == expect,
                "{what}: rank {rank} patch {key:?} diverged bitwise from the serial run"
            );
            if let Some(prev) = seen.insert(*key, rank) {
                panic!("{what}: patch {key:?} owned by both rank {prev} and rank {rank}");
            }
        }
    }
    assert_eq!(
        seen.len(),
        reference.len(),
        "{what}: owned union must cover every serial patch"
    );
}

#[test]
fn owned_distributed_subcycling_matches_the_serial_path_bitwise() {
    // The serial subcycled run is the oracle; the owned-data cluster must
    // partition it bitwise at every rank count — per-level dt with one
    // allreduce, old-state gathers for the time-interpolated fill, fine-part
    // reflux shipping onto zeroed accumulators, and the distributed
    // AverageDown all preserve the serial fold orders (docs/DISTRIBUTED.md
    // §Subcycled steps). 4 steps cross the step-3 regrid, so the subcycled
    // registers also survive a distributed re-partition. Both the fenced and
    // the overlapped rank-crossing executors are on the hook.
    let mut serial = Simulation::new(vortex(2).subcycling(true).build());
    assert!(serial.nlevels() > 1, "vortex must refine for this test");
    serial.advance_steps(4);
    let reference = patch_bits(&serial);
    for nranks in ranks_under_test() {
        for (overlap, threads) in [(false, 1usize), (true, 2)] {
            let cfg = vortex(2)
                .subcycling(true)
                .owned_dist(true)
                .nranks(nranks)
                .dist_overlap(overlap)
                .threads(threads)
                .build();
            let owned = run_owned(cfg, 4);
            assert_partitions_reference(
                &owned,
                &reference,
                &format!("owned subcycling nranks={nranks} overlap={overlap}"),
            );
        }
    }
}

#[test]
fn subcycling_advances_fewer_cell_updates_on_a_deep_hierarchy() {
    let mut sub = Simulation::new(vortex(3).subcycling(true).build());
    assert!(
        sub.nlevels() >= 3,
        "need a ≥3-level hierarchy, got {}",
        sub.nlevels()
    );
    let rs = sub.advance_steps(2);
    let mut lock = Simulation::new(vortex(3).build());
    let rl = lock.advance_steps(2);
    // Per coarse step, lockstep advances Σ_ℓ N_ℓ cells; subcycling advances
    // Σ_ℓ N_ℓ·2^ℓ *fine* substeps but needs 2^ℓ_max fewer coarse steps to
    // reach the same time. Compare per unit simulated time.
    let sub_rate = rs.cell_updates as f64 / sub.report().final_time;
    let lock_rate = rl.cell_updates as f64 / lock.report().final_time;
    assert!(
        sub_rate < lock_rate,
        "subcycling must advance strictly fewer cell-updates per unit time \
         (subcycled {sub_rate:.3e}/t vs lockstep {lock_rate:.3e}/t)"
    );
}
