//! Integration test: the full AMR pipeline on the DMR problem — tagging,
//! clustering, nesting, two-level fill, regridding with data remap,
//! AverageDown — stays physical and accounts its grid savings.

use crocco::solver::config::{CodeVersion, SolverConfig};
use crocco::solver::driver::Simulation;
use crocco::solver::problems::ProblemKind;
use crocco::solver::state::cons;

fn dmr(levels: usize, version: CodeVersion) -> SolverConfig {
    SolverConfig::builder()
        .problem(ProblemKind::DoubleMach)
        .extents(48, 16, 8)
        .version(version)
        .max_levels(levels)
        .regrid_freq(4)
        .nranks(6)
        .build()
}

#[test]
fn shock_triggers_refinement_at_startup() {
    let sim = Simulation::new(dmr(2, CodeVersion::V1_2));
    assert_eq!(sim.nlevels(), 2, "Mach-10 shock must be tagged and refined");
    // The fine level must cover the initial shock foot at x0 = 1/6 along the
    // bottom; shock x-index at level 1 around (1/6)/4 * 96 = 4.
    let hull = sim.hierarchy().level(1).ba.hull();
    assert!(hull.lo()[0] <= 8, "fine hull {hull:?} misses the shock foot");
}

#[test]
fn dmr_with_amr_stays_physical_through_regrids() {
    let mut sim = Simulation::new(dmr(2, CodeVersion::V2_0));
    let report = sim.advance_steps(10); // crosses regrid boundaries at 4, 8
    assert_eq!(report.steps, 10);
    assert!(!sim.has_nonfinite(), "NaN/Inf after regridding");
    assert!(report.final_time > 0.0);
    // Density bounds: DMR stays within [pre-shock, ~3x post-shock].
    let rho_min = sim.level(0).state.min(cons::RHO);
    let rho_max = sim.level(0).state.max(cons::RHO);
    assert!(rho_min > 0.5, "rho_min {rho_min}");
    assert!(rho_max < 25.0, "rho_max {rho_max}");
}

#[test]
fn amr_saves_most_of_the_equivalent_grid() {
    let mut sim = Simulation::new(dmr(3, CodeVersion::V2_1));
    sim.advance_steps(4);
    let r = sim.hierarchy().reduction_fraction();
    // The paper reports 89-94 % on its production grids; at this toy size
    // the shock still occupies a modest fraction of the domain.
    assert!(
        r > 0.6,
        "reduction {r:.2} too small: AMR is not earning its keep"
    );
    assert!(sim.report().active_points < sim.report().equivalent_points);
}

#[test]
fn amr_and_uniform_agree_on_integrals_early() {
    // The DMR is an open system (post-shock inflow feeds mass), so compare
    // at equal *physical time*, not equal step count — the AMR run's finer
    // level halves its dt.
    let mut amr = Simulation::new(dmr(2, CodeVersion::V1_2));
    let mut uniform = Simulation::new(dmr(1, CodeVersion::V1_1));
    let t_end = 2.0e-3;
    while amr.time() < t_end {
        amr.step();
    }
    while uniform.time() < t_end {
        uniform.step();
    }
    // Coarse-level mass (AverageDown keeps the covered coarse cells
    // consistent with the fine solution).
    let ma = amr.conserved_integral(cons::RHO);
    let mu = uniform.conserved_integral(cons::RHO);
    assert!(
        ((ma - mu) / mu).abs() < 6e-3,
        "mass diverged: AMR {ma} (t={}) vs uniform {mu} (t={})",
        amr.time(),
        uniform.time()
    );
}

#[test]
fn regrid_follows_the_moving_shock() {
    let mut sim = Simulation::new(dmr(2, CodeVersion::V2_1));
    let hull0 = sim.hierarchy().level(1).ba.hull();
    // March long enough for the shock to traverse several coarse cells.
    for _ in 0..16 {
        sim.step();
    }
    assert!(sim.nlevels() >= 2, "refinement must persist");
    let hull1 = sim.hierarchy().level(1).ba.hull();
    assert!(
        hull1.hi()[0] > hull0.hi()[0],
        "fine region should advance with the shock: {hull0:?} -> {hull1:?}"
    );
    assert!(!sim.has_nonfinite());
}

#[test]
fn comm_accounting_distinguishes_versions() {
    let run = |v| {
        let mut sim = Simulation::new(dmr(2, v));
        sim.advance_steps(3);
        sim.comm
    };
    let c20 = run(CodeVersion::V2_0);
    let c21 = run(CodeVersion::V2_1);
    // The curvilinear interpolator moves coordinates; trilinear does not —
    // the entire 2.0 vs 2.1 story of Fig. 5 (right).
    assert!(c20.coord_pc_bytes > 0);
    assert_eq!(c21.coord_pc_bytes, 0);
    assert!(c20.pc_bytes > 0 && c21.pc_bytes > 0);
}
