//! The kernel backends (`SolverConfig::kernel_backend`) must be
//! *observationally invisible*: the SIMD lane kernels and the fused
//! kernel-IR interpreter restructure the hot loops — lane-transposed WENO
//! windows, per-tile fused flux + RK-axpy programs — but never reassociate,
//! reorder, or contract a single per-cell operation, so the solution must
//! match the scalar reference **bitwise** — not merely close. (No ULP
//! tolerance is needed: the only scalar fallbacks, characteristic
//! reconstruction and lane/tile remainders, run the identical scalar code.)
//!
//! These tests run the compression-ramp configuration (sheared curvilinear
//! grid, two AMR levels, a regrid mid-run at `regrid_freq = 3`) under
//! Scalar / Lanes / Fused across the `overlap` × `fabcheck` × `nan_poison`
//! matrix, plus an LES leg exercising the laned viscous/SGS kernels and a
//! tiled leg exercising the partition. DESIGN.md §4h spells out why
//! bitwise identity holds; this suite is the end-to-end proof.
//!
//! The CI `backend` matrix leg sets `CROCCO_BACKEND` to focus one backend
//! per job; unset, every backend is exercised.

use crocco::solver::backend::BackendKind;
use crocco::solver::config::{CodeVersion, SolverConfig, SolverConfigBuilder};
use crocco::solver::driver::Simulation;
use crocco::solver::problems::ProblemKind;
use proptest::prelude::*;

/// The shrunk compression-ramp configuration from `tests/fabcheck_invariance.rs`.
fn ramp_builder(extent_x: i64, cfl: f64) -> SolverConfigBuilder {
    SolverConfig::builder()
        .problem(ProblemKind::Ramp)
        .extents(extent_x, extent_x / 2, 8)
        .version(CodeVersion::V2_0)
        .max_levels(2)
        .blocking_factor(4)
        .max_grid_size(16)
        .regrid_freq(3)
        .cfl(cfl)
}

/// Advances `steps` and flattens every level's valid state to bit patterns,
/// so the comparison is exact (NaN-safe, -0.0-safe).
fn run_bits(cfg: SolverConfig, steps: u32) -> Vec<u64> {
    let mut sim = Simulation::new(cfg);
    sim.advance_steps(steps);
    let mut bits = Vec::new();
    for l in 0..sim.nlevels() {
        let state = &sim.level(l).state;
        for i in 0..state.nfabs() {
            let fab = state.fab(i);
            for c in 0..state.ncomp() {
                for p in state.valid_box(i).cells() {
                    bits.push(fab.get(p, c).to_bits());
                }
            }
        }
    }
    bits
}

/// The non-scalar backends, filtered by the CI matrix' `CROCCO_BACKEND`
/// variable ("scalar" legs still compare Scalar against itself as a smoke
/// run of the harness).
fn backends_under_test() -> Vec<BackendKind> {
    match std::env::var("CROCCO_BACKEND") {
        Ok(name) => {
            let k = BackendKind::parse(&name)
                .unwrap_or_else(|| panic!("unknown CROCCO_BACKEND {name:?}"));
            vec![k]
        }
        Err(_) => vec![BackendKind::Lanes, BackendKind::Fused],
    }
}

#[test]
fn backends_match_scalar_bitwise_on_the_ramp() {
    // 4 steps crosses the regrid at step 3, so the backends also run over
    // freshly regridded patches (and the fused path's tile programs see the
    // new box layout).
    let reference = run_bits(ramp_builder(48, 0.5).threads(4).build(), 4);
    for k in backends_under_test() {
        let got = run_bits(ramp_builder(48, 0.5).threads(4).kernel_backend(k).build(), 4);
        assert_eq!(reference.len(), got.len());
        assert!(reference == got, "{} diverged from scalar bitwise", k.label());
    }
}

/// LES leg on the periodic vortex: the ramp's physical-BC fill leaves the
/// fourth ghost ring (which only the viscous kernel's `grow(4)` primitive
/// pass reads) unfilled, so LES rides the configuration `les_mode.rs`
/// already proves complete.
fn vortex_builder() -> SolverConfigBuilder {
    SolverConfig::builder()
        .problem(ProblemKind::IsentropicVortex)
        .extents(16, 16, 8)
        .version(CodeVersion::V2_0)
        .cfl(0.4)
}

#[test]
fn backends_match_scalar_bitwise_with_les() {
    // LES exercises the laned viscous + Smagorinsky kernels (and the fused
    // program's ViscousFlux op) end to end.
    let reference = run_bits(vortex_builder().threads(2).les(0.16).build(), 4);
    for k in backends_under_test() {
        let got = run_bits(
            vortex_builder().threads(2).les(0.16).kernel_backend(k).build(),
            4,
        );
        assert!(reference == got, "{} diverged under LES", k.label());
    }
}

#[test]
fn tile_partition_is_bitwise_invisible() {
    // Odd tile shapes against the scalar whole-patch sweep: every valid
    // cell lies in exactly one tile, so the partition may not change a bit.
    let reference = run_bits(ramp_builder(48, 0.5).threads(4).build(), 4);
    for k in BackendKind::ALL {
        for (tx, ty, tz) in [(1_000_000, 8, 8), (5, 3, 7)] {
            let got = run_bits(
                ramp_builder(48, 0.5)
                    .threads(4)
                    .kernel_backend(k)
                    .tile_size(tx, ty, tz)
                    .build(),
                4,
            );
            assert!(
                reference == got,
                "{} with tile ({tx},{ty},{tz}) diverged",
                k.label()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    #[test]
    fn backends_compose_with_overlap_fabcheck_poison(
        overlap in any::<bool>(),
        fabcheck in any::<bool>(),
        nan_poison in any::<bool>(),
        steps in 3u32..5,
    ) {
        // The full composition matrix: the task-graph executor consumes the
        // backends through the same `accumulate_rhs` seam, the sanitizer's
        // aliasing proofs and ghost-epoch discipline must hold for the
        // restructured kernels, and poisoning must stay semantics-free.
        let reference = run_bits(
            ramp_builder(48, 0.5)
                .threads(4)
                .overlap(overlap)
                .fabcheck(fabcheck)
                .nan_poison(nan_poison)
                .build(),
            steps,
        );
        for k in backends_under_test() {
            let got = run_bits(
                ramp_builder(48, 0.5)
                    .threads(4)
                    .overlap(overlap)
                    .fabcheck(fabcheck)
                    .nan_poison(nan_poison)
                    .kernel_backend(k)
                    .build(),
                steps,
            );
            prop_assert_eq!(reference.len(), got.len());
            prop_assert!(
                reference == got,
                "{} diverged (overlap={}, fabcheck={}, poison={})",
                k.label(), overlap, fabcheck, nan_poison
            );
        }
    }
}
