//! Integration test: the real threaded message-passing runtime carries a
//! ghost exchange whose result matches the single-process `FillBoundary` —
//! proving the pack → send → receive → unpack path end to end across the
//! `runtime`, `fab`, and `geometry` crates.

use bytes_of::to_bytes;
use crocco::fab::{BoxArray, DistributionMapping, DistributionStrategy, FArrayBox, MultiFab};
use crocco::geometry::{decompose::ChopParams, IndexBox, IntVect, ProblemDomain};
use crocco::runtime::LocalCluster;
use std::sync::Arc;

/// Minimal f64-slice serialization helpers for the packet payloads.
mod bytes_of {
    pub fn to_bytes(v: &[f64]) -> bytes::Bytes {
        let mut out = Vec::with_capacity(v.len() * 8);
        for x in v {
            out.extend_from_slice(&x.to_le_bytes());
        }
        bytes::Bytes::from(out)
    }

    pub fn from_bytes(b: &[u8]) -> Vec<f64> {
        b.chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect()
    }
}

#[test]
fn threaded_cluster_ghost_exchange_matches_fill_boundary() {
    const NRANKS: usize = 4;
    const NCOMP: usize = 2;
    const NGHOST: i64 = 2;
    let domain_box = IndexBox::from_extents(16, 16, 8);
    let domain = ProblemDomain::new(domain_box, [false, false, true]);
    let ba = Arc::new(BoxArray::decompose(domain_box, ChopParams::new(4, 8)));
    let dm = Arc::new(DistributionMapping::new(
        &ba,
        NRANKS,
        DistributionStrategy::MortonSfc,
    ));

    let fill_value = |p: IntVect, c: usize| {
        (p[0] + 37 * p[1] + 1369 * p[2]) as f64 + 0.5 * c as f64
    };

    // Reference: single-process FillBoundary.
    let mut reference = MultiFab::new(ba.clone(), dm.clone(), NCOMP, NGHOST);
    for i in 0..reference.nfabs() {
        let valid = reference.valid_box(i);
        for p in valid.cells() {
            for c in 0..NCOMP {
                reference.fab_mut(i).set(p, c, fill_value(p, c));
            }
        }
    }
    let plan = reference.fill_boundary(&domain);

    // Distributed: each rank owns its patches, packs plan chunks, ships them
    // through real channels, and unpacks.
    let plan = Arc::new(plan);
    let ba2 = ba.clone();
    let dm2 = dm.clone();
    let results = LocalCluster::run(NRANKS, move |ep| {
        let rank = ep.rank();
        // Local fabs for the patches this rank owns.
        let mut fabs: Vec<Option<FArrayBox>> = (0..ba2.len())
            .map(|i| {
                (dm2.owner(i) == rank).then(|| {
                    let mut f = FArrayBox::new(ba2.get(i).grow(NGHOST), NCOMP);
                    for p in ba2.get(i).cells() {
                        for c in 0..NCOMP {
                            f.set(p, c, fill_value(p, c));
                        }
                    }
                    f
                })
            })
            .collect();
        // Send every remote chunk whose source this rank owns. The tag
        // encodes the chunk index so the receiver knows where to unpack.
        let mut expected = 0;
        for (ci, chunk) in plan.chunks.iter().enumerate() {
            if chunk.src_rank == rank && chunk.dst_rank != rank {
                let src = fabs[chunk.src_id].as_ref().unwrap();
                let mut payload = Vec::new();
                for c in 0..NCOMP {
                    for p in chunk.region.cells() {
                        payload.push(src.get(p - chunk.shift, c));
                    }
                }
                ep.send(chunk.dst_rank, ci as u64, to_bytes(&payload));
            }
            if chunk.dst_rank == rank && chunk.src_rank != rank {
                expected += 1;
            }
            // Local chunks: copy directly.
            if chunk.src_rank == rank && chunk.dst_rank == rank {
                let src = fabs[chunk.src_id].as_ref().unwrap().clone();
                let dst = fabs[chunk.dst_id].as_mut().unwrap();
                dst.copy_shifted_from(&src, chunk.region, chunk.shift, NCOMP);
            }
        }
        // Receive and unpack.
        for pkt in ep.recv_n(expected) {
            let chunk = plan.chunks[pkt.tag as usize];
            let vals = bytes_of::from_bytes(&pkt.payload);
            let dst = fabs[chunk.dst_id].as_mut().unwrap();
            let mut it = vals.into_iter();
            for c in 0..NCOMP {
                for p in chunk.region.cells() {
                    dst.set(p, c, it.next().unwrap());
                }
            }
        }
        fabs
    });

    // Compare every ghost cell against the single-process reference.
    for (rank, fabs) in results.iter().enumerate() {
        for (i, f) in fabs.iter().enumerate() {
            let Some(f) = f else { continue };
            assert_eq!(dm.owner(i), rank);
            let valid = reference.valid_box(i);
            for p in valid.grow(NGHOST).cells() {
                for c in 0..NCOMP {
                    assert_eq!(
                        f.get(p, c),
                        reference.fab(i).get(p, c),
                        "patch {i} cell {p:?} comp {c}"
                    );
                }
            }
        }
    }
}
