//! Integration test: checkpoint/restart continues a run bit-for-bit — the
//! property production campaigns on Summit rely on (jobs are chained through
//! the batch system).

use crocco::solver::config::{CodeVersion, SolverConfig};
use crocco::solver::driver::Simulation;
use crocco::solver::io::{read_checkpoint, write_checkpoint};
use crocco::solver::problems::ProblemKind;
use crocco::solver::validation::l2_difference;

fn cfg(version: CodeVersion, levels: usize) -> SolverConfig {
    SolverConfig::builder()
        .problem(ProblemKind::SodX)
        .extents(48, 4, 4)
        .version(version)
        .max_levels(levels)
        .regrid_freq(4)
        .build()
}

#[test]
fn restart_continues_bit_for_bit_single_level() {
    let c = cfg(CodeVersion::V1_1, 1);
    // Reference: 10 straight steps.
    let mut reference = Simulation::new(c.clone());
    reference.advance_steps(10);

    // Candidate: 5 steps, checkpoint, restore, 5 more.
    let mut first = Simulation::new(c.clone());
    first.advance_steps(5);
    let path = std::env::temp_dir().join("crocco_restart_single.chk");
    write_checkpoint(&first, &path).unwrap();
    let chk = read_checkpoint(&path).unwrap();
    let mut resumed = Simulation::from_checkpoint(c, &chk);
    assert_eq!(resumed.step_count(), 5);
    assert_eq!(resumed.time(), first.time());
    resumed.advance_steps(5);

    assert_eq!(resumed.step_count(), reference.step_count());
    assert_eq!(resumed.time(), reference.time());
    for (c_idx, d) in l2_difference(&reference, &resumed).iter().enumerate() {
        assert_eq!(*d, 0.0, "component {c_idx} diverged after restart");
    }
    std::fs::remove_file(path).ok();
}

#[test]
fn restart_preserves_amr_hierarchy() {
    let c = cfg(CodeVersion::V2_1, 2);
    let mut first = Simulation::new(c.clone());
    first.advance_steps(3);
    let boxes_before: Vec<_> = (0..first.nlevels())
        .map(|l| first.hierarchy().level(l).ba.boxes().to_vec())
        .collect();
    let path = std::env::temp_dir().join("crocco_restart_amr.chk");
    write_checkpoint(&first, &path).unwrap();
    let chk = read_checkpoint(&path).unwrap();
    let resumed = Simulation::from_checkpoint(c, &chk);
    assert_eq!(resumed.nlevels(), first.nlevels());
    for (l, boxes) in boxes_before.iter().enumerate() {
        assert_eq!(
            resumed.hierarchy().level(l).ba.boxes(),
            &boxes[..],
            "level {l} grids changed across restart"
        );
    }
    for (c_idx, d) in l2_difference(&first, &resumed).iter().enumerate() {
        assert_eq!(*d, 0.0, "component {c_idx} corrupted by restart");
    }
    std::fs::remove_file(path).ok();
}

#[test]
fn amr_run_restarts_and_keeps_marching() {
    let c = cfg(CodeVersion::V2_1, 2);
    let mut reference = Simulation::new(c.clone());
    reference.advance_steps(8); // crosses a regrid at step 4

    let mut first = Simulation::new(c.clone());
    first.advance_steps(4);
    let path = std::env::temp_dir().join("crocco_restart_march.chk");
    write_checkpoint(&first, &path).unwrap();
    let chk = read_checkpoint(&path).unwrap();
    let mut resumed = Simulation::from_checkpoint(c, &chk);
    resumed.advance_steps(4);

    assert!(!resumed.has_nonfinite());
    assert_eq!(resumed.step_count(), reference.step_count());
    // Same physical time and bitwise-equal fields (regrids are deterministic
    // functions of the state).
    assert_eq!(resumed.time(), reference.time());
    for (c_idx, d) in l2_difference(&reference, &resumed).iter().enumerate() {
        assert_eq!(*d, 0.0, "component {c_idx} diverged after regrid+restart");
    }
    std::fs::remove_file(path).ok();
}
