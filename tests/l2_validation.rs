//! Integration test: the paper's §IV-A/§IV-C correctness methodology across
//! the full stack — reference ("Fortran") vs optimized ("C++") kernels, and
//! the GPU-configuration versions vs the CPU ones, compared by per-variable
//! L2 norms over a real multi-step run.

use crocco::solver::config::{CodeVersion, SolverConfig};
use crocco::solver::driver::Simulation;
use crocco::solver::problems::ProblemKind;
use crocco::solver::validation::{l2_difference, relative_l2_difference, VARIABLE_NAMES};

fn cfg(version: CodeVersion) -> SolverConfig {
    SolverConfig::builder()
        .problem(ProblemKind::SodX)
        .extents(48, 4, 4)
        .version(version)
        .build()
}

#[test]
fn fortran_to_cpp_translation_preserves_accuracy() {
    let mut reference = Simulation::new(cfg(CodeVersion::V1_0));
    let mut optimized = Simulation::new(cfg(CodeVersion::V1_1));
    reference.advance_steps(15);
    optimized.advance_steps(15);
    let rel = relative_l2_difference(&reference, &optimized);
    for (c, d) in rel.iter().enumerate() {
        assert!(
            *d < 1e-7,
            "{}: relative L2 {} above the paper's 1e-7 plateau",
            VARIABLE_NAMES[c],
            d
        );
    }
    // And the difference is *nonzero*: two genuinely different
    // implementations, not one function called twice.
    assert!(
        rel.iter().any(|&d| d > 0.0),
        "implementations are suspiciously identical"
    );
}

#[test]
fn gpu_versions_match_cpu_versions_on_single_level() {
    // With one level there is no interpolator difference: 2.0/2.1 must
    // reproduce 1.1 exactly (the §IV-C "no change in accuracy when running
    // on GPUs" check; our GPU backend is a performance model, so the
    // numerics are bitwise shared).
    let mut cpu = Simulation::new(cfg(CodeVersion::V1_1));
    let mut gpu = Simulation::new(cfg(CodeVersion::V2_1));
    cpu.advance_steps(10);
    gpu.advance_steps(10);
    for (c, d) in l2_difference(&cpu, &gpu).iter().enumerate() {
        assert_eq!(*d, 0.0, "{} differs", VARIABLE_NAMES[c]);
    }
}

#[test]
fn interpolator_choice_perturbs_only_at_truncation_level() {
    // 2.0 (curvilinear) vs 2.1 (trilinear) on a uniform grid differ only in
    // ghost-fill rounding; after a few steps the solutions stay close.
    let mk = |v| {
        SolverConfig::builder()
            .problem(ProblemKind::SodX)
            .extents(48, 4, 4)
            .version(v)
            .max_levels(2)
            .build()
    };
    let mut curvi = Simulation::new(mk(CodeVersion::V2_0));
    let mut tri = Simulation::new(mk(CodeVersion::V2_1));
    curvi.advance_steps(10);
    tri.advance_steps(10);
    assert!(!curvi.has_nonfinite() && !tri.has_nonfinite());
    let rel = relative_l2_difference(&curvi, &tri);
    for (c, d) in rel.iter().enumerate() {
        assert!(*d < 1e-3, "{}: interpolator gap {}", VARIABLE_NAMES[c], d);
    }
}
