//! Integration test: every interpolator drives a full two-level AMR run on
//! the Sod problem — the §III-C interpolation design axis end-to-end,
//! including the future-work WENO conservative scheme.

use crocco::solver::config::{CodeVersion, InterpKind, SolverConfig};
use crocco::solver::driver::Simulation;
use crocco::solver::problems::ProblemKind;
use crocco::solver::state::cons;
use crocco::solver::validation::sod_density_error;
use crocco::solver::PerfectGas;

const ALL: [InterpKind; 5] = [
    InterpKind::Trilinear,
    InterpKind::Curvilinear,
    InterpKind::PiecewiseConstant,
    InterpKind::ConservativeLinear,
    InterpKind::WenoConservative,
];

fn run(kind: InterpKind) -> Simulation {
    let cfg = SolverConfig::builder()
        .problem(ProblemKind::SodX)
        .extents(48, 4, 4)
        .version(CodeVersion::V2_0)
        .max_levels(2)
        .interpolator(kind)
        .regrid_freq(4)
        .cfl(0.5)
        .build();
    let mut sim = Simulation::new(cfg);
    while sim.time() < 0.06 {
        sim.step();
    }
    sim
}

#[test]
fn every_interpolator_survives_a_two_level_shock_run() {
    let gas = PerfectGas::nondimensional();
    for kind in ALL {
        let sim = run(kind);
        assert!(!sim.has_nonfinite(), "{kind:?} went non-finite");
        assert!(sim.nlevels() >= 2, "{kind:?} lost refinement");
        let err = sod_density_error(&sim, &gas);
        assert!(
            err < 0.05,
            "{kind:?}: density error {err} out of family"
        );
    }
}

#[test]
fn interpolator_choice_changes_ghost_fill_but_not_physics_class() {
    // All interpolators must agree on the conserved totals to solver
    // accuracy — interpolation only feeds ghost cells here.
    let masses: Vec<f64> = ALL
        .iter()
        .map(|&k| run(k).conserved_integral(cons::RHO))
        .collect();
    let m0 = masses[0];
    for (k, m) in ALL.iter().zip(&masses) {
        assert!(
            ((m - m0) / m0).abs() < 1e-3,
            "{k:?}: mass {m} vs {m0}"
        );
    }
}

#[test]
fn curvilinear_needs_coords_and_others_do_not() {
    for kind in ALL {
        let needs = kind.build().needs_coords();
        assert_eq!(needs, kind == InterpKind::Curvilinear, "{kind:?}");
    }
}
